//! Uncertainty quantification for the projections.
//!
//! The paper is frank about its error sources ("Model validity and
//! concerns"): the calibrated `(µ, φ)` come from physical measurements
//! with probe noise and estimation error, and the ITRS inputs are
//! forecasts. This module propagates calibration uncertainty through
//! the model with seeded Monte-Carlo sampling: perturb `(µ, φ)` (and
//! optionally the budgets), re-optimize, and report speedup quantiles —
//! so every projected point can carry an interval instead of a bare
//! number.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use ucore_core::{Budgets, ChipSpec, ModelError, Optimizer, ParallelFraction, UCore};

/// Relative 1-sigma-style uncertainty on the inputs (uniform ±bound
/// sampling, the conservative choice for instrument error).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputUncertainty {
    /// Relative error on µ (e.g. 0.05 for ±5%).
    pub mu_rel: f64,
    /// Relative error on φ.
    pub phi_rel: f64,
    /// Relative error on the bandwidth budget (forecast risk).
    pub bandwidth_rel: f64,
    /// Relative error on the power budget.
    pub power_rel: f64,
}

impl InputUncertainty {
    /// Measurement-grade uncertainty: ±5% on the calibrated
    /// parameters, budgets exact.
    pub fn measurement() -> Self {
        InputUncertainty { mu_rel: 0.05, phi_rel: 0.05, bandwidth_rel: 0.0, power_rel: 0.0 }
    }

    /// Forecast-grade uncertainty: measurement error plus ±20% on the
    /// ITRS bandwidth and power trajectories.
    pub fn forecast() -> Self {
        InputUncertainty { mu_rel: 0.05, phi_rel: 0.05, bandwidth_rel: 0.20, power_rel: 0.20 }
    }

    fn validate(&self) -> Result<(), ModelError> {
        for (what, v) in [
            ("mu uncertainty", self.mu_rel),
            ("phi uncertainty", self.phi_rel),
            ("bandwidth uncertainty", self.bandwidth_rel),
            ("power uncertainty", self.power_rel),
        ] {
            if !(v.is_finite() && (0.0..1.0).contains(&v)) {
                return Err(ModelError::NonPositive { what, value: v });
            }
        }
        Ok(())
    }
}

/// A speedup distribution summary from the Monte-Carlo sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupInterval {
    /// The unperturbed (nominal) speedup.
    pub nominal: f64,
    /// Sample median.
    pub median: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Fraction of samples that were infeasible (dropped).
    pub infeasible_fraction: f64,
}

impl SpeedupInterval {
    /// The relative half-width of the 90% interval — a headline "error
    /// bar" for the projection.
    pub fn relative_halfwidth(&self) -> f64 {
        (self.p95 - self.p5) / (2.0 * self.median)
    }
}

/// Propagates input uncertainty through one design point with `samples`
/// seeded Monte-Carlo draws.
///
/// # Errors
///
/// Returns an error if the *nominal* point is infeasible or the
/// uncertainty description is invalid; perturbed-infeasible samples are
/// tallied in `infeasible_fraction` instead.
pub fn speedup_interval(
    ucore: UCore,
    budgets: &Budgets,
    f: ParallelFraction,
    uncertainty: &InputUncertainty,
    samples: usize,
    seed: u64,
) -> Result<SpeedupInterval, ModelError> {
    uncertainty.validate()?;
    let optimizer = Optimizer::paper_default();
    let nominal = optimizer
        .optimize(&ChipSpec::heterogeneous(ucore), budgets, f)?
        .evaluation
        .speedup
        .get();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut draws = Vec::with_capacity(samples);
    let mut infeasible = 0usize;
    let samples = samples.max(1);
    for _ in 0..samples {
        let jitter = |rng: &mut StdRng, rel: f64| {
            // `<=` rather than `==`: also shields gen_range from the
            // degenerate -0.0 span, which would be an invalid range.
            if rel <= 0.0 {
                1.0
            } else {
                1.0 + rng.gen_range(-rel..=rel)
            }
        };
        let mu = ucore.mu() * jitter(&mut rng, uncertainty.mu_rel);
        let phi = ucore.phi() * jitter(&mut rng, uncertainty.phi_rel);
        let bw = budgets.bandwidth() * jitter(&mut rng, uncertainty.bandwidth_rel);
        let pw = budgets.power() * jitter(&mut rng, uncertainty.power_rel);
        let Ok(perturbed_budgets) = Budgets::new(budgets.area(), pw, bw) else {
            infeasible += 1;
            continue;
        };
        let Ok(perturbed_core) = UCore::new(mu, phi) else {
            infeasible += 1;
            continue;
        };
        match optimizer.optimize(
            &ChipSpec::heterogeneous(perturbed_core),
            &perturbed_budgets,
            f,
        ) {
            Ok(best) => draws.push(best.evaluation.speedup.get()),
            Err(_) => infeasible += 1,
        }
    }
    if draws.is_empty() {
        return Err(ModelError::Infeasible {
            reason: "every Monte-Carlo sample was infeasible".into(),
        });
    }
    draws.sort_by(f64::total_cmp);
    let quantile = |q: f64| {
        let idx = ((draws.len() - 1) as f64 * q).round() as usize;
        draws[idx]
    };
    Ok(SpeedupInterval {
        nominal,
        median: quantile(0.5),
        p5: quantile(0.05),
        p95: quantile(0.95),
        infeasible_fraction: infeasible as f64 / samples as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    fn setup() -> (UCore, Budgets) {
        (
            UCore::new(2.88, 0.63).unwrap(), // GTX285 FFT-1024
            Budgets::new(19.0, 8.7, 45.0).unwrap(),
        )
    }

    #[test]
    fn interval_brackets_the_nominal() {
        let (u, b) = setup();
        let interval = speedup_interval(
            u,
            &b,
            f(0.99),
            &InputUncertainty::measurement(),
            500,
            7,
        )
        .unwrap();
        assert!(interval.p5 <= interval.median);
        assert!(interval.median <= interval.p95);
        assert!(interval.p5 <= interval.nominal * 1.01);
        assert!(interval.p95 >= interval.nominal * 0.99);
        assert_eq!(interval.infeasible_fraction, 0.0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (u, b) = setup();
        let unc = InputUncertainty::forecast();
        let a = speedup_interval(u, &b, f(0.99), &unc, 200, 42).unwrap();
        let c = speedup_interval(u, &b, f(0.99), &unc, 200, 42).unwrap();
        assert_eq!(a, c);
        let d = speedup_interval(u, &b, f(0.99), &unc, 200, 43).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn forecast_uncertainty_widens_the_interval() {
        let (u, b) = setup();
        let tight = speedup_interval(
            u,
            &b,
            f(0.99),
            &InputUncertainty::measurement(),
            400,
            1,
        )
        .unwrap();
        let wide =
            speedup_interval(u, &b, f(0.99), &InputUncertainty::forecast(), 400, 1)
                .unwrap();
        assert!(wide.relative_halfwidth() > tight.relative_halfwidth());
    }

    #[test]
    fn bandwidth_limited_designs_shrug_off_mu_noise() {
        // The paper's robustness story quantified: past the bandwidth
        // wall, the ASIC's projected speedup is insensitive to
        // calibration error on mu.
        let b = Budgets::new(19.0, 8.7, 45.0).unwrap();
        let asic = UCore::new(489.0, 4.96).unwrap();
        let only_mu = InputUncertainty {
            mu_rel: 0.20,
            phi_rel: 0.0,
            bandwidth_rel: 0.0,
            power_rel: 0.0,
        };
        let interval = speedup_interval(asic, &b, f(0.99), &only_mu, 300, 5).unwrap();
        assert!(
            interval.relative_halfwidth() < 0.02,
            "halfwidth {}",
            interval.relative_halfwidth()
        );
    }

    #[test]
    fn zero_uncertainty_collapses_the_interval() {
        let (u, b) = setup();
        let none = InputUncertainty {
            mu_rel: 0.0,
            phi_rel: 0.0,
            bandwidth_rel: 0.0,
            power_rel: 0.0,
        };
        let interval = speedup_interval(u, &b, f(0.9), &none, 50, 9).unwrap();
        assert_eq!(interval.p5, interval.p95);
        assert!((interval.median - interval.nominal).abs() < 1e-12);
    }

    #[test]
    fn invalid_uncertainty_rejected() {
        let (u, b) = setup();
        let bad = InputUncertainty {
            mu_rel: 1.5,
            phi_rel: 0.0,
            bandwidth_rel: 0.0,
            power_rel: 0.0,
        };
        assert!(speedup_interval(u, &b, f(0.9), &bad, 10, 1).is_err());
    }
}
