//! Deterministic fault injection for the sweep engine.
//!
//! The projection pipeline promises *fault containment*: a poisoned
//! design point degrades exactly one [`Outcome`](crate::sweep::Outcome)
//! instead of aborting the figure. That promise is only worth anything
//! if it is exercised, so this module can deterministically inject
//! faults into a sweep — a forced panic, a NaN or ∞ model parameter, or
//! a simulated cache-layer error — at chosen submission indices.
//!
//! Faults are keyed on the *submission index* of a point, which is
//! stable across thread counts and scheduling, so an injected run is
//! reproducible: the same point fails, every other point is bit-identical
//! to an uninjected run.
//!
//! # Activation
//!
//! Programmatically, [`activate`] installs a [`FaultPlan`] and returns a
//! guard that removes it on drop:
//!
//! ```
//! use ucore_project::faultinject::{Fault, FaultPlan};
//! let _guard = ucore_project::faultinject::activate(
//!     FaultPlan::new().with(3, Fault::Panic),
//! );
//! // sweeps run while the guard lives see a forced panic at point 3
//! ```
//!
//! From the outside, the `UCORE_FAULT_INJECT` environment variable
//! carries the same plan in `kind@index[,kind@index...]` syntax, e.g.
//! `UCORE_FAULT_INJECT=panic@3,nan@7` — the form the CI fault-injection
//! job and the `repro` acceptance tests use. Kinds: `panic`, `nan`,
//! `inf`, `cache`, `kill`, `stall`, `enospc`, `eio`.
//!
//! # Transient faults
//!
//! A fault can be limited to the first N evaluation *attempts* of its
//! point with an `xN` suffix: `panic@3x1` panics attempt 0 of point 3
//! and lets every retry succeed — the shape that exercises the sweep's
//! retry-with-backoff recovery. Without the suffix a fault is
//! persistent (every attempt fails, so retries are exhausted).
//!
//! # Crash and stall faults
//!
//! Two kinds exercise the durability layer rather than containment:
//! `kill@i` aborts the whole process the moment point *i* is claimed
//! (after fsyncing the run journal — a deterministic `kill -9` for the
//! crash/resume suite), and `stall@i` makes point *i* hang until the
//! per-point watchdog deadline converts it to `Failed{timeout}`.
//!
//! # Disk faults
//!
//! Two further kinds fire at the *journal* layer instead of the
//! evaluation: `enospc@i` and `eio@i` make the journal append for
//! submission index *i* fail with a synthesized "no space left on
//! device" / "input/output error". The evaluation of point *i* is
//! untouched — these exercise the documented journal degradation path
//! (one-time warning, `journal.write_errors` increments, the run keeps
//! producing correct results with journaling disabled).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, RwLock};

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the evaluation of the point (exercises
    /// `catch_unwind` containment).
    Panic,
    /// Feed a NaN parameter to the model's ingress validation (exercises
    /// the typed-error path: validation must reject it, never propagate
    /// NaN into results).
    NanParam,
    /// Feed an infinite parameter to the model's ingress validation.
    InfParam,
    /// Simulate a cache-layer failure: the memo lookup errors out and
    /// must not corrupt the shared cache.
    CacheError,
    /// Abort the process the moment this point is claimed (after the
    /// run journal is fsync'd) — the deterministic crash behind the
    /// kill-and-resume durability suite.
    Kill,
    /// Hang the evaluation of this point until the watchdog deadline
    /// releases it as `Failed{timeout}` (or a safety cap, when no
    /// deadline is configured).
    Stall,
    /// Fail the *journal append* for this point with a synthesized
    /// "no space left on device" error. The evaluation itself is
    /// untouched — this exercises the journal's degrade-and-continue
    /// path, not containment.
    DiskEnospc,
    /// Fail the *journal append* for this point with a synthesized
    /// "input/output error". Like [`Fault::DiskEnospc`], fires at the
    /// durability layer only.
    DiskEio,
}

impl Fault {
    fn keyword(self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::NanParam => "nan",
            Fault::InfParam => "inf",
            Fault::CacheError => "cache",
            Fault::Kill => "kill",
            Fault::Stall => "stall",
            Fault::DiskEnospc => "enospc",
            Fault::DiskEio => "eio",
        }
    }

    /// Whether this kind fires at the journal/durability layer (and is
    /// therefore a no-op on the evaluation path).
    pub fn is_disk_fault(self) -> bool {
        matches!(self, Fault::DiskEnospc | Fault::DiskEio)
    }

    /// The synthesized I/O error a disk-fault kind injects into the
    /// journal append; `None` for non-disk kinds.
    pub fn disk_error(self) -> Option<std::io::Error> {
        match self {
            Fault::DiskEnospc => Some(std::io::Error::other(
                "injected fault: no space left on device (ENOSPC)",
            )),
            Fault::DiskEio => Some(std::io::Error::other(
                "injected fault: input/output error (EIO)",
            )),
            _ => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A parse failure of a `UCORE_FAULT_INJECT` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending fragment.
    pub fragment: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault spec {:?}: {} (expected kind@index[xN] with kind one of \
             panic|nan|inf|cache|kill|stall|enospc|eio)",
            self.fragment, self.reason
        )
    }
}

impl Error for FaultSpecError {}

/// One planned fault: the kind, plus how many evaluation attempts it
/// poisons (`None` = every attempt — the fault is persistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// The injected fault kind.
    pub fault: Fault,
    /// Number of leading attempts that fail; `None` means all of them.
    pub fail_attempts: Option<u32>,
}

/// A deterministic set of faults, keyed by sweep submission index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a persistent fault at a submission index (builder style). A
    /// later fault at the same index replaces the earlier one.
    #[must_use]
    pub fn with(mut self, index: usize, fault: Fault) -> Self {
        self.faults.insert(index, PlannedFault { fault, fail_attempts: None });
        self
    }

    /// Adds a *transient* fault: only the first `attempts` evaluation
    /// attempts of the point fail; retries beyond that succeed. The
    /// `kind@indexxN` spec syntax maps here.
    #[must_use]
    pub fn with_transient(mut self, index: usize, fault: Fault, attempts: u32) -> Self {
        self.faults
            .insert(index, PlannedFault { fault, fail_attempts: Some(attempts) });
        self
    }

    /// The fault kind planned for a submission index, if any,
    /// regardless of attempt limits.
    pub fn fault_at(&self, index: usize) -> Option<Fault> {
        self.faults.get(&index).map(|p| p.fault)
    }

    /// The fault to apply to evaluation attempt `attempt` (0-based) of
    /// the point at `index`: `None` once a transient fault's attempt
    /// budget is spent.
    pub fn fault_for_attempt(&self, index: usize, attempt: u32) -> Option<Fault> {
        let planned = self.faults.get(&index)?;
        match planned.fail_attempts {
            Some(n) if attempt >= n => None,
            _ => Some(planned.fault),
        }
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses a `kind@index[xN][,kind@index[xN]...]` specification, the
    /// `UCORE_FAULT_INJECT` syntax. The optional `xN` suffix makes the
    /// fault transient (only the first N attempts fail). Whitespace
    /// around fragments is ignored; an empty string is an empty plan.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] for an unknown kind, an unparsable
    /// index, or an unparsable attempt count.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::new();
        for fragment in spec.split(',') {
            let fragment = fragment.trim();
            if fragment.is_empty() {
                continue;
            }
            let Some((kind, target)) = fragment.split_once('@') else {
                return Err(FaultSpecError {
                    fragment: fragment.into(),
                    reason: "missing '@'",
                });
            };
            let fault = match kind.trim() {
                "panic" => Fault::Panic,
                "nan" => Fault::NanParam,
                "inf" => Fault::InfParam,
                "cache" => Fault::CacheError,
                "kill" => Fault::Kill,
                "stall" => Fault::Stall,
                "enospc" => Fault::DiskEnospc,
                "eio" => Fault::DiskEio,
                _ => {
                    return Err(FaultSpecError {
                        fragment: fragment.into(),
                        reason: "unknown fault kind",
                    })
                }
            };
            let target = target.trim();
            let (index_str, fail_attempts) = match target.split_once('x') {
                Some((i, n)) => {
                    let attempts: u32 = n.trim().parse().map_err(|_| FaultSpecError {
                        fragment: fragment.into(),
                        reason: "attempt count after 'x' is not a non-negative integer",
                    })?;
                    (i.trim(), Some(attempts))
                }
                None => (target, None),
            };
            let index: usize = index_str.parse().map_err(|_| FaultSpecError {
                fragment: fragment.into(),
                reason: "index is not a non-negative integer",
            })?;
            plan.faults.insert(index, PlannedFault { fault, fail_attempts });
        }
        Ok(plan)
    }
}

/// The process-wide active plan. `None` means "consult the environment".
static ACTIVE: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Removes the active plan when dropped, restoring env-var behavior.
#[derive(Debug)]
pub struct FaultGuard {
    _private: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        if let Ok(mut slot) = ACTIVE.write() {
            *slot = None;
        }
    }
}

/// Installs a plan for every sweep in the process until the returned
/// guard is dropped. Replaces any previously active plan.
pub fn activate(plan: FaultPlan) -> FaultGuard {
    if let Ok(mut slot) = ACTIVE.write() {
        *slot = Some(Arc::new(plan));
    }
    FaultGuard { _private: () }
}

/// The plan a starting sweep should apply: the programmatically
/// activated one if present, otherwise whatever `UCORE_FAULT_INJECT`
/// specifies (an unparsable variable is reported on stderr once per
/// sweep and ignored — fault injection must never corrupt a run it was
/// meant to test), otherwise `None`.
pub fn current_plan() -> Option<Arc<FaultPlan>> {
    if let Ok(slot) = ACTIVE.read() {
        if let Some(plan) = slot.as_ref() {
            return Some(Arc::clone(plan));
        }
    }
    let spec = std::env::var("UCORE_FAULT_INJECT").ok()?;
    match FaultPlan::parse(&spec) {
        Ok(plan) if !plan.is_empty() => Some(Arc::new(plan)),
        Ok(_) => None,
        Err(e) => {
            eprintln!("warning: UCORE_FAULT_INJECT ignored: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_syntax() {
        let plan = FaultPlan::parse(" panic@3 , nan@7,inf@0,cache@12 ").unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.fault_at(3), Some(Fault::Panic));
        assert_eq!(plan.fault_at(7), Some(Fault::NanParam));
        assert_eq!(plan.fault_at(0), Some(Fault::InfParam));
        assert_eq!(plan.fault_at(12), Some(Fault::CacheError));
        assert_eq!(plan.fault_at(1), None);
    }

    #[test]
    fn parse_rejects_malformed_fragments() {
        for bad in ["panic", "panic@x", "frob@3", "@3", "panic@-1"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains("invalid fault spec"), "{bad}");
        }
    }

    #[test]
    fn parse_empty_is_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn later_fault_at_same_index_wins() {
        let plan = FaultPlan::new().with(5, Fault::Panic).with(5, Fault::NanParam);
        assert_eq!(plan.fault_at(5), Some(Fault::NanParam));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn display_round_trips_keywords() {
        for f in [
            Fault::Panic,
            Fault::NanParam,
            Fault::InfParam,
            Fault::CacheError,
            Fault::Kill,
            Fault::Stall,
            Fault::DiskEnospc,
            Fault::DiskEio,
        ] {
            let plan = FaultPlan::parse(&format!("{f}@1")).unwrap();
            assert_eq!(plan.fault_at(1), Some(f));
        }
    }

    #[test]
    fn transient_suffix_bounds_the_failing_attempts() {
        let plan = FaultPlan::parse("panic@3x2,stall@7").unwrap();
        // Point 3: first two attempts fail, the third succeeds.
        assert_eq!(plan.fault_at(3), Some(Fault::Panic));
        assert_eq!(plan.fault_for_attempt(3, 0), Some(Fault::Panic));
        assert_eq!(plan.fault_for_attempt(3, 1), Some(Fault::Panic));
        assert_eq!(plan.fault_for_attempt(3, 2), None);
        // Point 7: persistent — every attempt fails.
        assert_eq!(plan.fault_for_attempt(7, 0), Some(Fault::Stall));
        assert_eq!(plan.fault_for_attempt(7, 99), Some(Fault::Stall));
        // Unplanned points are clean.
        assert_eq!(plan.fault_for_attempt(5, 0), None);
    }

    #[test]
    fn transient_builder_matches_the_spec_syntax() {
        let built = FaultPlan::new().with_transient(3, Fault::Panic, 1);
        let parsed = FaultPlan::parse("panic@3x1").unwrap();
        assert_eq!(built, parsed);
        assert_eq!(built.fault_for_attempt(3, 0), Some(Fault::Panic));
        assert_eq!(built.fault_for_attempt(3, 1), None);
    }

    #[test]
    fn disk_fault_kinds_parse_and_classify() {
        let plan = FaultPlan::parse("enospc@4,eio@9").unwrap();
        assert_eq!(plan.fault_at(4), Some(Fault::DiskEnospc));
        assert_eq!(plan.fault_at(9), Some(Fault::DiskEio));
        for f in [Fault::DiskEnospc, Fault::DiskEio] {
            assert!(f.is_disk_fault());
            let err = f.disk_error().expect("disk faults carry an io error");
            assert!(err.to_string().contains("injected fault"), "{err}");
        }
        for f in [Fault::Panic, Fault::Kill, Fault::Stall, Fault::CacheError] {
            assert!(!f.is_disk_fault());
            assert!(f.disk_error().is_none());
        }
    }

    #[test]
    fn parse_rejects_malformed_attempt_counts() {
        for bad in ["panic@3x", "panic@3xq", "panic@x2"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains("invalid fault spec"), "{bad}");
        }
    }
}
