//! The append-only, checksummed run journal behind durable sweeps.
//!
//! A long projection run is a stream of completed design-point
//! [`Outcome`]s. This module makes that stream *crash-only*: every
//! completed point is appended to a run journal as one self-framing,
//! CRC-checked line, flushed to the OS immediately and fsync'd in
//! batches of [`SYNC_BATCH`]. A process killed mid-run — `kill -9`, an
//! OOM kill, a power cut — leaves a journal whose every complete line
//! is trustworthy and whose final line is at worst *torn* (a partial
//! write with no trailing newline). [`replay`] tolerates exactly that:
//! it restores every intact record and skips a torn tail with a
//! warning, never an error, while mid-file corruption (which a crash
//! cannot produce) stays a hard [`JournalError::Corrupt`].
//!
//! # Record format
//!
//! One record per line, tab-separated, newline-terminated:
//!
//! ```text
//! u1 <crc32> <sweep_seq> <index> <fingerprint> <retries> <outcome...>
//! ```
//!
//! * `u1` — the format version;
//! * `crc32` — CRC-32 (IEEE) of everything after the checksum field,
//!   as 8 hex digits;
//! * `sweep_seq` / `index` — which sweep of the run, and which
//!   submission index within it (the replay key);
//! * `fingerprint` — FNV-1a hash of the full [`SweepPoint`], guarding
//!   resume against a stale journal from a different grid;
//! * `retries` — how many retry attempts the point consumed, so resumed
//!   runs reproduce the original run's retry accounting exactly;
//! * `outcome` — `ok` followed by the node, limiter, and the **exact
//!   bit patterns** of the four `f64` results (hex-encoded, so NaN
//!   energies and negative zeros survive byte-for-byte), `infeasible`,
//!   or `failed` followed by the escaped diagnostic message.
//!
//! Floats are journaled as bit patterns rather than decimal text so a
//! resumed run's figure JSON is *byte-identical* to an uninterrupted
//! run's — the round trip is exact by construction, not by the grace of
//! a formatter.

use crate::sweep::{Outcome, SweepPoint};
use crate::results::NodePoint;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use ucore_core::Limiter;
use ucore_devices::TechNode;

/// Journal format version tag, the first field of every record.
pub const JOURNAL_VERSION: &str = "u1";

/// Appends between fsyncs: the journal is flushed to the OS on every
/// append (so a process crash loses nothing that was appended) and
/// fsync'd every `SYNC_BATCH` records (bounding what a *machine* crash
/// can lose) plus once at the end of every sweep.
pub const SYNC_BATCH: usize = 16;

// ---------------------------------------------------------------------
// Hashes
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the per-line
/// checksum framing.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a, 64-bit — deterministic fingerprinting and retry jitter.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A stable fingerprint of a sweep point: the hash of its complete
/// debug rendering (design, column, node parameters, budgets, `f` — all
/// shortest-round-trip formatted, so distinct values hash distinctly).
/// Resume uses it to detect a journal written by a different grid.
pub fn point_fingerprint(point: &SweepPoint) -> u64 {
    fnv1a64(format!("{point:?}").as_bytes())
}

// ---------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------

fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn node_keyword(node: TechNode) -> &'static str {
    match node {
        TechNode::N65 => "n65",
        TechNode::N55 => "n55",
        TechNode::N45 => "n45",
        TechNode::N40 => "n40",
        TechNode::N32 => "n32",
        TechNode::N22 => "n22",
        TechNode::N16 => "n16",
        TechNode::N11 => "n11",
    }
}

fn node_from_keyword(s: &str) -> Option<TechNode> {
    Some(match s {
        "n65" => TechNode::N65,
        "n55" => TechNode::N55,
        "n45" => TechNode::N45,
        "n40" => TechNode::N40,
        "n32" => TechNode::N32,
        "n22" => TechNode::N22,
        "n16" => TechNode::N16,
        "n11" => TechNode::N11,
        _ => return None,
    })
}

fn limiter_keyword(limiter: Limiter) -> &'static str {
    match limiter {
        Limiter::Area => "area",
        Limiter::Power => "power",
        Limiter::Bandwidth => "bandwidth",
    }
}

fn limiter_from_keyword(s: &str) -> Option<Limiter> {
    Some(match s {
        "area" => Limiter::Area,
        "power" => Limiter::Power,
        "bandwidth" => Limiter::Bandwidth,
        _ => return None,
    })
}

/// Escapes a diagnostic message for single-field storage: backslash,
/// tab (the field separator), newline (the record separator) and
/// carriage return. Every other character — arbitrary Unicode included
/// — passes through literally.
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_field(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One journaled point: the replay key, the fingerprint guard, the
/// retry accounting, and the outcome itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Which sweep of the run this point belonged to (sweeps are
    /// numbered in execution order, which is deterministic for a given
    /// command line).
    pub sweep_seq: u64,
    /// The point's submission index within its sweep.
    pub index: usize,
    /// [`point_fingerprint`] of the evaluated point.
    pub fingerprint: u64,
    /// Retry attempts the point consumed before settling (0 = first
    /// attempt succeeded or retries were exhausted at 0).
    pub retries: u32,
    /// How the evaluation ended.
    pub outcome: Outcome,
}

/// Errors raised by journal I/O and decoding.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem failure.
    Io(io::Error),
    /// A complete (newline-terminated) record failed validation. A
    /// crash cannot produce this — torn tails are skipped, not
    /// reported — so it indicates real corruption or a foreign file.
    Corrupt {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Renders one record as its journal line (newline-terminated).
pub fn encode_record(record: &JournalRecord) -> String {
    let outcome = match &record.outcome {
        Outcome::Feasible(p) => format!(
            "ok\t{}\t{}\t{}\t{}\t{}\t{}",
            node_keyword(p.node),
            limiter_keyword(p.limiter),
            f64_to_hex(p.speedup),
            f64_to_hex(p.r),
            f64_to_hex(p.n),
            f64_to_hex(p.energy),
        ),
        Outcome::Infeasible => "infeasible".to_string(),
        Outcome::Failed { panic_msg } => format!("failed\t{}", escape_field(panic_msg)),
    };
    let body = format!(
        "{}\t{}\t{:016x}\t{}\t{}",
        record.sweep_seq, record.index, record.fingerprint, record.retries, outcome
    );
    format!("{JOURNAL_VERSION}\t{:08x}\t{body}\n", crc32(body.as_bytes()))
}

fn corrupt(line: usize, reason: impl Into<String>) -> JournalError {
    JournalError::Corrupt { line, reason: reason.into() }
}

/// Decodes one complete journal line (without its trailing newline).
///
/// # Errors
///
/// Returns [`JournalError::Corrupt`] for version/framing/checksum/field
/// violations; `line` is the 1-based line number used in the message.
pub fn decode_record(line_text: &str, line: usize) -> Result<JournalRecord, JournalError> {
    let mut framing = line_text.splitn(3, '\t');
    let version = framing.next().unwrap_or_default();
    if version != JOURNAL_VERSION {
        return Err(corrupt(line, format!("unknown version tag {version:?}")));
    }
    let crc_field = framing
        .next()
        .ok_or_else(|| corrupt(line, "missing checksum field"))?;
    let body = framing
        .next()
        .ok_or_else(|| corrupt(line, "missing record body"))?;
    let stored = u32::from_str_radix(crc_field, 16)
        .map_err(|_| corrupt(line, format!("unparsable checksum {crc_field:?}")))?;
    let actual = crc32(body.as_bytes());
    if stored != actual {
        return Err(corrupt(
            line,
            format!("checksum mismatch (stored {stored:08x}, computed {actual:08x})"),
        ));
    }
    let fields: Vec<&str> = body.split('\t').collect();
    if fields.len() < 5 {
        return Err(corrupt(line, "record body has too few fields"));
    }
    let sweep_seq: u64 = fields[0]
        .parse()
        .map_err(|_| corrupt(line, format!("bad sweep_seq {:?}", fields[0])))?;
    let index: usize = fields[1]
        .parse()
        .map_err(|_| corrupt(line, format!("bad index {:?}", fields[1])))?;
    let fingerprint = u64::from_str_radix(fields[2], 16)
        .map_err(|_| corrupt(line, format!("bad fingerprint {:?}", fields[2])))?;
    let retries: u32 = fields[3]
        .parse()
        .map_err(|_| corrupt(line, format!("bad retry count {:?}", fields[3])))?;
    let outcome = match (fields[4], fields.len()) {
        ("infeasible", 5) => Outcome::Infeasible,
        ("failed", 6) => Outcome::Failed {
            panic_msg: unescape_field(fields[5])
                .ok_or_else(|| corrupt(line, "bad escape in failure message"))?,
        },
        ("ok", 11) => {
            let node = node_from_keyword(fields[5])
                .ok_or_else(|| corrupt(line, format!("unknown node {:?}", fields[5])))?;
            let limiter = limiter_from_keyword(fields[6])
                .ok_or_else(|| corrupt(line, format!("unknown limiter {:?}", fields[6])))?;
            let scalar = |i: usize, name: &str| {
                f64_from_hex(fields[i])
                    .ok_or_else(|| corrupt(line, format!("bad {name} bits {:?}", fields[i])))
            };
            Outcome::Feasible(NodePoint {
                node,
                limiter,
                speedup: scalar(7, "speedup")?,
                r: scalar(8, "r")?,
                n: scalar(9, "n")?,
                energy: scalar(10, "energy")?,
            })
        }
        (kind, n) => {
            return Err(corrupt(
                line,
                format!("outcome kind {kind:?} with {n} fields is not a known shape"),
            ))
        }
    };
    Ok(JournalRecord { sweep_seq, index, fingerprint, retries, outcome })
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// The append-only journal writer.
///
/// Every [`append`](JournalWriter::append) issues the full line as one
/// `write` syscall (no userspace buffering — a crashed *process* loses
/// nothing already appended) and the file is fsync'd every
/// [`SYNC_BATCH`] appends plus on [`sync`](JournalWriter::sync) and
/// drop (bounding what a crashed *machine* loses).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    appended: u64,
    unsynced: usize,
}

impl JournalWriter {
    /// Opens a fresh journal at `path`, truncating any previous run's
    /// file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let file = File::create(path)?;
        sync_dir(&parent_dir(path))?;
        Ok(JournalWriter { file, path: path.to_path_buf(), appended: 0, unsynced: 0 })
    }

    /// Opens an existing journal for appending (creating it when
    /// absent) — the resume path: replayed records stay, new
    /// evaluations extend the same file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_to(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        sync_dir(&parent_dir(path))?;
        Ok(JournalWriter { file, path: path.to_path_buf(), appended: 0, unsynced: 0 })
    }

    /// Appends one record and flushes it to the OS; fsyncs every
    /// [`SYNC_BATCH`] appends.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        self.file.write_all(encode_record(record).as_bytes())?;
        self.appended += 1;
        self.unsynced += 1;
        if self.unsynced >= SYNC_BATCH {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync of everything appended so far.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Records appended through this writer (replayed records are not
    /// re-appended and do not count).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The journal's raw file descriptor, for async-signal-safe
    /// flushing from a signal handler (`fsync(2)` is on the
    /// signal-safety list; nothing in Rust's `File` API is).
    #[cfg(unix)]
    pub fn raw_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.file.as_raw_fd()
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.file.sync_data();
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// One replayed record: the outcome plus the context resume needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedOutcome {
    /// The journaled point fingerprint.
    pub fingerprint: u64,
    /// Retry attempts the original evaluation consumed.
    pub retries: u32,
    /// The journaled outcome.
    pub outcome: Outcome,
}

/// How a replay lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayLookup<'a> {
    /// A journaled outcome exists for this `(sweep, index)` and its
    /// fingerprint matches the live point: reuse it.
    Hit(&'a ReplayedOutcome),
    /// A journaled outcome exists but was written for a *different*
    /// point (changed grid, changed scenario): ignore it and
    /// re-evaluate.
    Stale,
    /// Nothing journaled for this `(sweep, index)`.
    Miss,
}

/// The journaled outcomes of a previous run, keyed by
/// `(sweep_seq, index)`.
#[derive(Debug, Clone, Default)]
pub struct ReplayMap {
    // BTreeMap, not HashMap: replay state sits on the output path of a
    // resumed run, and ordered iteration keeps every downstream walk
    // deterministic by construction.
    map: BTreeMap<(u64, usize), ReplayedOutcome>,
}

impl ReplayMap {
    /// An empty map (nothing replays).
    pub fn empty() -> Self {
        ReplayMap::default()
    }

    /// Number of replayable records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was replayed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a `(sweep, index)` slot, guarding on the live point's
    /// fingerprint.
    pub fn lookup(&self, sweep_seq: u64, index: usize, fingerprint: u64) -> ReplayLookup<'_> {
        match self.map.get(&(sweep_seq, index)) {
            Some(rec) if rec.fingerprint == fingerprint => ReplayLookup::Hit(rec),
            Some(_) => ReplayLookup::Stale,
            None => ReplayLookup::Miss,
        }
    }
}

/// What [`replay`] found while reading a journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Intact records restored.
    pub records: usize,
    /// Whether the file ended in a torn (partial, unterminated) record
    /// that was skipped — the signature of a crash mid-append.
    pub torn_tail: bool,
    /// Records that re-wrote an existing `(sweep, index)` slot (a
    /// journal extended by repeated resumes; last record wins).
    pub duplicates: usize,
}

/// Reads a journal back into a [`ReplayMap`].
///
/// Every newline-terminated line must validate — version, checksum,
/// field shapes — or the whole replay fails with
/// [`JournalError::Corrupt`]; a crash cannot half-write an *interior*
/// line, so an invalid one means the file is not trustworthy. Trailing
/// bytes after the final newline are the torn tail of an interrupted
/// append: they are skipped and flagged in the report, never an error.
///
/// # Errors
///
/// [`JournalError::Io`] on read failure, [`JournalError::Corrupt`] on
/// an invalid complete record.
pub fn replay(path: &Path) -> Result<(ReplayMap, ReplayReport), JournalError> {
    let _span = ucore_obs::span!("journal.replay");
    let (records, mut report) = read_records(path)?;
    let mut map = ReplayMap::empty();
    for record in records {
        let replayed = ReplayedOutcome {
            fingerprint: record.fingerprint,
            retries: record.retries,
            outcome: record.outcome,
        };
        if map
            .map
            .insert((record.sweep_seq, record.index), replayed)
            .is_some()
        {
            report.duplicates += 1;
        }
    }
    report.records = map.len();
    Ok((map, report))
}

/// Reads a journal's intact records in file order, without collapsing
/// duplicate `(sweep_seq, index)` slots — the building block shard
/// merging uses to apply its own dedup policy. Validation is exactly
/// [`replay`]'s: every complete line must decode, a torn tail is
/// skipped and flagged. The returned report counts raw records and
/// leaves `duplicates` at zero.
///
/// # Errors
///
/// [`JournalError::Io`] on read failure, [`JournalError::Corrupt`] on
/// an invalid complete record.
pub fn read_records(path: &Path) -> Result<(Vec<JournalRecord>, ReplayReport), JournalError> {
    let bytes = fs::read(path)?;
    let mut records = Vec::new();
    let mut report = ReplayReport::default();
    let mut start = 0;
    let mut line_no = 0;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[start..start + nl];
        start += nl + 1;
        line_no += 1;
        let text = std::str::from_utf8(line)
            .map_err(|_| corrupt(line_no, "record is not valid UTF-8"))?;
        records.push(decode_record(text, line_no)?);
    }
    if start < bytes.len() {
        report.torn_tail = true;
    }
    report.records = records.len();
    Ok((records, report))
}

// ---------------------------------------------------------------------
// Atomic artifact writes
// ---------------------------------------------------------------------

/// The directory a path's file lives in (`.` for bare file names).
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Fsyncs a directory so a just-created or just-renamed entry inside it
/// survives power loss. On unix this is a real `fsync` of the opened
/// directory and its failure propagates; elsewhere directories cannot
/// be opened for syncing and the call is a no-op (the rename itself is
/// still atomic).
#[cfg(unix)]
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

/// Writes `bytes` to `path` atomically and durably: the data lands in
/// a temporary sibling file, is fsync'd, renamed over the target, and
/// the parent directory is fsync'd so the rename itself survives power
/// loss. Readers — and a crash at any instant — see either the
/// complete old file or the complete new file, never a torn one.
///
/// # Errors
///
/// Propagates filesystem errors; on failure the target file is
/// untouched and the temporary is removed.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with(path, |file| file.write_all(bytes))
}

/// The streaming form of [`atomic_write`]: `fill` receives the
/// temporary file to populate. Used directly for large artifacts; the
/// same crash-safety and durability contract applies.
///
/// # Errors
///
/// Propagates filesystem errors (from `fill` or the commit steps); on
/// failure the target file is untouched and the temporary is removed.
pub fn atomic_write_with(
    path: &Path,
    fill: impl FnOnce(&mut File) -> io::Result<()>,
) -> io::Result<()> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "atomic_write target has no file name")
    })?;
    let dir = parent_dir(path);
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut file = File::create(&tmp)?;
        fill(&mut file)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // Without this the rename can evaporate on power loss: the
        // data blocks are durable but the directory entry pointing at
        // them is not.
        sync_dir(&dir)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ucore-journal-{}-{tag}",
            std::process::id()
        ))
    }

    fn feasible() -> Outcome {
        Outcome::Feasible(NodePoint {
            node: TechNode::N22,
            speedup: 12.345678901234567,
            limiter: Limiter::Bandwidth,
            r: 4.0,
            n: 117.25,
            energy: f64::NAN,
        })
    }

    fn record(seq: u64, index: usize, outcome: Outcome) -> JournalRecord {
        JournalRecord { sweep_seq: seq, index, fingerprint: 0xdead_beef_cafe_f00d, retries: 2, outcome }
    }

    /// Outcome equality that treats NaN bit patterns as equal (derived
    /// `PartialEq` follows IEEE NaN != NaN).
    fn outcomes_bit_equal(a: &Outcome, b: &Outcome) -> bool {
        match (a, b) {
            (Outcome::Feasible(x), Outcome::Feasible(y)) => {
                x.node == y.node
                    && x.limiter == y.limiter
                    && x.speedup.to_bits() == y.speedup.to_bits()
                    && x.r.to_bits() == y.r.to_bits()
                    && x.n.to_bits() == y.n.to_bits()
                    && x.energy.to_bits() == y.energy.to_bits()
            }
            (Outcome::Infeasible, Outcome::Infeasible) => true,
            (Outcome::Failed { panic_msg: x }, Outcome::Failed { panic_msg: y }) => x == y,
            _ => false,
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn field_escaping_round_trips_hostile_strings() {
        for s in [
            "plain",
            "",
            "tab\there",
            "line\nbreak\r\n",
            "back\\slash \\t literal",
            "unicode ≠ 判定 🚀",
            "\\",
            "trailing\t",
        ] {
            let escaped = escape_field(s);
            assert!(!escaped.contains('\t') && !escaped.contains('\n'), "{s:?}");
            assert_eq!(unescape_field(&escaped).as_deref(), Some(s));
        }
        assert_eq!(unescape_field("dangling\\"), None);
        assert_eq!(unescape_field("bad\\q"), None);
    }

    #[test]
    fn f64_hex_is_bit_exact_for_every_special_value() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let back = f64_from_hex(&f64_to_hex(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(f64_from_hex("short"), None);
        assert_eq!(f64_from_hex("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn records_encode_and_decode_across_all_variants() {
        for outcome in [
            feasible(),
            Outcome::Infeasible,
            Outcome::Failed { panic_msg: "panicked:\twith\nnewlines \\ and 判定".into() },
            Outcome::Failed { panic_msg: String::new() },
        ] {
            let rec = record(3, 41, outcome);
            let line = encode_record(&rec);
            assert!(line.ends_with('\n'));
            let back = decode_record(line.trim_end_matches('\n'), 1).unwrap();
            assert_eq!(back.sweep_seq, rec.sweep_seq);
            assert_eq!(back.index, rec.index);
            assert_eq!(back.fingerprint, rec.fingerprint);
            assert_eq!(back.retries, rec.retries);
            assert!(outcomes_bit_equal(&back.outcome, &rec.outcome));
        }
    }

    #[test]
    fn decode_rejects_tampered_lines() {
        let line = encode_record(&record(0, 7, Outcome::Infeasible));
        let line = line.trim_end_matches('\n');
        // Flip one payload byte: checksum must catch it.
        let tampered = line.replace("infeasible", "infeasiblE");
        let err = decode_record(&tampered, 4).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        assert!(err.to_string().contains("line 4"), "{err}");
        // Wrong version tag.
        let err = decode_record(&format!("u9{}", &line[2..]), 1).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn writer_appends_and_replay_restores() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        let recs = vec![
            record(0, 0, feasible()),
            record(0, 1, Outcome::Infeasible),
            record(0, 2, Outcome::Failed { panic_msg: "boom".into() }),
            record(1, 0, Outcome::Infeasible),
        ];
        for r in &recs {
            w.append(r).unwrap();
        }
        assert_eq!(w.appended(), 4);
        drop(w);

        let (map, report) = replay(&path).unwrap();
        assert_eq!(report.records, 4);
        assert!(!report.torn_tail);
        assert_eq!(report.duplicates, 0);
        let hit = map.lookup(0, 0, 0xdead_beef_cafe_f00d);
        let ReplayLookup::Hit(rec) = hit else {
            panic!("expected hit, got {hit:?}")
        };
        assert_eq!(rec.retries, 2);
        assert!(outcomes_bit_equal(&rec.outcome, &feasible()));
        assert_eq!(map.lookup(0, 0, 0x1234), ReplayLookup::Stale);
        assert_eq!(map.lookup(5, 0, 0x1234), ReplayLookup::Miss);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let path = temp_path("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&record(0, 0, Outcome::Infeasible)).unwrap();
        w.append(&record(0, 1, feasible())).unwrap();
        drop(w);
        // Tear the final record: drop its last 9 bytes (incl. newline).
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let (map, report) = replay(&path).unwrap();
        assert_eq!(report.records, 1, "only the intact record survives");
        assert!(report.torn_tail, "the tear is reported");
        assert!(matches!(map.lookup(0, 0, 0xdead_beef_cafe_f00d), ReplayLookup::Hit(_)));
        assert!(matches!(map.lookup(0, 1, 0xdead_beef_cafe_f00d), ReplayLookup::Miss));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = temp_path("corrupt");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&record(0, 0, Outcome::Infeasible)).unwrap();
        w.append(&record(0, 1, Outcome::Infeasible)).unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        bytes[20] ^= 0x55; // corrupt the first line, not the tail
        fs::write(&path, &bytes).unwrap();

        let err = replay(&path).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { line: 1, .. }), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn duplicate_slots_keep_the_last_record() {
        let path = temp_path("dups");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&record(0, 0, Outcome::Infeasible)).unwrap();
        w.append(&record(0, 0, Outcome::Failed { panic_msg: "later".into() })).unwrap();
        drop(w);
        let (map, report) = replay(&path).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.duplicates, 1);
        let ReplayLookup::Hit(rec) = map.lookup(0, 0, 0xdead_beef_cafe_f00d) else {
            panic!("expected hit")
        };
        assert_eq!(rec.outcome.failure_message(), Some("later"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_content_atomically() {
        let path = temp_path("atomic-ok");
        fs::write(&path, b"old content").unwrap();
        atomic_write(&path, b"new content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new content");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn failed_atomic_write_leaves_the_old_file_intact() {
        let path = temp_path("atomic-fail");
        fs::write(&path, b"precious").unwrap();
        let err = atomic_write_with(&path, |file| {
            // Simulate a crash mid-write: some bytes land, then the
            // write path errors out before the commit rename.
            file.write_all(b"half-writ")?;
            Err(io::Error::other("simulated failure mid-write"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("simulated failure"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"precious", "old artifact untouched");
        // And the temporary was cleaned up.
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!(".{name}.tmp")))
            .collect();
        assert!(leftovers.is_empty(), "stray temporaries: {leftovers:?}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprints_distinguish_points_and_are_stable() {
        use crate::engine::{DesignId, ProjectionEngine};
        use crate::scenario::Scenario;
        use crate::sweep::figure_points;
        use std::sync::Arc;
        use ucore_calibrate::WorkloadColumn;
        use ucore_core::EvalCache;

        let e = ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
            .unwrap();
        let designs = DesignId::for_column(e.table5(), WorkloadColumn::Fft1024);
        let points =
            figure_points(&e, &designs, WorkloadColumn::Fft1024, &[0.5, 0.9]).unwrap();
        let fps: Vec<u64> = points.iter().map(point_fingerprint).collect();
        let mut unique = fps.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), fps.len(), "grid points fingerprint distinctly");
        assert_eq!(fps[0], point_fingerprint(&points[0]), "stable across calls");
    }
}
