//! Golden tests pinning the paper-claim headline numbers.
//!
//! Each constant below is the value this repository currently produces
//! (not the paper's published number — see the range-based claim tests
//! for those). Pinning exact values turns any silent numerical drift —
//! a refactored formula, a changed evaluation order, a different
//! calibration draw — into a loud test failure. The parallel sweep
//! engine is covered implicitly: figures are built through it, so these
//! goldens also certify that fan-out and memoization do not perturb
//! results.
//!
//! To regenerate after an *intentional* model change, run
//!
//! ```text
//! cargo test -p ucore-project --test paper_claims -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants.

use ucore_core::{BoundSet, Budgets, ChipSpec, Limiter};
use ucore_devices::{DeviceId, TechNode};
use ucore_itrs::{Trend, TrendSeries};
use ucore_project::figures;

/// Relative tolerance for golden comparisons: tight enough to catch any
/// real drift, loose enough to ignore the last couple of ulps should a
/// future compiler reassociate a sum.
const REL_TOL: f64 = 1e-9;

fn assert_close(actual: f64, golden: f64, what: &str) {
    let rel = (actual - golden).abs() / golden.abs().max(f64::MIN_POSITIVE);
    assert!(
        rel <= REL_TOL,
        "{what}: got {actual:?}, golden {golden:?} (rel err {rel:.3e})"
    );
}

// --- Figure 6: FFT-1024 speedup projection (baseline scenario) -------

const F6_ASIC_F0999_N40: f64 = 44.886546798861154;
const F6_ASIC_F0999_N11: f64 = 62.70468949531292;
const F6_GTX480_F099_N11: f64 = 55.382181065128485;
const F6_ASYMCMP_F05_N11: f64 = 7.178085443413673;

#[test]
fn figure6_goldens() {
    let fig = figures::figure6().unwrap();
    assert_close(
        fig.value(0.999, "ASIC", TechNode::N40).unwrap(),
        F6_ASIC_F0999_N40,
        "figure 6, f=0.999, ASIC, 40 nm",
    );
    assert_close(
        fig.value(0.999, "ASIC", TechNode::N11).unwrap(),
        F6_ASIC_F0999_N11,
        "figure 6, f=0.999, ASIC, 11 nm",
    );
    assert_close(
        fig.value(0.99, "GTX480", TechNode::N11).unwrap(),
        F6_GTX480_F099_N11,
        "figure 6, f=0.99, GTX480, 11 nm",
    );
    assert_close(
        fig.value(0.5, "AsymCMP", TechNode::N11).unwrap(),
        F6_ASYMCMP_F05_N11,
        "figure 6, f=0.5, AsymCMP, 11 nm",
    );
}

// --- Figure 7: MMM speedup projection --------------------------------

const F7_ASIC_F0999_N11: f64 = 921.2500884793003;
const F7_SYMCMP_F0999_N11: f64 = 33.70535695183475;

#[test]
fn figure7_goldens() {
    let fig = figures::figure7().unwrap();
    assert_close(
        fig.value(0.999, "ASIC", TechNode::N11).unwrap(),
        F7_ASIC_F0999_N11,
        "figure 7, f=0.999, ASIC, 11 nm",
    );
    assert_close(
        fig.value(0.999, "SymCMP", TechNode::N11).unwrap(),
        F7_SYMCMP_F0999_N11,
        "figure 7, f=0.999, SymCMP, 11 nm",
    );
    // The paper's headline: the bandwidth-exempt MMM ASIC runs away
    // from the CMPs by well over an order of magnitude.
    let asic = fig.value(0.999, "ASIC", TechNode::N11).unwrap();
    let cmp = fig.value(0.999, "SymCMP", TechNode::N11).unwrap();
    assert!(asic / cmp > 25.0);
}

// --- Figure 8: Black-Scholes speedup projection ----------------------

const F8_ASIC_F09_N11: f64 = 35.61931976422729;

#[test]
fn figure8_goldens() {
    let fig = figures::figure8().unwrap();
    assert_close(
        fig.value(0.9, "ASIC", TechNode::N11).unwrap(),
        F8_ASIC_F09_N11,
        "figure 8, f=0.9, ASIC, 11 nm",
    );
}

// --- Figure 9: FFT under the 1 TB/s bandwidth scenario ---------------

const F9_ASIC_F0999_N11: f64 = 325.13994780052565;

#[test]
fn figure9_goldens() {
    let fig = figures::figure9().unwrap();
    assert_close(
        fig.value(0.999, "ASIC", TechNode::N11).unwrap(),
        F9_ASIC_F0999_N11,
        "figure 9, f=0.999, ASIC, 11 nm",
    );
    // Relieving the bandwidth wall must lift the FFT ASIC well past its
    // baseline ceiling.
    let terabyte = fig.value(0.999, "ASIC", TechNode::N11).unwrap();
    assert!(terabyte > 4.0 * F6_ASIC_F0999_N11);
}

// --- Figure 10: MMM normalized-energy projection ---------------------

const F10_ASIC_F09_N40: f64 = 0.2719944736592484;
const F10_SYMCMP_F09_N40: f64 = 1.0;

#[test]
fn figure10_goldens() {
    let fig = figures::figure10().unwrap();
    assert_close(
        fig.value(0.9, "ASIC", TechNode::N40).unwrap(),
        F10_ASIC_F09_N40,
        "figure 10, f=0.9, ASIC, 40 nm",
    );
    assert_close(
        fig.value(0.9, "SymCMP", TechNode::N40).unwrap(),
        F10_SYMCMP_F09_N40,
        "figure 10, f=0.9, SymCMP, 40 nm",
    );
}

// --- Figure 11: composite-workload portfolio projection --------------

const F11_ASIC_SPLIT_F0999_N11: f64 = 1093.5655645094646;
const F11_GTX285_SHARED_F099_N11: f64 = 106.17223687703978;
const F11_LX760_SPLIT_F09_N40: f64 = 6.502298292172333;

#[test]
fn figure11_goldens() {
    let fig = figures::figure11().unwrap();
    assert_close(
        fig.value(0.999, "ASIC", TechNode::N11).unwrap(),
        F11_ASIC_SPLIT_F0999_N11,
        "figure 11, f=0.999, ASIC split, 11 nm",
    );
    assert_close(
        fig.value(0.99, "GTX285", TechNode::N11).unwrap(),
        F11_GTX285_SHARED_F099_N11,
        "figure 11, f=0.99, GTX285 shared, 11 nm",
    );
    assert_close(
        fig.value(0.9, "LX760 split", TechNode::N40).unwrap(),
        F11_LX760_SPLIT_F09_N40,
        "figure 11, f=0.9, LX760 split, 40 nm",
    );
    // The split ASIC bank on the composite outruns even the MMM-only
    // ASIC: two thirds of its parallel time runs on far denser U-cores.
    let asic_split = fig.value(0.999, "ASIC", TechNode::N11).unwrap();
    assert!(asic_split > F7_ASIC_F0999_N11);
}

// --- Figure 5: ITRS 2009 scaling trends ------------------------------

#[test]
fn figure5_goldens() {
    let combined = TrendSeries::itrs_2009(Trend::CombinedPowerReduction);
    // Node-year anchors are Table 6's published factors, exactly.
    for (year, factor) in [(2011, 1.0), (2013, 0.75), (2016, 0.5), (2019, 0.36), (2022, 0.25)]
    {
        assert_eq!(combined.at(year), Some(factor), "combined power, {year}");
    }
    // Interpolated off-anchor year.
    assert_close(
        combined.at(2014).unwrap(),
        0.6666666666666666,
        "combined power, 2014",
    );
    let pins = TrendSeries::itrs_2009(Trend::PackagePins);
    assert_close(pins.at(2022).unwrap(), 1.25, "package pins, 2022");
}

// --- Table 1: the bound set for a representative design point --------

#[test]
fn table1_bound_goldens() {
    // AsymCMP at the 40 nm FFT budgets (A=19ish rounded to a stable
    // triple), r = 4: every Table 1 row evaluated once.
    let spec = ChipSpec::asymmetric_offload();
    let budgets = Budgets::new(19.0, 8.7, 45.0).unwrap();
    let bounds = BoundSet::compute(&spec, &budgets, 4.0).unwrap();
    assert_close(bounds.n_area(), 19.0, "table 1 area bound");
    assert_close(bounds.n_power(), 12.7, "table 1 power bound");
    assert_close(bounds.n_bandwidth(), 49.0, "table 1 bandwidth bound");
    assert_close(bounds.n_max(), 12.7, "table 1 usable n");
    assert_eq!(bounds.limiter(), Limiter::Power);
}

// --- Table 5: calibrated U-core parameters ---------------------------

#[test]
fn table5_ucore_goldens() {
    let table5 = ucore_calibrate::Table5::derive().unwrap();
    let asic_mmm = table5.ucore(DeviceId::Asic, ucore_calibrate::WorkloadColumn::Mmm).unwrap();
    let gtx480_fft = table5
        .ucore(DeviceId::Gtx480, ucore_calibrate::WorkloadColumn::Fft1024)
        .unwrap();
    assert_close(asic_mmm.mu(), TABLE5_ASIC_MMM_MU, "table 5 ASIC MMM mu");
    assert_close(asic_mmm.phi(), TABLE5_ASIC_MMM_PHI, "table 5 ASIC MMM phi");
    assert_close(gtx480_fft.mu(), TABLE5_GTX480_FFT_MU, "table 5 GTX480 FFT mu");
    assert_close(gtx480_fft.phi(), TABLE5_GTX480_FFT_PHI, "table 5 GTX480 FFT phi");
}

const TABLE5_ASIC_MMM_MU: f64 = 27.266037482553273;
const TABLE5_ASIC_MMM_PHI: f64 = 0.7945994585611713;
const TABLE5_GTX480_FFT_MU: f64 = 2.1999999999999997;
const TABLE5_GTX480_FFT_PHI: f64 = 0.47;

// --- Regeneration helper ---------------------------------------------

/// Prints every golden constant above from the current build. Run with
/// `-- --ignored --nocapture` and paste the output after intentional
/// model changes.
#[test]
#[ignore = "regeneration helper, not a check"]
fn dump_goldens() {
    let f6 = figures::figure6().unwrap();
    let f7 = figures::figure7().unwrap();
    let f8 = figures::figure8().unwrap();
    let f9 = figures::figure9().unwrap();
    let f10 = figures::figure10().unwrap();
    println!("F6_ASIC_F0999_N40: {:?}", f6.value(0.999, "ASIC", TechNode::N40).unwrap());
    println!("F6_ASIC_F0999_N11: {:?}", f6.value(0.999, "ASIC", TechNode::N11).unwrap());
    println!("F6_GTX480_F099_N11: {:?}", f6.value(0.99, "GTX480", TechNode::N11).unwrap());
    println!("F6_ASYMCMP_F05_N11: {:?}", f6.value(0.5, "AsymCMP", TechNode::N11).unwrap());
    println!("F7_ASIC_F0999_N11: {:?}", f7.value(0.999, "ASIC", TechNode::N11).unwrap());
    println!("F7_SYMCMP_F0999_N11: {:?}", f7.value(0.999, "SymCMP", TechNode::N11).unwrap());
    println!("F8_ASIC_F09_N11: {:?}", f8.value(0.9, "ASIC", TechNode::N11).unwrap());
    println!("F9_ASIC_F0999_N11: {:?}", f9.value(0.999, "ASIC", TechNode::N11).unwrap());
    println!("F10_ASIC_F09_N40: {:?}", f10.value(0.9, "ASIC", TechNode::N40).unwrap());
    println!("F10_SYMCMP_F09_N40: {:?}", f10.value(0.9, "SymCMP", TechNode::N40).unwrap());
    let f11 = figures::figure11().unwrap();
    println!("F11_ASIC_SPLIT_F0999_N11: {:?}", f11.value(0.999, "ASIC", TechNode::N11).unwrap());
    println!("F11_GTX285_SHARED_F099_N11: {:?}", f11.value(0.99, "GTX285", TechNode::N11).unwrap());
    println!(
        "F11_LX760_SPLIT_F09_N40: {:?}",
        f11.value(0.9, "LX760 split", TechNode::N40).unwrap()
    );
    let table5 = ucore_calibrate::Table5::derive().unwrap();
    let asic_mmm =
        table5.ucore(DeviceId::Asic, ucore_calibrate::WorkloadColumn::Mmm).unwrap();
    let gtx480_fft = table5
        .ucore(DeviceId::Gtx480, ucore_calibrate::WorkloadColumn::Fft1024)
        .unwrap();
    println!("TABLE5_ASIC_MMM_MU: {:?}", asic_mmm.mu());
    println!("TABLE5_ASIC_MMM_PHI: {:?}", asic_mmm.phi());
    println!("TABLE5_GTX480_FFT_MU: {:?}", gtx480_fft.mu());
    println!("TABLE5_GTX480_FFT_PHI: {:?}", gtx480_fft.phi());
    let spec = ChipSpec::asymmetric_offload();
    let budgets = Budgets::new(19.0, 8.7, 45.0).unwrap();
    let bounds = BoundSet::compute(&spec, &budgets, 4.0).unwrap();
    println!(
        "table1: n_area {:?} n_power {:?} n_bandwidth {:?} n_max {:?} limiter {:?}",
        bounds.n_area(),
        bounds.n_power(),
        bounds.n_bandwidth(),
        bounds.n_max(),
        bounds.limiter()
    );
    let combined = TrendSeries::itrs_2009(Trend::CombinedPowerReduction);
    println!("combined 2014: {:?}", combined.at(2014).unwrap());
}
