//! Integration tests of the durable-run contract.
//!
//! The contract under test (see DESIGN.md "Durability & recovery"):
//!
//! * A run interrupted at *any* point and resumed from its journal
//!   produces **byte-identical** figure JSON to an uninterrupted run,
//!   at any thread count, re-evaluating only the missing points.
//! * A journal whose final record is torn (the signature of a crash
//!   mid-append) resumes with a warning, never an error.
//! * A stalled point is released as `Failed{timeout}` within its
//!   `--timeout-ms` budget instead of hanging the sweep.
//! * Retries with backoff are deterministic across thread counts, and
//!   replayed points restore their journaled retry accounting.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use ucore_calibrate::WorkloadColumn;
use ucore_core::EvalCache;
use ucore_project::durability::{self, DurabilityConfig};
use ucore_project::faultinject::{self, Fault, FaultPlan};
use ucore_project::sweep::{figure_points, sweep, SweepConfig, SweepPoint};
use ucore_project::{figures, DesignId, ProjectionEngine, Scenario};

/// Durability and fault-injection state is process-global; tests that
/// activate either must not overlap.
static SERIALIZE: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIALIZE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn engine() -> ProjectionEngine {
    ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
        .unwrap()
}

fn grid(engine: &ProjectionEngine) -> Vec<SweepPoint> {
    let designs = DesignId::for_column(engine.table5(), WorkloadColumn::Fft1024);
    figure_points(engine, &designs, WorkloadColumn::Fft1024, &[0.5, 0.999]).unwrap()
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ucore-durability-it-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    path
}

/// Journals a complete figure-6 run and returns (figure JSON, journal
/// bytes). The caller truncates the bytes to simulate crashes.
fn journaled_figure6(path: &Path) -> (String, Vec<u8>) {
    let (guard, _) = durability::activate(DurabilityConfig {
        journal: Some(path.to_path_buf()),
        ..Default::default()
    })
    .unwrap();
    let fig = figures::figure6().unwrap();
    drop(guard); // fsync + deactivate
    let json = serde_json::to_string_pretty(&fig).unwrap();
    let bytes = fs::read(path).unwrap();
    (json, bytes)
}

/// Runs figure 6 resuming from `path` and returns (figure JSON,
/// journal hits, retries) read from the sweep phase log.
fn resumed_figure6(path: &Path) -> (String, u64, u64) {
    let (guard, _) = durability::activate(DurabilityConfig {
        journal: Some(path.to_path_buf()),
        resume: true,
        ..Default::default()
    })
    .unwrap();
    let _ = ucore_project::sweep::drain_phase_log();
    let fig = figures::figure6().unwrap();
    drop(guard);
    let phases = ucore_project::sweep::drain_phase_log();
    let hits: u64 = phases.iter().map(|s| s.journal_hits).sum();
    let retries: u64 = phases.iter().map(|s| s.retries).sum();
    (serde_json::to_string_pretty(&fig).unwrap(), hits, retries)
}

/// The crash/resume equivalence matrix: interrupt a journaled figure-6
/// run after k completed points (what a `kill@k` crash leaves behind),
/// resume at several thread counts, and require byte-identical JSON
/// with exactly k points answered from the journal.
#[test]
fn truncated_journal_resume_is_byte_identical_at_all_thread_counts() {
    let _lock = serialized();
    let baseline = serde_json::to_string_pretty(&figures::figure6().unwrap()).unwrap();

    let path = temp_journal("equivalence");
    let (journaled, bytes) = journaled_figure6(&path);
    assert_eq!(journaled, baseline, "journaling must not perturb output");
    let lines: Vec<&[u8]> = bytes.split_inclusive(|&b| b == b'\n').collect();
    let total = lines.len();
    assert!(total >= 100, "figure 6 sweeps >= 100 points, got {total}");

    for crash_after in [0, 1, 7, 40, total - 1, total] {
        let partial: Vec<u8> = lines[..crash_after].concat();
        for threads in ["1", "2", "4", "8"] {
            fs::write(&path, &partial).unwrap();
            std::env::set_var("UCORE_SWEEP_THREADS", threads);
            let (json, hits, _) = resumed_figure6(&path);
            std::env::remove_var("UCORE_SWEEP_THREADS");
            assert_eq!(
                json, baseline,
                "resume after {crash_after} records at {threads} threads"
            );
            assert_eq!(
                hits, crash_after as u64,
                "exactly the journaled points replay ({crash_after} records, \
                 {threads} threads)"
            );
        }
    }
    let _ = fs::remove_file(&path);
}

/// A resumed journal is *extended*: after resuming a half-complete run,
/// the journal holds every point, and a second resume replays all of
/// them (zero re-evaluations).
#[test]
fn resume_completes_the_journal_for_the_next_resume() {
    let _lock = serialized();
    let path = temp_journal("extend");
    let (_, bytes) = journaled_figure6(&path);
    let lines: Vec<&[u8]> = bytes.split_inclusive(|&b| b == b'\n').collect();
    let total = lines.len();
    fs::write(&path, lines[..total / 2].concat()).unwrap();

    let (first, first_hits, _) = resumed_figure6(&path);
    assert_eq!(first_hits, (total / 2) as u64);
    let (second, second_hits, _) = resumed_figure6(&path);
    assert_eq!(first, second);
    assert_eq!(second_hits, total as u64, "second resume is fully replayed");
    let _ = fs::remove_file(&path);
}

/// A torn final record — the bytes a crash mid-append leaves — is
/// skipped (that point re-evaluates); the resumed output is still
/// byte-identical.
#[test]
fn torn_tail_journal_resumes_cleanly() {
    let _lock = serialized();
    let baseline = serde_json::to_string_pretty(&figures::figure6().unwrap()).unwrap();
    let path = temp_journal("torn");
    let (_, bytes) = journaled_figure6(&path);
    // Tear the last record: keep everything but its final 7 bytes
    // (checksummed payload and the terminating newline).
    fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let (_, report) = ucore_project::journal::replay(&path).unwrap();
    assert!(report.torn_tail, "the tear must be detected");

    let (json, hits, _) = resumed_figure6(&path);
    assert_eq!(json, baseline);
    let full_records = bytes.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(hits, (full_records - 1) as u64, "torn record re-evaluates");
    let _ = fs::remove_file(&path);
}

/// A journal recorded for a *different* grid must not poison a run: its
/// records are stale (fingerprint mismatch) and every point
/// re-evaluates.
#[test]
fn stale_journal_records_are_ignored_not_replayed() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let path = temp_journal("stale");

    // Journal a figure-8 run, then "resume" figure 6's grid from it.
    {
        let (guard, _) = durability::activate(DurabilityConfig {
            journal: Some(path.clone()),
            ..Default::default()
        })
        .unwrap();
        figures::figure8().unwrap();
        drop(guard);
    }
    let stale_before = durability::durability_totals().journal_stale;
    let (guard, _) = durability::activate(DurabilityConfig {
        journal: Some(path.clone()),
        resume: true,
        ..Default::default()
    })
    .unwrap();
    let (results, stats) = sweep(&e, points.clone(), &SweepConfig::sequential());
    drop(guard);
    assert_eq!(stats.journal_hits, 0, "foreign journal must not answer points");
    assert!(
        durability::durability_totals().journal_stale > stale_before,
        "mismatching fingerprints are counted as stale"
    );
    let (reference, _) = sweep(&e, points, &SweepConfig::sequential());
    for (a, b) in results.iter().zip(&reference) {
        assert_eq!(a.outcome, b.outcome, "index {}", a.index);
    }
    let _ = fs::remove_file(&path);
}

/// `stall@i` under a watchdog deadline: the stalled point is released
/// as `Failed{timeout}` within (approximately) the budget, every other
/// point is untouched, and the result is thread-count independent.
#[test]
fn stalled_point_fails_with_timeout_within_budget() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let k = 5;
    let budget = Duration::from_millis(120);
    let (reference, _) = sweep(&e, points.clone(), &SweepConfig::sequential());

    for threads in [1, 4] {
        let (dur_guard, _) = durability::activate(DurabilityConfig {
            timeout: Some(budget),
            ..Default::default()
        })
        .unwrap();
        let fault_guard = faultinject::activate(FaultPlan::new().with(k, Fault::Stall));
        let started = std::time::Instant::now();
        let (results, stats) = sweep(
            &e,
            points.clone(),
            &SweepConfig { threads: Some(threads), use_cache: true },
        );
        let elapsed = started.elapsed();
        drop(fault_guard);
        drop(dur_guard);

        assert_eq!(stats.points_failed, 1, "threads = {threads}");
        assert_eq!(
            results[k].outcome.failure_message(),
            Some(format!("watchdog timeout: point {k} exceeded its 120 ms deadline")
                .as_str()),
            "threads = {threads}"
        );
        assert!(
            elapsed < budget + Duration::from_secs(5),
            "the stall must not hang the sweep (took {elapsed:?})"
        );
        for (r, i) in reference.iter().zip(&results) {
            if i.index != k {
                assert_eq!(r.outcome, i.outcome, "index {}, threads {threads}", r.index);
            }
        }
    }
}

/// A transient fault (`panic@kx1`) recovers under `--retries`: the
/// point succeeds on its second attempt, with identical outcomes and
/// identical retry accounting at every thread count.
#[test]
fn transient_fault_recovers_via_retry_deterministically() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let k = 3;
    let (reference, _) = sweep(&e, points.clone(), &SweepConfig::sequential());

    for threads in [1, 2, 4, 8] {
        let (dur_guard, _) = durability::activate(DurabilityConfig {
            retries: 2,
            ..Default::default()
        })
        .unwrap();
        let fault_guard =
            faultinject::activate(FaultPlan::new().with_transient(k, Fault::Panic, 1));
        let (results, stats) = sweep(
            &e,
            points.clone(),
            &SweepConfig { threads: Some(threads), use_cache: true },
        );
        drop(fault_guard);
        drop(dur_guard);

        assert_eq!(stats.points_failed, 0, "retry recovered, threads = {threads}");
        assert_eq!(stats.retries, 1, "exactly one retry, threads = {threads}");
        for (r, i) in reference.iter().zip(&results) {
            assert_eq!(r.outcome, i.outcome, "index {}, threads {threads}", r.index);
        }
    }
}

/// A persistent fault exhausts its retry budget and stays `Failed`,
/// consuming exactly `retries` attempts.
#[test]
fn persistent_fault_exhausts_the_retry_budget() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let k = 3;
    let (dur_guard, _) = durability::activate(DurabilityConfig {
        retries: 2,
        ..Default::default()
    })
    .unwrap();
    let fault_guard = faultinject::activate(FaultPlan::new().with(k, Fault::Panic));
    let (results, stats) = sweep(&e, points, &SweepConfig::sequential());
    drop(fault_guard);
    drop(dur_guard);

    assert_eq!(stats.points_failed, 1);
    assert_eq!(stats.retries, 2, "both retries were consumed");
    assert_eq!(
        results[k].outcome.failure_message(),
        Some(format!("injected panic at point {k}").as_str())
    );
}

/// Replayed points restore their journaled retry counts, so the health
/// accounting of a resumed run matches the uninterrupted run exactly.
#[test]
fn resume_restores_retry_accounting_from_the_journal() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let k = 3;
    let path = temp_journal("retry-replay");

    // Original run: transient fault at k, one retry consumed, journaled.
    let (dur_guard, _) = durability::activate(DurabilityConfig {
        journal: Some(path.clone()),
        retries: 2,
        ..Default::default()
    })
    .unwrap();
    let fault_guard =
        faultinject::activate(FaultPlan::new().with_transient(k, Fault::Panic, 1));
    let (original, original_stats) = sweep(&e, points.clone(), &SweepConfig::sequential());
    drop(fault_guard);
    drop(dur_guard);
    assert_eq!(original_stats.retries, 1);

    // Resume: everything replays — including the retry count — with no
    // fault plan active and no re-evaluation.
    let (dur_guard, _) = durability::activate(DurabilityConfig {
        journal: Some(path.clone()),
        resume: true,
        retries: 2,
        ..Default::default()
    })
    .unwrap();
    let (resumed, resumed_stats) = sweep(&e, points, &SweepConfig::sequential());
    drop(dur_guard);

    assert_eq!(resumed_stats.journal_hits as usize, resumed.len());
    assert_eq!(
        resumed_stats.retries, original_stats.retries,
        "journaled retry accounting is restored"
    );
    for (a, b) in original.iter().zip(&resumed) {
        assert_eq!(a.outcome, b.outcome, "index {}", a.index);
    }
    let _ = fs::remove_file(&path);
}

/// Backoff delays are pure functions of (index, attempt): identical
/// across calls, growing exponentially, jittered within [raw/2, raw).
#[test]
fn backoff_schedule_is_reproducible() {
    for index in [0usize, 3, 99] {
        for attempt in 0..6u32 {
            assert_eq!(
                durability::backoff_delay(index, attempt),
                durability::backoff_delay(index, attempt),
            );
        }
    }
}

mod journal_roundtrip {
    //! Property tests: the journal codec preserves every `Outcome`
    //! variant — including `Failed{panic_msg}` with arbitrary hostile
    //! strings and `Feasible` points with arbitrary f64 bit patterns —
    //! exactly, through encode → append → replay.

    use proptest::prelude::*;
    use std::fs;
    use ucore_core::Limiter;
    use ucore_devices::TechNode;
    use ucore_project::journal::{
        self, JournalRecord, JournalWriter, ReplayLookup,
    };
    use ucore_project::sweep::Outcome;
    use ucore_project::NodePoint;

    /// Arbitrary (often hostile) text: separators, escapes, quotes,
    /// multi-byte unicode, and plain ASCII.
    fn panic_text() -> impl Strategy<Value = String> {
        prop::collection::vec(
            prop::sample::select(vec![
                '\t', '\n', '\r', '\\', '"', ' ', 'a', 'Z', '0', '@', '判', '€', '🚀',
                '\u{0}', '\u{7f}',
            ]),
            24,
        )
        .prop_map(|chars| chars.into_iter().collect())
    }

    fn any_f64_bits() -> impl Strategy<Value = f64> {
        (0u64..=u64::MAX).prop_map(f64::from_bits)
    }

    fn any_node() -> impl Strategy<Value = TechNode> {
        prop::sample::select(TechNode::ALL.to_vec())
    }

    fn any_limiter() -> impl Strategy<Value = Limiter> {
        prop::sample::select(vec![Limiter::Area, Limiter::Power, Limiter::Bandwidth])
    }

    fn bits_equal(a: &Outcome, b: &Outcome) -> bool {
        match (a, b) {
            (Outcome::Feasible(x), Outcome::Feasible(y)) => {
                x.node == y.node
                    && x.limiter == y.limiter
                    && x.speedup.to_bits() == y.speedup.to_bits()
                    && x.r.to_bits() == y.r.to_bits()
                    && x.n.to_bits() == y.n.to_bits()
                    && x.energy.to_bits() == y.energy.to_bits()
            }
            (Outcome::Infeasible, Outcome::Infeasible) => true,
            (Outcome::Failed { panic_msg: x }, Outcome::Failed { panic_msg: y }) => {
                x == y
            }
            _ => false,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Failed outcomes with arbitrary panic strings survive the
        /// file round trip byte-for-byte.
        #[test]
        fn failed_outcomes_round_trip(
            msg in panic_text(),
            seq in 0u64..8,
            index in 0usize..512,
            retries in 0u32..5,
        ) {
            let rec = JournalRecord {
                sweep_seq: seq,
                index,
                fingerprint: 0x1234_5678_9abc_def0,
                retries,
                outcome: Outcome::Failed { panic_msg: msg.clone() },
            };
            let line = journal::encode_record(&rec);
            let back = journal::decode_record(line.trim_end_matches('\n'), 1)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&back.outcome.failure_message(), &Some(msg.as_str()));
            prop_assert_eq!(back.retries, retries);
            prop_assert_eq!(back.sweep_seq, seq);
            prop_assert_eq!(back.index, index);
        }

        /// Feasible outcomes with arbitrary f64 *bit patterns* (NaNs,
        /// infinities, subnormals, -0.0) and every node/limiter survive
        /// an actual write-to-disk → replay cycle exactly.
        #[test]
        fn all_outcome_variants_survive_the_file_round_trip(
            speedup in any_f64_bits(),
            r in any_f64_bits(),
            n in any_f64_bits(),
            energy in any_f64_bits(),
            node in any_node(),
            limiter in any_limiter(),
            msg in panic_text(),
        ) {
            let outcomes = [
                Outcome::Feasible(NodePoint { node, speedup, limiter, r, n, energy }),
                Outcome::Infeasible,
                Outcome::Failed { panic_msg: msg },
            ];
            let path = std::env::temp_dir().join(format!(
                "ucore-journal-prop-{}-{:x}.jsonl",
                std::process::id(),
                speedup.to_bits() ^ r.to_bits(),
            ));
            {
                let mut w = JournalWriter::create(&path)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                for (i, outcome) in outcomes.iter().enumerate() {
                    w.append(&JournalRecord {
                        sweep_seq: 0,
                        index: i,
                        fingerprint: 0xabcd ^ i as u64,
                        retries: i as u32,
                        outcome: outcome.clone(),
                    })
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                }
            }
            let (map, report) = journal::replay(&path)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let _ = fs::remove_file(&path);
            prop_assert_eq!(report.records, outcomes.len());
            prop_assert!(!report.torn_tail);
            for (i, outcome) in outcomes.iter().enumerate() {
                let hit = map.lookup(0, i, 0xabcd ^ i as u64);
                let ReplayLookup::Hit(rec) = hit else {
                    return Err(TestCaseError::fail(format!("missing record {i}")));
                };
                prop_assert!(
                    bits_equal(&rec.outcome, outcome),
                    "outcome {i} mutated: {:?} != {:?}", rec.outcome, outcome
                );
                prop_assert_eq!(rec.retries, i as u32);
            }
        }
    }
}

/// ISSUE 8 satellite: `enospc@i` / `eio@i` disk faults fire at the
/// *journal append*, not the evaluation. The documented degradation
/// path must hold: the run continues, every result is bit-identical to
/// a clean run, `journal.write_errors` increments, and appends stop at
/// the failed index (journaling disabled for the rest of the run).
#[test]
fn disk_fault_degrades_journaling_but_not_results() {
    let _guard = serialized();
    let e = engine();
    let points = grid(&e);
    let (clean, _) = sweep(&e, points.clone(), &SweepConfig::sequential());

    for (kind, tag) in [(Fault::DiskEnospc, "enospc"), (Fault::DiskEio, "eio")] {
        let path = temp_journal(&format!("disk-{tag}"));
        let before = ucore_obs::registry().snapshot().counter("journal.write_errors");
        let (dguard, _) = durability::activate(DurabilityConfig {
            journal: Some(path.clone()),
            ..Default::default()
        })
        .unwrap();
        let fguard = faultinject::activate(FaultPlan::new().with(2, kind));
        let (faulted, stats) = sweep(&e, points.clone(), &SweepConfig::sequential());
        drop(fguard);
        drop(dguard);
        assert_eq!(stats.points_failed, 0, "{tag}: disk faults never fail points");
        for (a, b) in clean.iter().zip(&faulted) {
            assert_eq!(a.outcome, b.outcome, "{tag}: index {}", a.index);
        }
        let after = ucore_obs::registry().snapshot().counter("journal.write_errors");
        assert_eq!(after - before, 1, "{tag}: exactly one write error counted");
        // Points 0 and 1 reached the journal; the failed append at
        // index 2 disabled journaling for the rest of the run.
        let (records, _) = ucore_project::read_records(&path).unwrap();
        assert_eq!(records.len(), 2, "{tag}: appends stop at the failed index");
        assert!(
            records.iter().all(|r| r.index < 2),
            "{tag}: only pre-fault indices journaled"
        );
        let _ = fs::remove_file(&path);
    }
}

/// A disk-degraded journal still resumes: the surviving prefix replays
/// and only the missing tail re-evaluates, byte-identically.
#[test]
fn disk_degraded_journal_remains_resumable() {
    let _guard = serialized();
    let path = temp_journal("disk-resume");
    {
        let (dguard, _) = durability::activate(DurabilityConfig {
            journal: Some(path.clone()),
            ..Default::default()
        })
        .unwrap();
        let _fguard =
            faultinject::activate(FaultPlan::new().with(5, Fault::DiskEnospc));
        let _ = figures::figure6().unwrap();
        drop(dguard);
    }
    let (resumed_json, hits, _) = resumed_figure6(&path);
    let clean = serde_json::to_string_pretty(&figures::figure6().unwrap()).unwrap();
    assert_eq!(resumed_json, clean, "resume after disk degradation is inert");
    assert_eq!(hits, 5, "exactly the pre-fault prefix replays");
    let _ = fs::remove_file(&path);
}
