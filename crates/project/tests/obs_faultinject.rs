//! Crossover tests: the observability layer under injected faults.
//!
//! Two subsystems with their own accounting must agree. The figure
//! pipeline reports per-run health (`FigureData::health`, `SweepStats`)
//! from data it threads through the sweep; the metrics registry counts
//! the same events through process-global counters. These tests inject
//! faults and assert the two ledgers move in lockstep — and that a
//! worker panic cannot corrupt the span ring buffer (the exit event is
//! emitted by the guard's `Drop` during unwinding).
//!
//! Registry counters are cumulative for the process, so every assertion
//! is on *deltas* between two snapshots.

use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use ucore_calibrate::WorkloadColumn;
use ucore_core::EvalCache;
use ucore_obs::MetricsSnapshot;
use ucore_project::durability::{self, DurabilityConfig};
use ucore_project::faultinject::{activate, Fault, FaultPlan};
use ucore_project::sweep::{figure_points, sweep, SweepConfig, SweepPoint};
use ucore_project::{DesignId, ProjectionEngine, Scenario};

/// The active fault plan (and the registry deltas under test) are
/// process-global; tests must not overlap.
static SERIALIZE: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIALIZE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn engine() -> ProjectionEngine {
    ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
        .unwrap()
}

fn grid(engine: &ProjectionEngine) -> Vec<SweepPoint> {
    let designs = DesignId::for_column(engine.table5(), WorkloadColumn::Fft1024);
    figure_points(engine, &designs, WorkloadColumn::Fft1024, &[0.5, 0.999]).unwrap()
}

/// Counter movement between two registry snapshots.
fn delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    after.counter(name) - before.counter(name)
}

#[test]
fn panic_fault_registry_deltas_match_figure_health() {
    let _lock = serialized();
    let before = ucore_obs::registry().snapshot();
    let guard = activate(FaultPlan::new().with(3, Fault::Panic));
    let fig = ucore_project::figures::figure6().unwrap();
    drop(guard);
    let after = ucore_obs::registry().snapshot();

    assert_eq!(
        delta(&before, &after, "points.ok") as usize,
        fig.health.points_ok
    );
    assert_eq!(
        delta(&before, &after, "points.infeasible") as usize,
        fig.health.points_infeasible
    );
    assert_eq!(
        delta(&before, &after, "points.failed") as usize,
        fig.health.points_failed
    );
    // This run did not resume a journal, so the registry's retry count
    // (this-process retries) equals the figure's (which would also
    // include replayed retries on a resumed run).
    assert_eq!(delta(&before, &after, "points.retries"), fig.health.retries);
    assert_eq!(
        delta(&before, &after, "points.submitted"),
        delta(&before, &after, "points.ok")
            + delta(&before, &after, "points.infeasible")
            + delta(&before, &after, "points.failed"),
        "outcome identity holds under an injected panic"
    );
    assert_eq!(
        delta(&before, &after, "failures.retained") as usize,
        fig.failures.len(),
        "each contained failure lands one retained diagnostic"
    );
}

#[test]
fn stall_fault_under_watchdog_moves_both_ledgers_identically() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let k = 5;
    let n = points.len();

    let before = ucore_obs::registry().snapshot();
    let (dur_guard, _) = durability::activate(DurabilityConfig {
        timeout: Some(Duration::from_millis(120)),
        ..Default::default()
    })
    .unwrap();
    let fault_guard = activate(FaultPlan::new().with(k, Fault::Stall));
    let (_, stats) =
        sweep(&e, points, &SweepConfig { threads: Some(4), use_cache: true });
    drop(fault_guard);
    drop(dur_guard);
    let after = ucore_obs::registry().snapshot();

    assert_eq!(stats.points_failed, 1, "the stalled point times out");
    assert_eq!(delta(&before, &after, "points.submitted") as usize, n);
    assert_eq!(delta(&before, &after, "points.ok") as usize, stats.points_ok);
    assert_eq!(
        delta(&before, &after, "points.infeasible") as usize,
        stats.points_infeasible
    );
    assert_eq!(
        delta(&before, &after, "points.failed") as usize,
        stats.points_failed
    );
    assert_eq!(delta(&before, &after, "points.retries"), stats.retries);
    assert_eq!(delta(&before, &after, "sweep.batches"), 1);
}

#[test]
fn span_buffer_survives_worker_panics_uncorrupted() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let n = points.len();
    let k = 7;

    let trace_guard = ucore_obs::trace::start(ucore_obs::trace::DEFAULT_CAPACITY);
    let fault_guard = activate(FaultPlan::new().with(k, Fault::Panic));
    let (_, stats) =
        sweep(&e, points, &SweepConfig { threads: Some(4), use_cache: false });
    drop(fault_guard);
    let trace = ucore_obs::trace::snapshot().expect("tracing is armed");
    drop(trace_guard);

    assert_eq!(stats.points_failed, 1);
    assert_eq!(trace.dropped, 0, "this grid fits the default ring");
    // Every enter has a matching exit per name — including the panicked
    // point, whose exit is emitted while its worker unwinds.
    let mut balance = std::collections::BTreeMap::new();
    let mut node_point_enters = 0u64;
    let mut panicked_point_seen = false;
    for event in &trace.events {
        let name = trace.name(event.name);
        let slot = balance.entry(name).or_insert(0i64);
        match event.kind {
            ucore_obs::SpanKind::Enter => *slot += 1,
            ucore_obs::SpanKind::Exit => *slot -= 1,
        }
        if name == "engine.node_point" {
            if event.kind == ucore_obs::SpanKind::Enter {
                node_point_enters += 1;
            }
            if event.index == k as u64 {
                panicked_point_seen = true;
            }
        }
    }
    assert!(
        balance.values().all(|&v| v == 0),
        "unbalanced enter/exit counts: {balance:?}"
    );
    // The panicked point never reaches `resolve_point`'s evaluation of
    // the remaining points: all n points still open their span.
    assert_eq!(node_point_enters, n as u64);
    assert!(panicked_point_seen, "the faulted index traced its span");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The outcome identity `ok + infeasible + failed == submitted`
    /// holds for registry deltas under any mix of injected faults at
    /// any thread count.
    #[test]
    fn outcome_identity_holds_under_random_faults(
        fault_indices in prop::collection::vec(0usize..40, 3),
        threads in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let _lock = serialized();
        let e = engine();
        let points = grid(&e);
        let n = points.len();
        let mut plan = FaultPlan::new();
        let mut faulted = std::collections::BTreeSet::new();
        for (j, &i) in fault_indices.iter().enumerate() {
            if i < n && faulted.insert(i) {
                let fault = match j % 3 {
                    0 => Fault::Panic,
                    1 => Fault::NanParam,
                    _ => Fault::CacheError,
                };
                plan = plan.with(i, fault);
            }
        }

        let before = ucore_obs::registry().snapshot();
        let guard = activate(plan);
        let (_, stats) = sweep(
            &e,
            points,
            &SweepConfig { threads: Some(threads), use_cache: false },
        );
        drop(guard);
        let after = ucore_obs::registry().snapshot();

        let d = |name: &str| delta(&before, &after, name);
        prop_assert_eq!(d("points.submitted") as usize, n);
        prop_assert_eq!(
            d("points.ok") + d("points.infeasible") + d("points.failed"),
            d("points.submitted")
        );
        prop_assert_eq!(d("points.failed") as usize, faulted.len());
        prop_assert_eq!(d("points.failed") as usize, stats.points_failed);
    }
}
