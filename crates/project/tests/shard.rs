//! Integration tests of the shard protocol's core invariants.
//!
//! The contract under test (see DESIGN.md "Sharded execution"):
//!
//! * A worker with an active `ShardSpec` lease evaluates and journals
//!   **only** its lease; everything else is skipped without touching
//!   the journal or the outcome counters.
//! * Shard journals merged in shard order are byte-identical to the
//!   journal of a single sequential run over the same grid — the merge
//!   is index-sorted and deterministic for any interleaving.
//! * Overlapping shard journals (a reassigned lease executed by two
//!   workers) dedupe deterministically: matching fingerprints keep the
//!   later record, mismatched fingerprints reject the later write.
//! * Missing shard journals and torn tails are tolerated and counted,
//!   never errors.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use ucore_calibrate::WorkloadColumn;
use ucore_core::EvalCache;
use ucore_project::durability::{self, DurabilityConfig};
use ucore_project::journal::{read_records, replay, JournalRecord, JournalWriter, ReplayLookup};
use ucore_project::shard::{lease_ranges, merge_journals, shard_journal_path, ShardSpec};
use ucore_project::sweep::{figure_points, sweep, Outcome, SweepConfig, SweepPoint};
use ucore_project::{DesignId, ProjectionEngine, Scenario};

/// Durability state is process-global; tests that activate it must not
/// overlap.
static SERIALIZE: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIALIZE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn engine() -> ProjectionEngine {
    ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
        .unwrap()
}

fn grid(engine: &ProjectionEngine) -> Vec<SweepPoint> {
    let designs = DesignId::for_column(engine.table5(), WorkloadColumn::Fft1024);
    figure_points(engine, &designs, WorkloadColumn::Fft1024, &[0.5, 0.999]).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ucore-shard-it-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    path
}

fn synthetic_record(index: usize, fingerprint: u64, outcome: Outcome) -> JournalRecord {
    JournalRecord { sweep_seq: 0, index, fingerprint, retries: 0, outcome }
}

fn write_journal(path: &Path, records: &[JournalRecord]) {
    let mut w = JournalWriter::create(path).unwrap();
    for r in records {
        w.append(r).unwrap();
    }
}

/// A worker's lease restricts evaluation AND journaling: the shard
/// journal holds exactly the lease's indices, in-lease outcomes match
/// an unsharded run bit-for-bit, and everything else is counted as
/// skipped (not infeasible).
#[test]
fn worker_lease_sweeps_and_journals_only_the_lease() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let total = points.len();
    let spec = ShardSpec::new(1, 4).unwrap();
    let lease = spec.lease(total);
    assert!(!lease.is_empty(), "the test grid must give shard 1/4 a real lease");

    // Unsharded reference run (no durability active).
    let (reference, _) = sweep(&e, points.clone(), &SweepConfig::sequential());

    let path = temp_path("lease");
    let (guard, _) = durability::activate(DurabilityConfig {
        journal: Some(path.clone()),
        shard: Some(spec),
        ..Default::default()
    })
    .unwrap();
    let (sharded, stats) = sweep(&e, points, &SweepConfig::sequential());
    drop(guard);

    assert_eq!(stats.points, total);
    assert_eq!(stats.points_skipped, total - lease.len());
    assert_eq!(
        stats.points_ok + stats.points_infeasible + stats.points_failed,
        lease.len(),
        "only the lease is evaluated"
    );
    for (r, s) in reference.iter().zip(&sharded) {
        if lease.contains(&r.index) {
            assert_eq!(r.outcome, s.outcome, "in-lease index {}", r.index);
        }
    }

    let (records, report) = read_records(&path).unwrap();
    assert!(!report.torn_tail);
    assert_eq!(records.len(), lease.len(), "one record per leased point");
    for rec in &records {
        assert!(lease.contains(&rec.index), "index {} outside the lease", rec.index);
    }
    let _ = fs::remove_file(&path);
}

/// Four in-process "workers" (sequentially activated shard configs,
/// each with its own journal) cover the grid; merging their journals
/// yields a file byte-identical to the journal of one unsharded
/// sequential run — the merge invariant behind figure byte-identity.
#[test]
fn merged_shard_journals_equal_the_single_run_journal_bytes() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);

    let single = temp_path("single");
    let (guard, _) = durability::activate(DurabilityConfig {
        journal: Some(single.clone()),
        ..Default::default()
    })
    .unwrap();
    let _ = sweep(&e, points.clone(), &SweepConfig::sequential());
    drop(guard);
    let single_bytes = fs::read(&single).unwrap();

    let merged = temp_path("merged");
    let shard_paths: Vec<PathBuf> =
        (0..4).map(|i| shard_journal_path(&merged, i)).collect();
    for (i, path) in shard_paths.iter().enumerate() {
        let _ = fs::remove_file(path);
        let (guard, _) = durability::activate(DurabilityConfig {
            journal: Some(path.clone()),
            shard: Some(ShardSpec::new(i, 4).unwrap()),
            ..Default::default()
        })
        .unwrap();
        let _ = sweep(&e, points.clone(), &SweepConfig::sequential());
        drop(guard);
    }
    let report = merge_journals(&shard_paths, &merged).unwrap();
    assert_eq!(report.records, points.len());
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.missing, 0);
    assert_eq!(
        report.per_shard_records,
        lease_ranges(points.len(), 4)
            .iter()
            .map(|r| r.end - r.start)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        fs::read(&merged).unwrap(),
        single_bytes,
        "merged shard journals must be byte-identical to the single-run journal"
    );
    for path in &shard_paths {
        let _ = fs::remove_file(path);
    }
    let _ = fs::remove_file(&single);
    let _ = fs::remove_file(&merged);
}

/// Satellite: a reassigned lease executed by two workers produces
/// overlapping journals; the merge dedupes them deterministically
/// (same fingerprint ⇒ one slot, later record wins, repeated merges
/// byte-identical).
#[test]
fn overlapping_shard_journals_dedupe_deterministically() {
    let a_path = temp_path("overlap-a");
    let b_path = temp_path("overlap-b");
    let fp = |i: usize| 0x1000 + i as u64;
    let a: Vec<JournalRecord> =
        (0..10).map(|i| synthetic_record(i, fp(i), Outcome::Infeasible)).collect();
    // Worker B re-executed indices 5..10 (same fingerprints, same
    // deterministic outcomes) and continued through 15.
    let b: Vec<JournalRecord> =
        (5..15).map(|i| synthetic_record(i, fp(i), Outcome::Infeasible)).collect();
    write_journal(&a_path, &a);
    write_journal(&b_path, &b);

    let merged = temp_path("overlap-merged");
    let shards = vec![a_path.clone(), b_path.clone()];
    let report = merge_journals(&shards, &merged).unwrap();
    assert_eq!(report.records, 15, "each slot exactly once");
    assert_eq!(report.duplicates, 5, "the 5 re-executed slots deduped");
    assert_eq!(report.rejected, 0);
    let (records, _) = read_records(&merged).unwrap();
    let indices: Vec<usize> = records.iter().map(|r| r.index).collect();
    assert_eq!(indices, (0..15).collect::<Vec<_>>(), "index-sorted output");

    // Merging again produces the identical bytes.
    let first = fs::read(&merged).unwrap();
    merge_journals(&shards, &merged).unwrap();
    assert_eq!(fs::read(&merged).unwrap(), first, "merge is deterministic");

    for p in [a_path, b_path, merged] {
        let _ = fs::remove_file(&p);
    }
}

/// Satellite: a later write whose fingerprint disagrees with the slot's
/// first record is rejected — the first record survives and replaying
/// the merged journal returns it.
#[test]
fn mismatched_fingerprint_rejects_the_later_write() {
    let a_path = temp_path("mismatch-a");
    let b_path = temp_path("mismatch-b");
    write_journal(&a_path, &[synthetic_record(3, 0xAAAA, Outcome::Infeasible)]);
    write_journal(
        &b_path,
        &[synthetic_record(
            3,
            0xBBBB,
            Outcome::Failed { panic_msg: "suspect re-execution".into() },
        )],
    );

    let merged = temp_path("mismatch-merged");
    let report = merge_journals(&[a_path.clone(), b_path.clone()], &merged).unwrap();
    assert_eq!(report.records, 1);
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.rejected, 1, "the conflicting write is rejected");

    let (map, _) = replay(&merged).unwrap();
    let ReplayLookup::Hit(rec) = map.lookup(0, 3, 0xAAAA) else {
        panic!("the first record must hold the slot");
    };
    assert_eq!(rec.outcome, Outcome::Infeasible, "first write kept");
    assert_eq!(map.lookup(0, 3, 0xBBBB), ReplayLookup::Stale);

    for p in [a_path, b_path, merged] {
        let _ = fs::remove_file(&p);
    }
}

/// Missing shard journals (an abandoned lease that never appended) and
/// torn tails (a worker killed mid-append) are tolerated and counted.
#[test]
fn merge_tolerates_missing_journals_and_torn_tails() {
    let a_path = temp_path("tolerate-a");
    let missing = temp_path("tolerate-missing");
    let torn = temp_path("tolerate-torn");
    write_journal(&a_path, &[synthetic_record(0, 1, Outcome::Infeasible)]);
    write_journal(
        &torn,
        &[
            synthetic_record(1, 2, Outcome::Infeasible),
            synthetic_record(2, 3, Outcome::Infeasible),
        ],
    );
    // Tear the torn journal's final record mid-line.
    let bytes = fs::read(&torn).unwrap();
    fs::write(&torn, &bytes[..bytes.len() - 7]).unwrap();

    let merged = temp_path("tolerate-merged");
    let report =
        merge_journals(&[a_path.clone(), missing.clone(), torn.clone()], &merged).unwrap();
    assert_eq!(report.missing, 1);
    assert_eq!(report.torn_tails, 1);
    assert_eq!(report.records, 2, "intact records from a + torn survive");
    assert_eq!(report.per_shard_records, vec![1, 0, 1]);

    for p in [a_path, torn, merged] {
        let _ = fs::remove_file(&p);
    }
}

/// The sibling-path convention the orchestrator and workers agree on.
#[test]
fn shard_journal_paths_are_merged_journal_siblings() {
    let merged = PathBuf::from("/tmp/run.jsonl");
    assert_eq!(
        shard_journal_path(&merged, 3),
        PathBuf::from("/tmp/run.jsonl.shard3")
    );
}
