//! Property tests: the parallel, memoized sweep is *exactly* equivalent
//! to the sequential path.
//!
//! Equivalence here means bit-for-bit equality of every produced
//! `OptimalDesign` / `NodePoint` — not approximate agreement. Both
//! paths run the same pure evaluation, so any divergence (a cache key
//! missing an input, a worker racing on shared state, an ordering bug
//! in the merge) shows up as inequality on some randomized input.

use proptest::prelude::*;
use std::sync::Arc;
use ucore_calibrate::WorkloadColumn;
use ucore_core::{
    Budgets, ChipSpec, EvalCache, Optimizer, ParallelFraction, UCore,
};
use ucore_project::sweep::{figure_points, sweep, SweepConfig};
use ucore_project::{DesignId, ProjectionEngine, Scenario};

fn fraction() -> impl Strategy<Value = ParallelFraction> {
    (0.0..=0.9999f64).prop_map(|v| ParallelFraction::new(v).unwrap())
}

fn budgets() -> impl Strategy<Value = Budgets> {
    (2.0..600.0f64, 1.0..150.0f64, 2.0..2000.0f64)
        .prop_map(|(a, p, b)| Budgets::new(a, p, b).unwrap())
}

fn ucore() -> impl Strategy<Value = UCore> {
    (0.05..600.0f64, 0.05..12.0f64).prop_map(|(mu, phi)| UCore::new(mu, phi).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A memoized optimize returns exactly what a direct optimize
    /// returns, for randomized budgets, U-core (µ, φ), and f — on both
    /// the first (miss) and second (hit) lookup, errors included.
    #[test]
    fn cached_optimize_is_bit_identical(
        b in budgets(),
        u in ucore(),
        f in fraction(),
    ) {
        let optimizer = Optimizer::paper_default();
        let spec = ChipSpec::heterogeneous(u);
        let direct = optimizer.optimize(&spec, &b, f);
        let cache = EvalCache::new();
        let miss = cache.optimize(&optimizer, &spec, &b, f);
        let hit = cache.optimize(&optimizer, &spec, &b, f);
        prop_assert_eq!(&direct, &miss);
        prop_assert_eq!(&direct, &hit);
        let stats = cache.stats();
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// The same, for the non-heterogeneous organizations.
    #[test]
    fn cached_optimize_matches_for_cmp_designs(
        b in budgets(),
        f in fraction(),
        which in 0usize..4,
    ) {
        let spec = [
            ChipSpec::symmetric(),
            ChipSpec::asymmetric(),
            ChipSpec::asymmetric_offload(),
            ChipSpec::dynamic(),
        ][which];
        let optimizer = Optimizer::paper_default();
        let cache = EvalCache::new();
        prop_assert_eq!(
            optimizer.optimize(&spec, &b, f),
            cache.optimize(&optimizer, &spec, &b, f)
        );
    }
}

proptest! {
    // Full-engine sweeps are heavier; fewer cases keep the suite quick.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A parallel + cached sweep over a randomized figure grid returns
    /// exactly the same outcome per point as the sequential, uncached
    /// sweep — same indices, same `NodePoint`s, same infeasible cells.
    #[test]
    fn parallel_cached_sweep_equals_sequential(
        f1 in 0.0..=0.9999f64,
        f2 in 0.0..=0.9999f64,
        threads in 2usize..8,
        column_idx in 0usize..3,
    ) {
        let column = [
            WorkloadColumn::Fft1024,
            WorkloadColumn::Mmm,
            WorkloadColumn::Bs,
        ][column_idx];
        let engine = ProjectionEngine::with_cache(
            Scenario::baseline(),
            Arc::new(EvalCache::new()),
        )
        .unwrap();
        let designs = DesignId::for_column(engine.table5(), column);
        let points = figure_points(&engine, &designs, column, &[f1, f2]).unwrap();

        let (sequential, _) = sweep(
            &engine,
            points.clone(),
            &SweepConfig { threads: Some(1), use_cache: false },
        );
        // Run the parallel+cached sweep twice: once cold, once fully
        // memoized. Both must match the sequential result exactly.
        let config = SweepConfig { threads: Some(threads), use_cache: true };
        let (cold, _) = sweep(&engine, points.clone(), &config);
        let (warm, warm_stats) = sweep(&engine, points, &config);

        prop_assert_eq!(sequential.len(), cold.len());
        for (s, p) in sequential.iter().zip(&cold) {
            prop_assert_eq!(s.index, p.index);
            prop_assert_eq!(&s.outcome, &p.outcome);
        }
        for (s, p) in sequential.iter().zip(&warm) {
            prop_assert_eq!(&s.outcome, &p.outcome);
        }
        prop_assert_eq!(warm_stats.cache_misses, 0);
    }
}
