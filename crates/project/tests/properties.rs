//! Property-based tests over the projection engine and design-space
//! tools.

use proptest::prelude::*;
use ucore_calibrate::WorkloadColumn;
use ucore_core::{Budgets, ParallelFraction};
use ucore_devices::DeviceId;
use ucore_project::{
    bandwidth_wall_mu, required_mu, DesignId, DesignSpaceMap, ProjectionEngine,
    Scenario,
};

fn engine() -> ProjectionEngine {
    ProjectionEngine::new(Scenario::baseline()).expect("shipped data calibrates")
}

fn any_column() -> impl Strategy<Value = WorkloadColumn> {
    prop::sample::select(vec![
        WorkloadColumn::Mmm,
        WorkloadColumn::Bs,
        WorkloadColumn::Fft1024,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn projections_are_finite_feasible_and_within_budget(
        fv in 0.01f64..=0.999,
        column in any_column(),
    ) {
        let e = engine();
        let f = ParallelFraction::new(fv).unwrap();
        for design in DesignId::for_column(e.table5(), column) {
            let points = e.project(design, column, f).unwrap();
            for p in &points {
                prop_assert!(p.speedup.is_finite() && p.speedup >= 1.0 - 1e-9);
                prop_assert!(p.r >= 1.0 && p.r <= 16.0);
                prop_assert!(p.n >= p.r);
                prop_assert!(p.energy.is_finite() && p.energy > 0.0);
            }
        }
    }

    #[test]
    fn speedup_monotone_in_f_pointwise(
        lo in 0.05f64..0.5,
        column in any_column(),
    ) {
        let e = engine();
        let hi = lo + 0.45;
        for design in DesignId::for_column(e.table5(), column) {
            let s_lo = e.project(design, column, ParallelFraction::new(lo).unwrap()).unwrap();
            let s_hi = e.project(design, column, ParallelFraction::new(hi).unwrap()).unwrap();
            for (a, b) in s_lo.iter().zip(&s_hi) {
                prop_assert!(b.speedup + 1e-9 >= a.speedup,
                    "{design} {column} {:?}: f {lo}->{hi} dropped {} -> {}",
                    a.node, a.speedup, b.speedup);
            }
        }
    }

    #[test]
    fn more_generous_scenarios_never_hurt(
        fv in 0.5f64..=0.999,
    ) {
        let f = ParallelFraction::new(fv).unwrap();
        let base = engine();
        let rich = ProjectionEngine::new(Scenario::s4_high_power()).unwrap();
        for design in [DesignId::AsymCmp, DesignId::Het(DeviceId::Gtx480)] {
            let b = base.project(design, WorkloadColumn::Fft1024, f).unwrap();
            let r = rich.project(design, WorkloadColumn::Fft1024, f).unwrap();
            for (pb, pr) in b.iter().zip(&r) {
                prop_assert!(pr.speedup + 1e-9 >= pb.speedup, "{design} {:?}", pb.node);
            }
        }
    }

    #[test]
    fn required_mu_monotone_in_target(
        phi in 0.2f64..2.0,
        t1 in 2.0f64..10.0,
    ) {
        let budgets = Budgets::new(19.0, 8.7, 45.0).unwrap();
        let f = ParallelFraction::new(0.99).unwrap();
        let t2 = t1 * 1.5;
        let m1 = required_mu(&budgets, f, phi, t1);
        let m2 = required_mu(&budgets, f, phi, t2);
        if let (Some(m1), Some(m2)) = (m1, m2) {
            prop_assert!(m2 + 1e-6 >= m1, "target {t1}->{t2}: mu {m1} -> {m2}");
        }
    }

    #[test]
    fn design_space_map_cells_match_axes(
        steps in 2usize..7,
    ) {
        let budgets = Budgets::new(19.0, 8.7, 45.0).unwrap();
        let f = ParallelFraction::new(0.9).unwrap();
        let map = DesignSpaceMap::sweep(&budgets, f, (0.5, 50.0), (0.2, 5.0), steps).unwrap();
        prop_assert_eq!(map.cells().len(), steps * steps);
        for (i, cell) in map.cells().iter().enumerate() {
            let mu = map.mu_values()[i % steps];
            let phi = map.phi_values()[i / steps];
            prop_assert_eq!(cell.mu, mu);
            prop_assert_eq!(cell.phi, phi);
        }
    }

    #[test]
    fn bandwidth_wall_shrinks_with_tighter_bandwidth(
        phi in 0.3f64..1.0,
    ) {
        let f = ParallelFraction::new(0.99).unwrap();
        let tight = Budgets::new(19.0, 8.7, 20.0).unwrap();
        let loose = Budgets::new(19.0, 8.7, 200.0).unwrap();
        let wall_tight = bandwidth_wall_mu(&tight, f, phi);
        let wall_loose = bandwidth_wall_mu(&loose, f, phi);
        if let (Some(t), Some(l)) = (wall_tight, wall_loose) {
            prop_assert!(t <= l * 1.001, "tight {t} vs loose {l}");
        }
    }
}
