//! Integration tests of the fault-containment guarantees.
//!
//! The contract under test (see DESIGN.md "Failure model & fault
//! containment"): an injected fault at submission index *k* degrades
//! exactly the one outcome at *k* to `Failed`, every other outcome is
//! bit-identical to an uninjected run at any thread count, and the
//! memoized evaluation cache is never touched — let alone corrupted —
//! by a faulted point.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use ucore_calibrate::WorkloadColumn;
use ucore_core::EvalCache;
use ucore_project::faultinject::{activate, Fault, FaultPlan};
use ucore_project::sweep::{figure_points, sweep, SweepConfig, SweepPoint};
use ucore_project::{DesignId, ProjectionEngine, Scenario};

/// The active fault plan is process-global; tests that install one must
/// not overlap.
static SERIALIZE: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIALIZE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn engine() -> ProjectionEngine {
    ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
        .unwrap()
}

fn grid(engine: &ProjectionEngine) -> Vec<SweepPoint> {
    let designs = DesignId::for_column(engine.table5(), WorkloadColumn::Fft1024);
    figure_points(engine, &designs, WorkloadColumn::Fft1024, &[0.5, 0.999]).unwrap()
}

#[test]
fn injected_panic_is_contained_to_its_index_at_any_thread_count() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let k = 7;
    assert!(points.len() > k);

    let (reference, _) = sweep(
        &e,
        points.clone(),
        &SweepConfig { threads: Some(1), use_cache: false },
    );

    for threads in [1, 2, 4, 8] {
        let guard = activate(FaultPlan::new().with(k, Fault::Panic));
        let (injected, stats) = sweep(
            &e,
            points.clone(),
            &SweepConfig { threads: Some(threads), use_cache: false },
        );
        drop(guard);

        assert_eq!(injected.len(), reference.len(), "threads = {threads}");
        assert_eq!(stats.points_failed, 1, "exactly one failure, threads = {threads}");
        for (r, i) in reference.iter().zip(&injected) {
            assert_eq!(r.index, i.index);
            if i.index == k {
                assert_eq!(
                    i.outcome.failure_message(),
                    Some(format!("injected panic at point {k}").as_str()),
                    "threads = {threads}"
                );
            } else {
                // Bit-identical to the uninjected run.
                assert_eq!(r.outcome, i.outcome, "index {}, threads {threads}", r.index);
            }
        }
    }
}

#[test]
fn every_fault_kind_degrades_to_a_typed_failure() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let guard = activate(
        FaultPlan::new()
            .with(1, Fault::NanParam)
            .with(2, Fault::InfParam)
            .with(3, Fault::CacheError),
    );
    let (results, stats) =
        sweep(&e, points, &SweepConfig { threads: Some(4), use_cache: false });
    drop(guard);

    assert_eq!(stats.points_failed, 3);
    let msg = |i: usize| results[i].outcome.failure_message().unwrap().to_string();
    // The poisoned scalar is rejected by ingress validation: the typed
    // ModelError message surfaces, never a raw NaN result.
    assert!(msg(1).contains("injected NaN parameter at point 1"), "{}", msg(1));
    assert!(msg(1).contains("outside [0, 1]"), "{}", msg(1));
    assert!(msg(2).contains("injected inf parameter at point 2"), "{}", msg(2));
    assert!(msg(3).contains("cache-layer error at point 3"), "{}", msg(3));
    assert!(results[0].outcome.failure_message().is_none());
}

#[test]
fn faulted_points_never_touch_the_memoized_cache() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let n = points.len();

    // Injected run, cache enabled: the two faulted points must bypass
    // the cache entirely.
    let guard = activate(
        FaultPlan::new().with(5, Fault::Panic).with(6, Fault::CacheError),
    );
    let (_, injected_stats) =
        sweep(&e, points.clone(), &SweepConfig { threads: Some(4), use_cache: true });
    drop(guard);
    assert_eq!(injected_stats.points_failed, 2);
    assert_eq!(
        injected_stats.cache_misses as usize,
        n - 2,
        "faulted points must not be evaluated or inserted"
    );
    assert_eq!(e.cache().stats().entries, n - 2);

    // Healthy re-run on the same cache: the surviving points all hit,
    // only the two previously-faulted points miss.
    let (healthy, healthy_stats) =
        sweep(&e, points.clone(), &SweepConfig { threads: Some(4), use_cache: true });
    assert_eq!(healthy_stats.points_failed, 0);
    assert_eq!(healthy_stats.cache_hits as usize, n - 2);
    assert_eq!(healthy_stats.cache_misses as usize, 2);

    // And the memoized outcomes are bit-identical to a fresh, uncached
    // engine: nothing the faults did leaked into the cache.
    let fresh = engine();
    let (reference, _) =
        sweep(&fresh, points, &SweepConfig { threads: Some(1), use_cache: false });
    for (h, r) in healthy.iter().zip(&reference) {
        assert_eq!(h.outcome, r.outcome, "index {}", h.index);
    }
}

#[test]
fn faults_beyond_the_grid_are_inert() {
    let _lock = serialized();
    let e = engine();
    let points = grid(&e);
    let guard = activate(FaultPlan::new().with(1_000_000, Fault::Panic));
    let (results, stats) =
        sweep(&e, points, &SweepConfig { threads: Some(2), use_cache: false });
    drop(guard);
    assert_eq!(stats.points_failed, 0);
    assert!(results.iter().all(|r| r.outcome.failure_message().is_none()));
}

#[test]
fn figure_assembly_reports_failures_without_losing_the_figure() {
    let _lock = serialized();
    // Index 3 of figure 6's sweep: f = 0.5 panel, first design, node 3.
    let guard = activate(FaultPlan::new().with(3, Fault::Panic));
    let fig = ucore_project::figures::figure6().unwrap();
    drop(guard);

    assert_eq!(fig.health.points_failed, 1);
    assert_eq!(fig.failures.len(), 1);
    assert_eq!(fig.failures[0].index, 3);
    assert_eq!(fig.failures[0].f, 0.5);
    assert!(fig.failures[0].message.contains("injected panic at point 3"));
    // The figure itself still carries all four panels.
    assert_eq!(fig.panels.len(), 4);

    // An uninjected rebuild is healthy and differs only at the failed
    // node.
    let clean = ucore_project::figures::figure6().unwrap();
    assert_eq!(clean.health.points_failed, 0);
    assert!(clean.failures.is_empty());
    assert_eq!(clean.panels[1..], fig.panels[1..], "other panels untouched");
}
