//! Differential equivalence: observability must be a pure observer.
//!
//! DESIGN.md §14 promises that arming the full observability stack —
//! span tracing into the ring buffer, metrics counters, the lot — does
//! not change a single byte of serialized figure output, at any worker
//! thread count. This suite renders figures 6–11 twice per thread
//! count, once with tracing fully enabled and once fully disabled, and
//! diffs the JSON byte for byte. (Metrics counters cannot be "turned
//! off" — they are always-on atomics — so the enabled/disabled axis is
//! the trace channel, the only part with an armed/disarmed state.)
//!
//! This lives in its own integration-test binary because it owns the
//! `UCORE_SWEEP_THREADS` process environment variable for its duration.

use ucore_project::figures;
use ucore_project::results::FigureData;

/// Renders every projected figure at `threads` workers, with span
/// tracing armed when `traced`.
fn render(threads: &str, traced: bool) -> Vec<(&'static str, String)> {
    std::env::set_var("UCORE_SWEEP_THREADS", threads);
    let _guard = traced.then(|| ucore_obs::trace::start(ucore_obs::trace::DEFAULT_CAPACITY));
    let json = |fig: FigureData| serde_json::to_string(&fig).expect("figure serializes");
    let out = vec![
        ("figure6", json(figures::figure6().expect("figure 6 projects"))),
        ("figure7", json(figures::figure7().expect("figure 7 projects"))),
        ("figure8", json(figures::figure8().expect("figure 8 projects"))),
        ("figure9", json(figures::figure9().expect("figure 9 projects"))),
        ("figure10", json(figures::figure10().expect("figure 10 projects"))),
        ("figure11", json(figures::figure11().expect("figure 11 projects"))),
    ];
    std::env::remove_var("UCORE_SWEEP_THREADS");
    out
}

#[test]
fn figure_json_is_byte_identical_with_and_without_tracing() {
    for threads in ["1", "2", "4", "8"] {
        let plain = render(threads, false);
        let traced = render(threads, true);
        for ((name, expected), (_, got)) in plain.iter().zip(traced.iter()) {
            assert_eq!(got, expected, "{name} at {threads} threads (traced vs not)");
        }
    }
}

#[test]
fn traced_run_yields_a_decodable_trace_with_balanced_spans() {
    std::env::set_var("UCORE_SWEEP_THREADS", "4");
    let guard = ucore_obs::trace::start(ucore_obs::trace::DEFAULT_CAPACITY);
    figures::figure6().expect("figure 6 projects");
    let encoded = ucore_obs::trace::encode().expect("tracing is armed");
    drop(guard);
    std::env::remove_var("UCORE_SWEEP_THREADS");

    let trace = ucore_obs::Trace::decode(&encoded).expect("trace round-trips");
    assert_eq!(trace.dropped, 0, "figure 6 fits the default ring");
    // Figure 6 sweeps one batch of 120 points; every point opens an
    // `engine.node_point` span and (one optimizer call per point) an
    // `engine.optimize` span, plus the one `project.sweep` span.
    let mut enters = std::collections::BTreeMap::new();
    let mut exits = std::collections::BTreeMap::new();
    for event in &trace.events {
        let name = trace.name(event.name);
        match event.kind {
            ucore_obs::SpanKind::Enter => *enters.entry(name).or_insert(0u64) += 1,
            ucore_obs::SpanKind::Exit => *exits.entry(name).or_insert(0u64) += 1,
        }
    }
    assert_eq!(enters, exits, "every span enter has a matching exit");
    assert_eq!(enters.get("project.sweep"), Some(&1));
    assert_eq!(enters.get("engine.node_point"), Some(&120));
    assert_eq!(enters.get("engine.optimize"), Some(&120));
}
