//! Byte-identity of serialized figure output across worker thread
//! counts.
//!
//! DESIGN.md §10 promises that a sweep's output bytes do not depend on
//! how many workers produced them. The sweep-equivalence property tests
//! check the in-memory results; this test closes the loop on the actual
//! serialized artifact: the JSON a figure ships is compared byte for
//! byte at 1, 2, 4 and 8 threads. Ordered (`BTreeMap`-backed) state on
//! the output path is what makes this hold by construction.
//!
//! This lives in its own integration-test binary because it owns the
//! `UCORE_SWEEP_THREADS` process environment variable for its duration.

use ucore_project::figures;
use ucore_project::results::FigureData;

fn render(threads: &str) -> Vec<(&'static str, String)> {
    std::env::set_var("UCORE_SWEEP_THREADS", threads);
    let json = |fig: FigureData| serde_json::to_string(&fig).expect("figure serializes");
    let out = vec![
        ("figure6", json(figures::figure6().expect("figure 6 projects"))),
        ("figure7", json(figures::figure7().expect("figure 7 projects"))),
        ("figure8", json(figures::figure8().expect("figure 8 projects"))),
        ("figure9", json(figures::figure9().expect("figure 9 projects"))),
        ("figure10", json(figures::figure10().expect("figure 10 projects"))),
        ("figure11", json(figures::figure11().expect("figure 11 projects"))),
    ];
    std::env::remove_var("UCORE_SWEEP_THREADS");
    out
}

#[test]
fn figure_json_is_byte_identical_across_thread_counts() {
    let reference = render("1");
    for threads in ["2", "4", "8"] {
        let rendered = render(threads);
        for ((name, json), (_, expected)) in rendered.iter().zip(reference.iter()) {
            assert_eq!(json, expected, "{name} at {threads} threads");
        }
    }
}
