//! # ucore-report — presentation helpers for the reproduction harness
//!
//! Small, dependency-light rendering utilities used by the `repro`
//! binary and the examples:
//!
//! * [`table`] — monospaced ASCII tables with per-column alignment;
//! * [`chart`] — ASCII line charts (one glyph per series) for the
//!   figure reproductions;
//! * [`csv`] — minimal CSV writing with correct quoting;
//! * [`markdown`] — GitHub-flavored markdown tables for documentation
//!   exports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom: model code returns typed errors; `unwrap`/`expect`
// stay legal in `#[cfg(test)]` code only (ucore-lint enforces the same
// contract at the token level).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chart;
pub mod csv;
pub mod heatmap;
pub mod markdown;
pub mod table;

pub use chart::Chart;
pub use csv::CsvWriter;
pub use heatmap::Heatmap;
pub use markdown::MarkdownTable;
pub use table::{Align, Table};
