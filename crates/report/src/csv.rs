//! Minimal CSV writing with RFC-4180 quoting.

use std::fmt::Write as _;

/// An in-memory CSV builder.
///
/// ```
/// use ucore_report::CsvWriter;
/// let mut w = CsvWriter::new(vec!["node".into(), "speedup".into()]);
/// w.row(vec!["40nm".into(), "12.5".into()]);
/// assert_eq!(w.finish(), "node,speedup\n40nm,12.5\n");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsvWriter {
    out: String,
    columns: usize,
}

fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CsvWriter {
    /// Starts a CSV document with a header row.
    pub fn new(headers: Vec<String>) -> Self {
        let columns = headers.len();
        let mut w = CsvWriter { out: String::new(), columns };
        w.write_row(&headers);
        w
    }

    /// Appends a data row; rows are padded or truncated to the header
    /// width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.columns, String::new());
        self.write_row(&cells);
        self
    }

    fn write_row(&mut self, cells: &[String]) {
        let line = cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",");
        let _ = writeln!(self.out, "{line}");
    }

    /// The completed CSV text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        let mut w = CsvWriter::new(vec!["a".into(), "b".into()]);
        w.row(vec!["1".into(), "2".into()]);
        assert_eq!(w.finish(), "a,b\n1,2\n");
    }

    #[test]
    fn commas_and_quotes_are_escaped() {
        let mut w = CsvWriter::new(vec!["text".into()]);
        w.row(vec!["hello, \"world\"".into()]);
        assert_eq!(w.finish(), "text\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    fn newlines_are_quoted() {
        let mut w = CsvWriter::new(vec!["text".into()]);
        w.row(vec!["two\nlines".into()]);
        assert!(w.finish().contains("\"two\nlines\""));
    }

    #[test]
    fn rows_normalized_to_header_width() {
        let mut w = CsvWriter::new(vec!["a".into(), "b".into()]);
        w.row(vec!["only".into()]);
        w.row(vec!["x".into(), "y".into(), "dropped".into()]);
        let text = w.finish();
        assert_eq!(text, "a,b\nonly,\nx,y\n");
    }
}
