//! ASCII heatmaps: intensity-coded grids for design-space maps.

use std::fmt;

/// The glyph ramp, light to dark.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// A heatmap builder over a dense row-major grid.
///
/// ```
/// use ucore_report::Heatmap;
/// let h = Heatmap::new(
///     "speedup",
///     vec!["1".into(), "10".into()],
///     vec!["0.5".into(), "2.0".into()],
///     vec![1.0, 10.0, 0.5, 5.0],
/// );
/// let s = h.to_string();
/// assert!(s.contains("speedup"));
/// assert!(s.contains('@')); // the maximum cell gets the darkest glyph
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    title: String,
    col_labels: Vec<String>,
    row_labels: Vec<String>,
    values: Vec<f64>,
    log_scale: bool,
}

impl Heatmap {
    /// Creates a heatmap; `values` is row-major with
    /// `rows × cols = row_labels.len() × col_labels.len()` entries
    /// (truncated or NaN-padded otherwise).
    pub fn new(
        title: &str,
        col_labels: Vec<String>,
        row_labels: Vec<String>,
        mut values: Vec<f64>,
    ) -> Self {
        values.resize(col_labels.len() * row_labels.len(), f64::NAN);
        Heatmap {
            title: title.to_string(),
            col_labels,
            row_labels,
            values,
            log_scale: false,
        }
    }

    /// Switches intensity mapping to log scale.
    pub fn log_scale(mut self) -> Self {
        self.log_scale = true;
        self
    }

    fn glyph(&self, v: f64, lo: f64, hi: f64) -> char {
        if !v.is_finite() {
            return '?';
        }
        let (v, lo, hi) = if self.log_scale {
            (v.max(1e-300).ln(), lo.max(1e-300).ln(), hi.max(1e-300).ln())
        } else {
            (v, lo, hi)
        };
        if hi - lo < 1e-300 {
            return RAMP[RAMP.len() / 2];
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        RAMP[((t * (RAMP.len() - 1) as f64).round()) as usize]
    }
}

impl fmt::Display for Heatmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let finite: Vec<f64> = self.values.iter().copied().filter(|v| v.is_finite()).collect();
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let label_w = self
            .row_labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(0)
            .max(4);
        // Header: one character per column (compact), legend below.
        write!(f, "{:>label_w$} ", "")?;
        for (i, _) in self.col_labels.iter().enumerate() {
            write!(f, "{}", (b'a' + (i % 26) as u8) as char)?;
        }
        writeln!(f)?;
        let cols = self.col_labels.len();
        for (r, row_label) in self.row_labels.iter().enumerate() {
            write!(f, "{row_label:>label_w$} ")?;
            for c in 0..cols {
                let v = self.values[r * cols + c];
                write!(f, "{}", self.glyph(v, lo, hi))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "scale: '{}' = {lo:.2} ... '{}' = {hi:.2}", RAMP[0], RAMP[9])?;
        for (i, label) in self.col_labels.iter().enumerate() {
            writeln!(f, "  {} = {label}", (b'a' + (i % 26) as u8) as char)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Heatmap {
        Heatmap::new(
            "test map",
            vec!["c0".into(), "c1".into(), "c2".into()],
            vec!["r0".into(), "r1".into()],
            vec![0.0, 5.0, 10.0, 10.0, 5.0, 0.0],
        )
    }

    #[test]
    fn extremes_get_extreme_glyphs() {
        let s = sample().to_string();
        let grid: Vec<&str> = s.lines().skip(2).take(2).collect();
        assert!(grid[0].contains(' ') || grid[0].contains('@'));
        assert!(s.contains('@'));
        assert!(s.contains("scale:"));
    }

    #[test]
    fn nan_cells_render_as_question_marks() {
        let h = Heatmap::new(
            "t",
            vec!["a".into()],
            vec!["r".into()],
            vec![f64::NAN],
        );
        assert!(h.to_string().contains('?'));
    }

    #[test]
    fn constant_grid_does_not_panic() {
        let h = Heatmap::new(
            "t",
            vec!["a".into(), "b".into()],
            vec!["r".into()],
            vec![3.0, 3.0],
        );
        let s = h.to_string();
        assert!(s.contains(RAMP[RAMP.len() / 2]));
    }

    #[test]
    fn log_scale_spreads_wide_ranges() {
        let lin = Heatmap::new(
            "t",
            vec!["a".into(), "b".into(), "c".into()],
            vec!["r".into()],
            vec![1.0, 10.0, 10000.0],
        );
        let log = lin.clone().log_scale();
        // On a linear scale 1 and 10 are both "lowest"; on log they
        // differ.
        let glyph_at = |h: &Heatmap, idx: usize| {
            let s = h.to_string();
            s.lines().nth(2).unwrap().chars().nth(5 + idx).unwrap()
        };
        assert_eq!(glyph_at(&lin, 0), glyph_at(&lin, 1));
        assert_ne!(glyph_at(&log, 0), glyph_at(&log, 1));
    }

    #[test]
    fn values_padded_to_grid() {
        let h = Heatmap::new(
            "t",
            vec!["a".into(), "b".into()],
            vec!["r".into(), "s".into()],
            vec![1.0], // 3 short
        );
        assert!(h.to_string().contains('?'));
    }

    #[test]
    fn legend_lists_columns() {
        let s = sample().to_string();
        assert!(s.contains("a = c0"));
        assert!(s.contains("c = c2"));
    }
}
