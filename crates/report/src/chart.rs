//! ASCII line charts for the figure reproductions.
//!
//! Each series is drawn with its own glyph over a fixed-size character
//! grid; the x-axis carries categorical labels (technology nodes), the
//! y-axis a linear or logarithmic value scale.

use std::fmt;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
struct ChartSeries {
    name: String,
    glyph: char,
    values: Vec<Option<f64>>,
}

/// An ASCII chart builder.
///
/// ```
/// use ucore_report::Chart;
/// let mut c = Chart::new("speedup", vec!["40nm".into(), "32nm".into()], 20, 8);
/// c.series("ASIC", '6', vec![Some(10.0), Some(14.0)]);
/// let drawn = c.to_string();
/// assert!(drawn.contains('6'));
/// assert!(drawn.contains("40nm"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Chart {
    title: String,
    x_labels: Vec<String>,
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<ChartSeries>,
}

impl Chart {
    /// Creates a chart with a title, categorical x labels and a plot
    /// area of `width x height` characters (minimums of 8 x 3 are
    /// enforced).
    pub fn new(title: &str, x_labels: Vec<String>, width: usize, height: usize) -> Self {
        Chart {
            title: title.to_string(),
            x_labels,
            width: width.max(8),
            height: height.max(3),
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Switches the y-axis to log scale (used for the wide-range FFT
    /// performance plots).
    pub fn log_y(&mut self) -> &mut Self {
        self.log_y = true;
        self
    }

    /// Adds a series; `values` align with the x labels, `None` for
    /// missing points.
    pub fn series(&mut self, name: &str, glyph: char, values: Vec<Option<f64>>) -> &mut Self {
        let mut values = values;
        values.resize(self.x_labels.len(), None);
        self.series.push(ChartSeries { name: name.to_string(), glyph, values });
        self
    }

    fn transform(&self, v: f64) -> Option<f64> {
        if self.log_y {
            (v > 0.0).then(|| v.log10())
        } else {
            Some(v)
        }
    }

    fn bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.series {
            for v in s.values.iter().flatten() {
                if let Some(t) = self.transform(*v) {
                    lo = lo.min(t);
                    hi = hi.max(t);
                }
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            (0.0, 1.0)
        } else if (hi - lo).abs() < 1e-12 {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo.min(if self.log_y { lo } else { 0.0 }), hi)
        }
    }
}

impl fmt::Display for Chart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let (lo, hi) = self.bounds();
        let mut grid = vec![vec![' '; self.width]; self.height];

        let n = self.x_labels.len().max(1);
        let col_of = |i: usize| {
            if n == 1 {
                self.width / 2
            } else {
                i * (self.width - 1) / (n - 1)
            }
        };
        for s in &self.series {
            for (i, v) in s.values.iter().enumerate() {
                let Some(v) = v else { continue };
                let Some(t) = self.transform(*v) else { continue };
                let frac = (t - lo) / (hi - lo);
                let row = ((1.0 - frac) * (self.height - 1) as f64).round() as usize;
                let col = col_of(i);
                grid[row.min(self.height - 1)][col] = s.glyph;
            }
        }

        // y-axis labels at top and bottom.
        let show = |t: f64| {
            if self.log_y {
                10f64.powf(t)
            } else {
                t
            }
        };
        for (ri, row) in grid.iter().enumerate() {
            let label = if ri == 0 {
                format!("{:>9.2} |", show(hi))
            } else if ri == self.height - 1 {
                format!("{:>9.2} |", show(lo))
            } else {
                format!("{:>9} |", "")
            };
            let line: String = row.iter().collect();
            writeln!(f, "{label}{line}")?;
        }
        // x labels.
        let mut axis = vec![' '; self.width];
        for (i, _) in self.x_labels.iter().enumerate() {
            axis[col_of(i)] = '+';
        }
        writeln!(f, "{:>9} +{}", "", axis.iter().collect::<String>())?;
        // Extra room so a label anchored at the last column still fits.
        let mut label_line = vec![' '; self.width + 12];
        for (i, lab) in self.x_labels.iter().enumerate() {
            let col = col_of(i);
            for (j, ch) in lab.chars().enumerate() {
                if col + j < label_line.len() {
                    label_line[col + j] = ch;
                }
            }
        }
        writeln!(f, "{:>9} {}", "", label_line.iter().collect::<String>())?;
        // legend.
        for s in &self.series {
            writeln!(f, "{:>9}   {} = {}", "", s.glyph, s.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axis_legend() {
        let mut c = Chart::new(
            "FFT-1024 f=0.999",
            vec!["40nm".into(), "11nm".into()],
            30,
            10,
        );
        c.series("ASIC", '6', vec![Some(45.0), Some(65.0)]);
        c.series("SymCMP", '0', vec![Some(3.0), Some(9.0)]);
        let s = c.to_string();
        assert!(s.contains("FFT-1024"));
        assert!(s.contains("6 = ASIC"));
        assert!(s.contains("0 = SymCMP"));
        assert!(s.contains("40nm"));
        assert!(s.contains("11nm"));
    }

    #[test]
    fn higher_values_plot_higher() {
        let mut c = Chart::new("t", vec!["a".into(), "b".into()], 20, 10);
        c.series("s", '*', vec![Some(1.0), Some(100.0)]);
        let s = c.to_string();
        let rows: Vec<&str> = s.lines().collect();
        let row_of = |col_low: bool| {
            rows.iter()
                .position(|r| {
                    let stars: Vec<usize> =
                        r.char_indices().filter(|(_, ch)| *ch == '*').map(|(i, _)| i).collect();
                    if col_low {
                        stars.iter().any(|&i| i < r.len() / 2)
                    } else {
                        stars.iter().any(|&i| i >= r.len() / 2)
                    }
                })
                .unwrap()
        };
        assert!(row_of(false) < row_of(true), "100 should be above 1");
    }

    #[test]
    fn log_scale_compresses_range() {
        let mut c = Chart::new("t", vec!["a".into(), "b".into(), "c".into()], 20, 10);
        c.log_y();
        c.series("s", '*', vec![Some(1.0), Some(100.0), Some(10000.0)]);
        let s = c.to_string();
        assert_eq!(s.matches('*').count(), 4); // 3 points + the legend glyph
        // Top label reflects the untransformed maximum.
        assert!(s.contains("10000"));
    }

    #[test]
    fn missing_points_are_skipped() {
        let mut c = Chart::new("t", vec!["a".into(), "b".into()], 20, 5);
        c.series("s", '*', vec![Some(1.0), None]);
        assert_eq!(c.to_string().matches('*').count(), 2); // 1 point + legend
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut c = Chart::new("t", vec!["a".into(), "b".into()], 20, 5);
        c.series("s", '*', vec![Some(5.0), Some(5.0)]);
        let s = c.to_string();
        assert!(s.matches('*').count() >= 2);
    }
}
