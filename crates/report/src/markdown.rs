//! GitHub-flavored markdown tables, for exporting results into
//! documentation (EXPERIMENTS.md-style records).

use std::fmt;

/// A markdown table builder.
///
/// ```
/// use ucore_report::MarkdownTable;
/// let mut t = MarkdownTable::new(vec!["device".into(), "mu".into()]);
/// t.row(vec!["ASIC".into(), "27.4".into()]);
/// let md = t.to_string();
/// assert!(md.starts_with("| device | mu |"));
/// assert!(md.contains("| ASIC | 27.4 |"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Escapes a cell: pipes and newlines would break the table grammar.
fn escape(cell: &str) -> String {
    cell.replace('|', "\\|").replace('\n', " ")
}

impl MarkdownTable {
    /// Creates a table with the given headers.
    pub fn new(headers: Vec<String>) -> Self {
        MarkdownTable { headers, rows: Vec::new() }
    }

    /// Appends a row, padded or truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for MarkdownTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for cell in cells {
                write!(f, " {} |", escape(cell))?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for _ in &self.headers {
            write!(f, "---|")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_rows() {
        let mut t = MarkdownTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_string();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    fn escapes_pipes_and_newlines() {
        let mut t = MarkdownTable::new(vec!["x".into()]);
        t.row(vec!["a|b\nc".into()]);
        let md = t.to_string();
        assert!(md.contains("a\\|b c"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = MarkdownTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only".into()]);
        t.row(vec!["1".into(), "2".into(), "gone".into()]);
        let md = t.to_string();
        assert!(md.contains("| only |  |"));
        assert!(!md.contains("gone"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
