//! Monospaced ASCII tables.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder.
///
/// ```
/// use ucore_report::{Align, Table};
/// let mut t = Table::new(vec!["device".into(), "GFLOP/s".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["ASIC".into(), "694".into()]);
/// let s = t.to_string();
/// assert!(s.contains("ASIC"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers (all left-aligned
    /// by default).
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Table { headers, aligns, rows: Vec::new() }
    }

    /// Sets the alignment of one column; out-of-range indices are
    /// ignored.
    pub fn align(&mut self, column: usize, align: Align) -> &mut Self {
        if let Some(a) = self.aligns.get_mut(column) {
            *a = align;
        }
        self
    }

    /// Appends a row; short rows are padded with empty cells and long
    /// rows truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> =
            self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                let pad = width.saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => write!(f, "{cell}{}", " ".repeat(pad))?,
                    Align::Right => write!(f, "{}{cell}", " ".repeat(pad))?,
                }
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.align(1, Align::Right);
        t.row(vec!["alpha".into(), "1.75".into()]);
        t.row(vec!["long-name-here".into(), "2".into()]);
        t
    }

    #[test]
    fn renders_header_rule_rows() {
        let s = sample().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn right_alignment_pads_left() {
        let s = sample().to_string();
        let row = s.lines().nth(2).unwrap();
        // "value" column is right-aligned: 1.75 ends at the column edge.
        assert!(row.ends_with("1.75"));
    }

    #[test]
    fn columns_align_across_rows() {
        let s = sample().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_and_long_rows_are_normalized() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only".into()]);
        t.row(vec!["x".into(), "y".into(), "z-dropped".into()]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(!s.contains("z-dropped"));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        assert!(t.to_string().contains('h'));
    }
}
