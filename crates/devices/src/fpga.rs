//! FPGA area accounting.
//!
//! The paper charges an FPGA design for the LUTs it occupies at
//! 0.00191 mm² per LUT — a figure that amortizes the flip-flops, block
//! RAMs, DSP multipliers, and programmable interconnect surrounding each
//! lookup table in the Virtex-6 fabric.

use crate::device::DeviceError;
use serde::{Deserialize, Serialize};

/// Per-LUT area model for FPGA designs.
///
/// ```
/// use ucore_devices::FpgaAreaModel;
/// let model = FpgaAreaModel::paper();
/// // A design using 200,000 LUTs occupies ~382 mm² of fabric.
/// let area = model.area_mm2(200_000)?;
/// assert!((area - 382.0).abs() < 1.0);
/// # Ok::<(), ucore_devices::DeviceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaAreaModel {
    mm2_per_lut: f64,
}

/// The paper's estimate of silicon area per Virtex-6 LUT, overheads
/// amortized in.
pub const PAPER_MM2_PER_LUT: f64 = 0.00191;

impl FpgaAreaModel {
    /// The paper's model: 0.00191 mm² per LUT.
    pub fn paper() -> Self {
        FpgaAreaModel { mm2_per_lut: PAPER_MM2_PER_LUT }
    }

    /// A model with a custom per-LUT area.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NonPositive`] if `mm2_per_lut` is not
    /// positive and finite.
    pub fn new(mm2_per_lut: f64) -> Result<Self, DeviceError> {
        if !(mm2_per_lut.is_finite() && mm2_per_lut > 0.0) {
            return Err(DeviceError::NonPositive {
                what: "mm2 per LUT",
                value: mm2_per_lut,
            });
        }
        Ok(FpgaAreaModel { mm2_per_lut })
    }

    /// Area per LUT in mm².
    pub fn mm2_per_lut(&self) -> f64 {
        self.mm2_per_lut
    }

    /// Area occupied by a design using `luts` lookup tables.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NonPositive`] if `luts` is zero.
    pub fn area_mm2(&self, luts: u64) -> Result<f64, DeviceError> {
        if luts == 0 {
            return Err(DeviceError::NonPositive { what: "LUT count", value: 0.0 });
        }
        Ok(luts as f64 * self.mm2_per_lut)
    }

    /// The number of LUTs that fit in the given fabric area (rounded
    /// down) — the inverse of [`area_mm2`](Self::area_mm2).
    pub fn luts_in_area(&self, area_mm2: f64) -> u64 {
        if !(area_mm2.is_finite() && area_mm2 > 0.0) {
            return 0;
        }
        (area_mm2 / self.mm2_per_lut).floor() as u64
    }
}

impl Default for FpgaAreaModel {
    fn default() -> Self {
        FpgaAreaModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant() {
        assert_eq!(FpgaAreaModel::paper().mm2_per_lut(), 0.00191);
    }

    #[test]
    fn area_is_linear_in_luts() {
        let m = FpgaAreaModel::paper();
        let a1 = m.area_mm2(1_000).unwrap();
        let a2 = m.area_mm2(2_000).unwrap();
        assert!((a2 - 2.0 * a1).abs() < 1e-12);
    }

    #[test]
    fn zero_luts_rejected() {
        assert!(FpgaAreaModel::paper().area_mm2(0).is_err());
    }

    #[test]
    fn invalid_per_lut_area_rejected() {
        assert!(FpgaAreaModel::new(0.0).is_err());
        assert!(FpgaAreaModel::new(-1.0).is_err());
        assert!(FpgaAreaModel::new(f64::NAN).is_err());
    }

    #[test]
    fn luts_in_area_inverts() {
        let m = FpgaAreaModel::paper();
        let luts = 123_456;
        let area = m.area_mm2(luts).unwrap();
        assert_eq!(m.luts_in_area(area), luts);
        assert_eq!(m.luts_in_area(-5.0), 0);
    }

    #[test]
    fn table4_mmm_fpga_area_consistent() {
        // Table 4: LX760 MMM at 204 GFLOP/s and 0.53 (GFLOP/s)/mm²
        // implies ~385 mm² of fabric, i.e. ~201k LUTs.
        let m = FpgaAreaModel::paper();
        let implied_area = 204.0 / 0.53;
        let luts = m.luts_in_area(implied_area);
        assert!((190_000..220_000).contains(&luts), "got {luts}");
    }
}
