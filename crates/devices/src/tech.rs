//! Process technology nodes and scaling arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A CMOS process node, identified by its nominal feature size.
///
/// The catalog spans the measured devices (65 nm ASIC flow through 40 nm
/// GPUs) and the ITRS projection horizon (down to 11 nm).
///
/// ```
/// use ucore_devices::TechNode;
/// assert_eq!(TechNode::N40.feature_nm(), 40.0);
/// assert!(TechNode::N22 < TechNode::N40); // smaller feature = "less than"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// 65 nm (the ASIC synthesis flow).
    N65,
    /// 55 nm (GTX285).
    N55,
    /// 45 nm (Core i7-960, Atom; treated as the 40 nm generation when
    /// normalizing areas).
    N45,
    /// 40 nm (GTX480, R5870, LX760; the projection reference node, 2011).
    N40,
    /// 32 nm (2013).
    N32,
    /// 22 nm (2016).
    N22,
    /// 16 nm (2019).
    N16,
    /// 11 nm (2022).
    N11,
}

impl TechNode {
    /// All nodes, largest feature first.
    pub const ALL: [TechNode; 8] = [
        TechNode::N65,
        TechNode::N55,
        TechNode::N45,
        TechNode::N40,
        TechNode::N32,
        TechNode::N22,
        TechNode::N16,
        TechNode::N11,
    ];

    /// The five nodes of the paper's projection study (Table 6).
    pub const PROJECTION: [TechNode; 5] = [
        TechNode::N40,
        TechNode::N32,
        TechNode::N22,
        TechNode::N16,
        TechNode::N11,
    ];

    /// Nominal feature size in nanometers.
    pub fn feature_nm(self) -> f64 {
        match self {
            TechNode::N65 => 65.0,
            TechNode::N55 => 55.0,
            TechNode::N45 => 45.0,
            TechNode::N40 => 40.0,
            TechNode::N32 => 32.0,
            TechNode::N22 => 22.0,
            TechNode::N16 => 16.0,
            TechNode::N11 => 11.0,
        }
    }

    /// The year the paper's projection (Table 6) associates with this
    /// node, where applicable.
    pub fn projection_year(self) -> Option<u32> {
        match self {
            TechNode::N40 => Some(2011),
            TechNode::N32 => Some(2013),
            TechNode::N22 => Some(2016),
            TechNode::N16 => Some(2019),
            TechNode::N11 => Some(2022),
            _ => None,
        }
    }

    /// The factor by which an area shrinks when a design moves from this
    /// node to `target`: `(target/self)²`.
    ///
    /// ```
    /// use ucore_devices::TechNode;
    /// let s = TechNode::N55.area_scale_to(TechNode::N40);
    /// assert!((s - (40.0f64 / 55.0).powi(2)).abs() < 1e-12);
    /// ```
    pub fn area_scale_to(self, target: TechNode) -> f64 {
        (target.feature_nm() / self.feature_nm()).powi(2)
    }

    /// The paper's area-normalization convention for "perf/mm² in
    /// 40nm/45nm": 45 nm and 40 nm count as the same generation (factor
    /// 1.0); all other nodes scale by the square of the feature ratio
    /// to 40 nm.
    pub fn paper_normalization_to_40nm(self) -> f64 {
        match self {
            TechNode::N45 | TechNode::N40 => 1.0,
            other => other.area_scale_to(TechNode::N40),
        }
    }

    /// Generations between two nodes in the projection sequence, if both
    /// belong to it (`N40 → N22` is 2).
    pub fn generations_to(self, target: TechNode) -> Option<i32> {
        let idx = |n: TechNode| Self::PROJECTION.iter().position(|&p| p == n);
        Some(idx(target)? as i32 - idx(self)? as i32)
    }
}

impl PartialOrd for TechNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TechNode {
    /// Orders by feature size: a *smaller* (newer) node compares as less.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.feature_nm().total_cmp(&other.feature_nm())
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_sizes_are_descending_in_all() {
        for pair in TechNode::ALL.windows(2) {
            assert!(pair[0].feature_nm() > pair[1].feature_nm());
        }
    }

    #[test]
    fn projection_nodes_have_years() {
        let years: Vec<u32> = TechNode::PROJECTION
            .iter()
            .map(|n| n.projection_year().unwrap())
            .collect();
        assert_eq!(years, vec![2011, 2013, 2016, 2019, 2022]);
        assert_eq!(TechNode::N65.projection_year(), None);
    }

    #[test]
    fn area_scale_round_trips() {
        let down = TechNode::N40.area_scale_to(TechNode::N11);
        let up = TechNode::N11.area_scale_to(TechNode::N40);
        assert!((down * up - 1.0).abs() < 1e-12);
        assert!(down < 1.0, "moving to a smaller node shrinks area");
    }

    #[test]
    fn paper_normalization_treats_45_as_40() {
        assert_eq!(TechNode::N45.paper_normalization_to_40nm(), 1.0);
        assert_eq!(TechNode::N40.paper_normalization_to_40nm(), 1.0);
        let n55 = TechNode::N55.paper_normalization_to_40nm();
        assert!((n55 - (40.0f64 / 55.0).powi(2)).abs() < 1e-12);
        let n65 = TechNode::N65.paper_normalization_to_40nm();
        assert!((n65 - (40.0f64 / 65.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn gtx285_area_normalization_reproduces_table4() {
        // GTX285 core area 338 mm² at 55 nm, MMM at 425 GFLOP/s.
        // Table 4 reports 2.40 (GFLOP/s)/mm² after normalizing to 40 nm.
        let area_40 = 338.0 * TechNode::N55.paper_normalization_to_40nm();
        let per_mm2 = 425.0 / area_40;
        assert!((per_mm2 - 2.40).abs() < 0.05, "got {per_mm2}");
    }

    #[test]
    fn generations_counts_projection_steps() {
        assert_eq!(TechNode::N40.generations_to(TechNode::N22), Some(2));
        assert_eq!(TechNode::N22.generations_to(TechNode::N40), Some(-2));
        assert_eq!(TechNode::N40.generations_to(TechNode::N40), Some(0));
        assert_eq!(TechNode::N65.generations_to(TechNode::N40), None);
    }

    #[test]
    fn ordering_is_by_feature_size() {
        assert!(TechNode::N11 < TechNode::N16);
        assert!(TechNode::N65 > TechNode::N40);
        let mut v = vec![TechNode::N40, TechNode::N11, TechNode::N65];
        v.sort();
        assert_eq!(v, vec![TechNode::N11, TechNode::N40, TechNode::N65]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TechNode::N40.to_string(), "40nm");
        assert_eq!(TechNode::N11.to_string(), "11nm");
    }
}
