//! The Base Core Equivalent (BCE) reference.
//!
//! Hill and Marty's model counts resources in units of a *baseline* core.
//! The paper anchors this unit in a real design: an Intel-Atom-like
//! in-order processor — 26 mm² in 45 nm, less 10% non-compute area — so
//! that one Core i7 core (≈ 193 mm² / 4 cores) is worth `r = 2` BCE.
//! Through Pollack's Law and the serial power law this pins the BCE's
//! performance and power relative to the measured i7.

use crate::catalog::Catalog;
use crate::device::{DeviceError, DeviceId};
use serde::{Deserialize, Serialize};

/// The Atom die area the paper starts from, in mm² (45 nm).
pub const ATOM_AREA_MM2: f64 = 26.0;

/// The fraction of the Atom die assumed to be non-compute.
pub const ATOM_NON_COMPUTE_FRACTION: f64 = 0.10;

/// The number of cores on the Core i7-960.
pub const I7_CORES: f64 = 4.0;

/// The BCE definition: the area of the unit core and the sequential-core
/// size `r` it implies for the measured Core i7.
///
/// ```
/// use ucore_devices::BceReference;
/// let bce = BceReference::paper();
/// assert_eq!(bce.r_i7(), 2.0);
/// assert!((bce.area_mm2() - 23.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BceReference {
    area_mm2: f64,
    r_i7: f64,
}

impl BceReference {
    /// The paper's reference: a 23.4 mm² BCE and `r = 2` for the i7.
    pub fn paper() -> Self {
        BceReference {
            area_mm2: ATOM_AREA_MM2 * (1.0 - ATOM_NON_COMPUTE_FRACTION),
            r_i7: 2.0,
        }
    }

    /// Derives the reference from a catalog instead of using the paper's
    /// rounded `r = 2`: `r = (i7 core area / 4 cores) / BCE area`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Unavailable`] if the catalog has no core
    /// area for the i7 (never the case for [`Catalog::paper`]).
    pub fn derived(catalog: &Catalog) -> Result<Self, DeviceError> {
        let bce_area = ATOM_AREA_MM2 * (1.0 - ATOM_NON_COMPUTE_FRACTION);
        let i7_core = catalog
            .device(DeviceId::CoreI7_960)
            .require_core_area_mm2()?
            / I7_CORES;
        Ok(BceReference {
            area_mm2: bce_area,
            r_i7: i7_core / bce_area,
        })
    }

    /// Area of one BCE in mm² (45 nm ≡ 40 nm generation).
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// The sequential-core size of one Core i7 core, in BCE.
    pub fn r_i7(&self) -> f64 {
        self.r_i7
    }

    /// Performance of one i7 core relative to a BCE under Pollack's Law,
    /// `√r`.
    pub fn i7_core_perf(&self) -> f64 {
        self.r_i7.sqrt()
    }

    /// Power of one i7 core relative to a BCE under the serial power law,
    /// `r^(α/2)`.
    pub fn i7_core_power(&self, alpha: f64) -> f64 {
        self.r_i7.powf(alpha / 2.0)
    }

    /// How many BCE fit in a silicon budget of `area_mm2` at the
    /// reference generation.
    pub fn bce_in_area(&self, area_mm2: f64) -> f64 {
        area_mm2 / self.area_mm2
    }
}

impl Default for BceReference {
    fn default() -> Self {
        BceReference::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_values() {
        let bce = BceReference::paper();
        assert!((bce.area_mm2() - 23.4).abs() < 1e-12);
        assert_eq!(bce.r_i7(), 2.0);
    }

    #[test]
    fn derived_r_is_close_to_two() {
        let bce = BceReference::derived(&Catalog::paper()).unwrap();
        // 193/4 / 23.4 = 2.0619...: the paper rounds to 2.
        assert!((bce.r_i7() - 2.06).abs() < 0.01, "got {}", bce.r_i7());
    }

    #[test]
    fn i7_core_perf_and_power() {
        let bce = BceReference::paper();
        assert!((bce.i7_core_perf() - 2f64.sqrt()).abs() < 1e-12);
        assert!((bce.i7_core_power(1.75) - 2f64.powf(0.875)).abs() < 1e-12);
    }

    #[test]
    fn table6_area_budget_in_bce() {
        // Table 6: a 432 mm² core budget is 19 BCE at 40 nm (the paper
        // rounds 18.46 up).
        let bce = BceReference::paper();
        let units = bce.bce_in_area(432.0);
        assert!((18.0..19.5).contains(&units), "got {units}");
    }
}
