//! Device descriptions (the rows of Table 2).

use crate::tech::TechNode;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised when constructing or querying a device description.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A physical quantity that must be positive was not.
    NonPositive {
        /// Name of the parameter.
        what: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The queried attribute was not measured/published for this device
    /// (the paper's "-" table cells).
    Unavailable {
        /// Name of the missing attribute.
        what: &'static str,
        /// The device in question.
        device: DeviceId,
    },
    /// A catalog was supplied with the same device twice.
    DuplicateDevice {
        /// The repeated id.
        device: DeviceId,
    },
    /// A device was requested from a catalog that does not carry it.
    MissingDevice {
        /// The absent id.
        device: DeviceId,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            DeviceError::Unavailable { what, device } => {
                write!(f, "{what} is not available for {device}")
            }
            DeviceError::DuplicateDevice { device } => {
                write!(f, "device {device} appears more than once in the catalog")
            }
            DeviceError::MissingDevice { device } => {
                write!(f, "device {device} is not in the catalog")
            }
        }
    }
}

impl Error for DeviceError {}

/// The devices of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceId {
    /// Intel Core i7-960 (the baseline CPU).
    CoreI7_960,
    /// Nvidia GeForce GTX 285.
    Gtx285,
    /// Nvidia GeForce GTX 480.
    Gtx480,
    /// AMD Radeon HD 5870.
    R5870,
    /// Xilinx Virtex-6 LX760.
    V6Lx760,
    /// Synthesized custom-logic cores (65 nm standard-cell flow).
    Asic,
}

impl DeviceId {
    /// All Table 2 devices, in the paper's column order.
    pub const ALL: [DeviceId; 6] = [
        DeviceId::CoreI7_960,
        DeviceId::Gtx285,
        DeviceId::Gtx480,
        DeviceId::R5870,
        DeviceId::V6Lx760,
        DeviceId::Asic,
    ];

    /// The short label used in the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            DeviceId::CoreI7_960 => "Core i7",
            DeviceId::Gtx285 => "GTX285",
            DeviceId::Gtx480 => "GTX480",
            DeviceId::R5870 => "R5870",
            DeviceId::V6Lx760 => "LX760",
            DeviceId::Asic => "ASIC",
        }
    }

    /// The numeric key used in the projection figures' legends
    /// (`(0) SymCMP (1) AsymCMP (2) LX760 (3) GTX285 (4) GTX480
    /// (5) R5870 (6) ASIC`), for the U-core devices.
    pub fn figure_index(self) -> Option<u8> {
        match self {
            DeviceId::V6Lx760 => Some(2),
            DeviceId::Gtx285 => Some(3),
            DeviceId::Gtx480 => Some(4),
            DeviceId::R5870 => Some(5),
            DeviceId::Asic => Some(6),
            DeviceId::CoreI7_960 => None,
        }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The broad class a device belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A conventional multicore CPU.
    Cpu,
    /// A programmable GPGPU.
    Gpu,
    /// A field-programmable gate array.
    Fpga,
    /// Application-specific custom logic.
    CustomLogic,
}

/// A device row of Table 2: identity, process technology, areas, clock,
/// voltage and memory-system attributes.
///
/// Attributes the paper leaves blank ("-") are `None` and surface as
/// [`DeviceError::Unavailable`] from the checked accessors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    class: DeviceClass,
    year: u32,
    foundry: &'static str,
    node: TechNode,
    die_area_mm2: Option<f64>,
    core_area_mm2: Option<f64>,
    clock_ghz: Option<f64>,
    voltage_range_v: (f64, f64),
    memory: Option<&'static str>,
    bandwidth_gb_s: Option<f64>,
}

/// Builder-style constructor arguments for [`Device`]; all fields are
/// consumed by [`Device::new`].
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Which device this is.
    pub id: DeviceId,
    /// Device class.
    pub class: DeviceClass,
    /// Release / publication year.
    pub year: u32,
    /// Foundry and marketing node, e.g. `"TSMC"`.
    pub foundry: &'static str,
    /// Process node.
    pub node: TechNode,
    /// Total die area, if published.
    pub die_area_mm2: Option<f64>,
    /// Core+cache area after subtracting non-compute blocks, if derivable.
    pub core_area_mm2: Option<f64>,
    /// Nominal clock, if applicable.
    pub clock_ghz: Option<f64>,
    /// Operating voltage range `(min, max)`.
    pub voltage_range_v: (f64, f64),
    /// Memory configuration string, if applicable.
    pub memory: Option<&'static str>,
    /// Peak off-chip memory bandwidth, if applicable.
    pub bandwidth_gb_s: Option<f64>,
}

impl Device {
    /// Creates a device, validating the positive quantities.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NonPositive`] if any provided area, clock,
    /// bandwidth or voltage is not positive.
    pub fn new(spec: DeviceSpec) -> Result<Self, DeviceError> {
        fn check(what: &'static str, v: Option<f64>) -> Result<(), DeviceError> {
            if let Some(v) = v {
                if !(v.is_finite() && v > 0.0) {
                    return Err(DeviceError::NonPositive { what, value: v });
                }
            }
            Ok(())
        }
        check("die area", spec.die_area_mm2)?;
        check("core area", spec.core_area_mm2)?;
        check("clock", spec.clock_ghz)?;
        check("bandwidth", spec.bandwidth_gb_s)?;
        check("voltage min", Some(spec.voltage_range_v.0))?;
        check("voltage max", Some(spec.voltage_range_v.1))?;
        Ok(Device {
            id: spec.id,
            class: spec.class,
            year: spec.year,
            foundry: spec.foundry,
            node: spec.node,
            die_area_mm2: spec.die_area_mm2,
            core_area_mm2: spec.core_area_mm2,
            clock_ghz: spec.clock_ghz,
            voltage_range_v: spec.voltage_range_v,
            memory: spec.memory,
            bandwidth_gb_s: spec.bandwidth_gb_s,
        })
    }

    /// The constructor arguments that would rebuild this device — useful
    /// for deriving modified catalogs via [`crate::Catalog::from_specs`].
    pub fn spec(&self) -> DeviceSpec {
        DeviceSpec {
            id: self.id,
            class: self.class,
            year: self.year,
            foundry: self.foundry,
            node: self.node,
            die_area_mm2: self.die_area_mm2,
            core_area_mm2: self.core_area_mm2,
            clock_ghz: self.clock_ghz,
            voltage_range_v: self.voltage_range_v,
            memory: self.memory,
            bandwidth_gb_s: self.bandwidth_gb_s,
        }
    }

    /// The device identity.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Release / publication year.
    pub fn year(&self) -> u32 {
        self.year
    }

    /// Foundry string.
    pub fn foundry(&self) -> &'static str {
        self.foundry
    }

    /// Process node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Total die area, if published.
    pub fn die_area_mm2(&self) -> Option<f64> {
        self.die_area_mm2
    }

    /// Core+cache area (non-compute subtracted), if derivable.
    pub fn core_area_mm2(&self) -> Option<f64> {
        self.core_area_mm2
    }

    /// Core area, or an error naming the missing attribute.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Unavailable`] when the paper has no core
    /// area for this device.
    pub fn require_core_area_mm2(&self) -> Result<f64, DeviceError> {
        self.core_area_mm2.ok_or(DeviceError::Unavailable {
            what: "core area",
            device: self.id,
        })
    }

    /// Core area normalized to the 40 nm generation using the paper's
    /// convention (45 nm counts as 40 nm).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Unavailable`] when no core area is known.
    pub fn core_area_mm2_at_40nm(&self) -> Result<f64, DeviceError> {
        Ok(self.require_core_area_mm2()? * self.node.paper_normalization_to_40nm())
    }

    /// Nominal clock rate.
    pub fn clock_ghz(&self) -> Option<f64> {
        self.clock_ghz
    }

    /// Operating voltage range `(min, max)`.
    pub fn voltage_range_v(&self) -> (f64, f64) {
        self.voltage_range_v
    }

    /// Memory configuration, if applicable.
    pub fn memory(&self) -> Option<&'static str> {
        self.memory
    }

    /// Peak off-chip memory bandwidth.
    pub fn bandwidth_gb_s(&self) -> Option<f64> {
        self.bandwidth_gb_s
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {}, {})", self.id, self.foundry, self.node, self.year)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            id: DeviceId::CoreI7_960,
            class: DeviceClass::Cpu,
            year: 2009,
            foundry: "Intel",
            node: TechNode::N45,
            die_area_mm2: Some(263.0),
            core_area_mm2: Some(193.0),
            clock_ghz: Some(3.2),
            voltage_range_v: (0.8, 1.375),
            memory: Some("3GB DDR3"),
            bandwidth_gb_s: Some(32.0),
        }
    }

    #[test]
    fn builds_and_exposes_fields() {
        let d = Device::new(spec()).unwrap();
        assert_eq!(d.id(), DeviceId::CoreI7_960);
        assert_eq!(d.class(), DeviceClass::Cpu);
        assert_eq!(d.die_area_mm2(), Some(263.0));
        assert_eq!(d.require_core_area_mm2().unwrap(), 193.0);
        assert_eq!(d.bandwidth_gb_s(), Some(32.0));
    }

    #[test]
    fn rejects_non_positive_quantities() {
        let mut s = spec();
        s.die_area_mm2 = Some(-1.0);
        assert!(matches!(
            Device::new(s),
            Err(DeviceError::NonPositive { what: "die area", .. })
        ));
        let mut s = spec();
        s.clock_ghz = Some(0.0);
        assert!(Device::new(s).is_err());
    }

    #[test]
    fn missing_attribute_is_reported() {
        let mut s = spec();
        s.core_area_mm2 = None;
        let d = Device::new(s).unwrap();
        let err = d.require_core_area_mm2().unwrap_err();
        assert!(err.to_string().contains("core area"));
        assert!(err.to_string().contains("Core i7"));
    }

    #[test]
    fn normalized_area_uses_paper_convention() {
        // 45 nm i7 keeps its area.
        let d = Device::new(spec()).unwrap();
        assert_eq!(d.core_area_mm2_at_40nm().unwrap(), 193.0);
    }

    #[test]
    fn figure_indices_match_legends() {
        assert_eq!(DeviceId::V6Lx760.figure_index(), Some(2));
        assert_eq!(DeviceId::Gtx285.figure_index(), Some(3));
        assert_eq!(DeviceId::Gtx480.figure_index(), Some(4));
        assert_eq!(DeviceId::R5870.figure_index(), Some(5));
        assert_eq!(DeviceId::Asic.figure_index(), Some(6));
        assert_eq!(DeviceId::CoreI7_960.figure_index(), None);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = DeviceId::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(
            labels,
            vec!["Core i7", "GTX285", "GTX480", "R5870", "LX760", "ASIC"]
        );
    }
}
