//! The Table 2 device catalog.

use crate::device::{Device, DeviceClass, DeviceError, DeviceId, DeviceSpec};
use crate::tech::TechNode;

/// The six measured devices of the paper's Table 2.
///
/// ```
/// use ucore_devices::{Catalog, DeviceId};
/// let catalog = Catalog::paper();
/// let i7 = catalog.device(DeviceId::CoreI7_960);
/// assert_eq!(i7.die_area_mm2(), Some(263.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    devices: Vec<Device>,
}

impl Catalog {
    /// Builds the catalog exactly as published in Table 2.
    ///
    /// The R5870's core area is not from a die photo: the paper assumes a
    /// 25% non-compute overhead on its 334 mm² die, giving 250.5 mm².
    pub fn paper() -> Self {
        let specs = vec![
            DeviceSpec {
                id: DeviceId::CoreI7_960,
                class: DeviceClass::Cpu,
                year: 2009,
                foundry: "Intel",
                node: TechNode::N45,
                die_area_mm2: Some(263.0),
                core_area_mm2: Some(193.0),
                clock_ghz: Some(3.2),
                voltage_range_v: (0.8, 1.375),
                memory: Some("3GB DDR3"),
                bandwidth_gb_s: Some(32.0),
            },
            DeviceSpec {
                id: DeviceId::Gtx285,
                class: DeviceClass::Gpu,
                year: 2008,
                foundry: "TSMC",
                node: TechNode::N55,
                die_area_mm2: Some(470.0),
                core_area_mm2: Some(338.0),
                clock_ghz: Some(1.476),
                voltage_range_v: (1.05, 1.18),
                memory: Some("1GB GDDR3"),
                bandwidth_gb_s: Some(159.0),
            },
            DeviceSpec {
                id: DeviceId::Gtx480,
                class: DeviceClass::Gpu,
                year: 2010,
                foundry: "TSMC",
                node: TechNode::N40,
                die_area_mm2: Some(529.0),
                core_area_mm2: Some(422.0),
                clock_ghz: Some(1.4),
                voltage_range_v: (0.96, 1.025),
                memory: Some("1.5GB GDDR5"),
                bandwidth_gb_s: Some(177.4),
            },
            DeviceSpec {
                id: DeviceId::R5870,
                class: DeviceClass::Gpu,
                year: 2009,
                foundry: "TSMC",
                node: TechNode::N40,
                die_area_mm2: Some(334.0),
                // 25% assumed non-compute overhead (no die photo).
                core_area_mm2: Some(334.0 * 0.75),
                clock_ghz: Some(1.476),
                voltage_range_v: (0.95, 1.174),
                memory: Some("1GB GDDR5"),
                bandwidth_gb_s: Some(153.6),
            },
            DeviceSpec {
                id: DeviceId::V6Lx760,
                class: DeviceClass::Fpga,
                year: 2009,
                foundry: "UMC/Samsung",
                node: TechNode::N40,
                die_area_mm2: None,
                core_area_mm2: None, // per-design: LUTs used x area/LUT
                clock_ghz: None,
                voltage_range_v: (0.9, 1.0),
                memory: None,
                bandwidth_gb_s: None,
            },
            DeviceSpec {
                id: DeviceId::Asic,
                class: DeviceClass::CustomLogic,
                year: 2007,
                foundry: "commercial std-cell",
                node: TechNode::N65,
                die_area_mm2: None,
                core_area_mm2: None, // per-design: from synthesis
                clock_ghz: None,
                voltage_range_v: (1.1, 1.1),
                memory: None,
                bandwidth_gb_s: None,
            },
        ];
        // The paper constants validate by construction; a regression here
        // is a programming error in this module, caught by the catalog
        // tests, so it cannot reach callers as a panic at runtime.
        match Catalog::from_specs(specs) {
            Ok(catalog) => catalog,
            Err(e) => unreachable!("Table 2 constants are valid: {e}"),
        }
    }

    /// Builds a catalog from caller-supplied specs (an ingress boundary:
    /// e.g. an alternative device table loaded from external data).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NonPositive`] for invalid physical
    /// quantities (via [`Device::new`]) and
    /// [`DeviceError::DuplicateDevice`] if an id appears twice.
    pub fn from_specs(specs: Vec<DeviceSpec>) -> Result<Self, DeviceError> {
        let mut devices: Vec<Device> = Vec::with_capacity(specs.len());
        for spec in specs {
            let device = Device::new(spec)?;
            if devices.iter().any(|d| d.id() == device.id()) {
                return Err(DeviceError::DuplicateDevice { device: device.id() });
            }
            devices.push(device);
        }
        Ok(Catalog { devices })
    }

    /// All devices in the paper's column order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Looks up a device by id.
    ///
    /// # Panics
    ///
    /// Never panics for ids constructed from [`DeviceId`]: the paper
    /// catalog contains every id. Use [`Catalog::try_device`] for
    /// catalogs built via [`Catalog::from_specs`], which may be partial.
    pub fn device(&self, id: DeviceId) -> &Device {
        match self.try_device(id) {
            Ok(device) => device,
            // ucore-lint: allow(panic-reachability): documented panicking accessor; the infallible paper catalog is total over DeviceId and `try_device` is the typed-error alternative
            Err(e) => panic!("{e}"),
        }
    }

    /// Looks up a device by id, reporting absence as a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::MissingDevice`] when the catalog does not
    /// carry the id.
    pub fn try_device(&self, id: DeviceId) -> Result<&Device, DeviceError> {
        self.devices
            .iter()
            .find(|d| d.id() == id)
            .ok_or(DeviceError::MissingDevice { device: id })
    }

    /// The U-core candidate devices (everything except the baseline CPU).
    pub fn ucore_devices(&self) -> impl Iterator<Item = &Device> {
        self.devices
            .iter()
            .filter(|d| d.id() != DeviceId::CoreI7_960)
    }

    /// Core area in the 40 nm generation for a device, when defined.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Unavailable`] for the FPGA and ASIC, whose
    /// areas are design-specific (see [`crate::fpga::FpgaAreaModel`] and
    /// the `ucore-simdev` ASIC estimator).
    pub fn normalized_core_area(&self, id: DeviceId) -> Result<f64, DeviceError> {
        self.device(id).core_area_mm2_at_40nm()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_all_six_devices() {
        let c = Catalog::paper();
        assert_eq!(c.devices().len(), 6);
        for id in DeviceId::ALL {
            assert_eq!(c.device(id).id(), id);
        }
    }

    #[test]
    fn table2_spot_checks() {
        let c = Catalog::paper();
        assert_eq!(c.device(DeviceId::Gtx480).die_area_mm2(), Some(529.0));
        assert_eq!(c.device(DeviceId::Gtx480).core_area_mm2(), Some(422.0));
        assert_eq!(c.device(DeviceId::Gtx285).node(), TechNode::N55);
        assert_eq!(c.device(DeviceId::Asic).node(), TechNode::N65);
        assert_eq!(c.device(DeviceId::CoreI7_960).clock_ghz(), Some(3.2));
        assert_eq!(c.device(DeviceId::V6Lx760).voltage_range_v(), (0.9, 1.0));
    }

    #[test]
    fn r5870_core_area_assumes_25_percent_overhead() {
        let c = Catalog::paper();
        let area = c.device(DeviceId::R5870).core_area_mm2().unwrap();
        assert!((area - 250.5).abs() < 1e-9);
    }

    #[test]
    fn normalized_areas_reproduce_table4_denominators() {
        let c = Catalog::paper();
        // Table 4 perf/mm² = absolute perf / normalized area.
        let i7 = c.normalized_core_area(DeviceId::CoreI7_960).unwrap();
        assert!((96.0 / i7 - 0.50).abs() < 0.01); // MMM row

        let gtx285 = c.normalized_core_area(DeviceId::Gtx285).unwrap();
        assert!((425.0 / gtx285 - 2.40).abs() < 0.05);

        let gtx480 = c.normalized_core_area(DeviceId::Gtx480).unwrap();
        assert!((541.0 / gtx480 - 1.28).abs() < 0.01);

        let r5870 = c.normalized_core_area(DeviceId::R5870).unwrap();
        assert!((1491.0 / r5870 - 5.95).abs() < 0.01);
    }

    #[test]
    fn fpga_and_asic_have_design_specific_area() {
        let c = Catalog::paper();
        assert!(c.normalized_core_area(DeviceId::V6Lx760).is_err());
        assert!(c.normalized_core_area(DeviceId::Asic).is_err());
    }

    #[test]
    fn ucore_devices_excludes_cpu() {
        let c = Catalog::paper();
        let ids: Vec<DeviceId> = c.ucore_devices().map(|d| d.id()).collect();
        assert_eq!(ids.len(), 5);
        assert!(!ids.contains(&DeviceId::CoreI7_960));
    }

    #[test]
    fn from_specs_rejects_duplicates() {
        let paper = Catalog::paper();
        let mut specs: Vec<DeviceSpec> =
            paper.devices().iter().map(Device::spec).collect();
        specs.push(specs[0].clone());
        let err = Catalog::from_specs(specs).unwrap_err();
        assert!(matches!(err, DeviceError::DuplicateDevice { .. }), "{err}");
    }

    #[test]
    fn try_device_reports_absence_as_typed_error() {
        let paper = Catalog::paper();
        let partial =
            Catalog::from_specs(vec![paper.device(DeviceId::CoreI7_960).spec()]).unwrap();
        assert!(partial.try_device(DeviceId::CoreI7_960).is_ok());
        let err = partial.try_device(DeviceId::Asic).unwrap_err();
        assert_eq!(err, DeviceError::MissingDevice { device: DeviceId::Asic });
    }

    #[test]
    fn gpu_bandwidths_match_table2() {
        let c = Catalog::paper();
        assert_eq!(c.device(DeviceId::Gtx285).bandwidth_gb_s(), Some(159.0));
        assert_eq!(c.device(DeviceId::Gtx480).bandwidth_gb_s(), Some(177.4));
        assert_eq!(c.device(DeviceId::R5870).bandwidth_gb_s(), Some(153.6));
    }
}
