//! # ucore-devices — the measured-device catalog and technology arithmetic
//!
//! This crate is the "Table 2" substrate of the reproduction: the six
//! devices whose measured performance and power calibrate the model
//! (Core i7-960, GTX285, GTX480, Radeon R5870, Virtex-6 LX760, and the
//! synthesized 65 nm ASIC cores), plus the technology-node arithmetic the
//! paper uses to compare them fairly:
//!
//! * **area normalization** — perf/mm² comparisons are made "in
//!   40nm/45nm": devices in older nodes have their core area scaled by the
//!   square of the feature-size ratio, while 45 nm is treated as the same
//!   generation as 40 nm;
//! * **non-compute subtraction** — die photos (or a 25% assumption for the
//!   R5870) remove memory controllers and I/O from the area;
//! * **FPGA LUT accounting** — FPGA area is the LUTs a design occupies
//!   times 0.00191 mm² per LUT (flip-flops, RAMs, multipliers and
//!   interconnect amortized in);
//! * **the BCE reference** — an Intel-Atom-like in-order core
//!   (26 mm² in 45 nm, 10% non-compute) defines the Base Core Equivalent,
//!   making one Core i7 core worth `r = 2` BCE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom: model code returns typed errors; `unwrap`/`expect`
// stay legal in `#[cfg(test)]` code only (ucore-lint enforces the same
// contract at the token level).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bce;
pub mod catalog;
pub mod device;
pub mod fpga;
pub mod tech;

pub use bce::BceReference;
pub use catalog::Catalog;
pub use device::{Device, DeviceClass, DeviceError, DeviceId, DeviceSpec};
pub use fpga::FpgaAreaModel;
pub use tech::TechNode;
