//! Property-based tests over the device catalog and node arithmetic.

use proptest::prelude::*;
use ucore_devices::{BceReference, Catalog, FpgaAreaModel, TechNode};

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::ALL.to_vec())
}

proptest! {
    #[test]
    fn area_scaling_composes(a in any_node(), b in any_node(), c in any_node()) {
        // scale(a->b) * scale(b->c) = scale(a->c).
        let direct = a.area_scale_to(c);
        let via = a.area_scale_to(b) * b.area_scale_to(c);
        prop_assert!((direct - via).abs() < 1e-12 * direct.max(1.0));
    }

    #[test]
    fn area_scaling_inverts(a in any_node(), b in any_node()) {
        let round_trip = a.area_scale_to(b) * b.area_scale_to(a);
        prop_assert!((round_trip - 1.0).abs() < 1e-12);
    }

    #[test]
    fn newer_nodes_shrink_area(a in any_node(), b in any_node()) {
        if b < a {
            prop_assert!(a.area_scale_to(b) < 1.0);
        }
        if b == a {
            prop_assert_eq!(a.area_scale_to(b), 1.0);
        }
    }

    #[test]
    fn fpga_area_is_linear_and_invertible(luts in 1u64..10_000_000) {
        let m = FpgaAreaModel::paper();
        let area = m.area_mm2(luts).unwrap();
        prop_assert!(area > 0.0);
        // Inversion is exact up to one LUT of floor-induced float error.
        let back = m.luts_in_area(area);
        prop_assert!(back.abs_diff(luts) <= 1, "{luts} -> {back}");
        let double = m.area_mm2(luts * 2).unwrap();
        prop_assert!((double - 2.0 * area).abs() < 1e-9 * area);
    }

    #[test]
    fn bce_counts_scale_linearly(area in 1.0f64..10_000.0) {
        let bce = BceReference::paper();
        let n = bce.bce_in_area(area);
        let n2 = bce.bce_in_area(2.0 * area);
        prop_assert!((n2 - 2.0 * n).abs() < 1e-9 * n);
        prop_assert!(n > 0.0);
    }

    #[test]
    fn i7_core_power_exceeds_perf_superlinearly(alpha in 1.0f64..3.0) {
        let bce = BceReference::paper();
        // With r = 2 > 1 and alpha > 1: power ratio exceeds perf ratio.
        prop_assert!(bce.i7_core_power(alpha) >= bce.i7_core_perf() - 1e-12);
    }
}

#[test]
fn catalog_is_internally_consistent() {
    let c = Catalog::paper();
    for d in c.devices() {
        if let (Some(die), Some(core)) = (d.die_area_mm2(), d.core_area_mm2()) {
            assert!(core <= die, "{}: core exceeds die", d.id());
        }
        let (lo, hi) = d.voltage_range_v();
        assert!(lo <= hi, "{}", d.id());
    }
}
