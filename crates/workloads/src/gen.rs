//! Deterministic input generators for the kernels.
//!
//! Everything is seeded, so tests, benchmarks and the measurement harness
//! are reproducible run to run.

use crate::blackscholes::OptionParams;
use crate::fft::Complex;
use crate::mmm::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random matrix with entries uniform in `[-1, 1)`.
///
/// # Panics
///
/// Panics if either dimension is zero (matching [`Matrix::zeros`]).
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
    m
}

/// A random complex signal with components uniform in `[-1, 1)`.
pub fn random_signal(len: usize, seed: u64) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Complex::new(rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)))
        .collect()
}

/// A random option portfolio with PARSEC-like parameter ranges: spot and
/// strike in `[5, 250)`, rate in `[0, 10%)`, volatility in `[5%, 90%)`,
/// expiry in `[0.05, 4)` years.
pub fn random_portfolio(len: usize, seed: u64) -> Vec<OptionParams> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| OptionParams {
            spot: rng.gen_range(5.0f32..250.0),
            strike: rng.gen_range(5.0f32..250.0),
            rate: rng.gen_range(0.0f32..0.10),
            volatility: rng.gen_range(0.05f32..0.90),
            time: rng.gen_range(0.05f32..4.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_output() {
        assert_eq!(random_matrix(4, 4, 9), random_matrix(4, 4, 9));
        assert_eq!(random_signal(16, 9), random_signal(16, 9));
        assert_eq!(random_portfolio(8, 9), random_portfolio(8, 9));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_matrix(4, 4, 1), random_matrix(4, 4, 2));
        assert_ne!(random_signal(16, 1), random_signal(16, 2));
    }

    #[test]
    fn values_in_expected_ranges() {
        let m = random_matrix(8, 8, 3);
        assert!(m.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
        for p in random_portfolio(100, 4) {
            assert!(p.spot >= 5.0 && p.spot < 250.0);
            assert!(p.volatility >= 0.05 && p.volatility < 0.90);
            assert!(p.time >= 0.05 && p.time < 4.0);
        }
    }

    #[test]
    fn requested_lengths() {
        assert_eq!(random_signal(0, 1).len(), 0);
        assert_eq!(random_signal(37, 1).len(), 37);
        assert_eq!(random_portfolio(12, 1).len(), 12);
    }
}
