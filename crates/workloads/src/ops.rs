//! Structural operation counting: proving the FLOP formulas.
//!
//! The model's throughput units rest on operation-count conventions
//! (`2N³` for MMM, the `5N log2 N` pseudo-FLOP convention for FFT). This
//! module derives those counts *structurally* from the algorithms the
//! kernels actually execute — butterflies, inner-product steps, pricing
//! pipeline stages — so the conventions are verified against the code,
//! not just asserted.

/// Operations in one radix-2 butterfly: one complex multiply
/// (4 mul + 2 add) and two complex add/subtracts (2 adds each).
pub const RADIX2_BUTTERFLY_FLOPS: u64 = 10;

/// Butterflies executed by an iterative radix-2 FFT of size `n`
/// (a power of two): `n/2` per stage, `log2 n` stages.
pub fn radix2_butterflies(n: usize) -> u64 {
    debug_assert!(n.is_power_of_two());
    (n as u64 / 2) * u64::from(n.trailing_zeros())
}

/// Exact FLOPs of the radix-2 FFT, counting every butterfly at 10
/// operations (trivial twiddles not special-cased — the same convention
/// the pseudo-GFLOP metric uses).
pub fn radix2_flops(n: usize) -> u64 {
    radix2_butterflies(n) * RADIX2_BUTTERFLY_FLOPS
}

/// Operations in one radix-4 butterfly: three complex multiplies
/// (18 flops) and eight complex add/subtracts (16 flops); the `±i`
/// rotations are free.
pub const RADIX4_BUTTERFLY_FLOPS: u64 = 34;

/// Butterflies executed by a radix-4 FFT of size `n` (a power of four):
/// `n/4` per stage, `log4 n` stages.
pub fn radix4_butterflies(n: usize) -> u64 {
    debug_assert!(n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2));
    (n as u64 / 4) * u64::from(n.trailing_zeros() / 2)
}

/// Exact FLOPs of the radix-4 FFT.
pub fn radix4_flops(n: usize) -> u64 {
    radix4_butterflies(n) * RADIX4_BUTTERFLY_FLOPS
}

/// The classical split-radix operation count, the lowest of the
/// power-of-two decompositions: `4·N·log2 N − 6·N + 8` real FLOPs
/// (Yavne 1968; the count Spiral's search converges to for small
/// transforms).
pub fn split_radix_flops(n: usize) -> u64 {
    debug_assert!(n.is_power_of_two() && n >= 2);
    let n64 = n as u64;
    let log2 = u64::from(n.trailing_zeros());
    4 * n64 * log2 - 6 * n64 + 8
}

/// Exact FLOPs of the naive `m×k` by `k×n` matrix product: one multiply
/// and one add per inner step.
pub fn mmm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Operations in one Black-Scholes pricing (both legs) through our
/// pipeline: d1/d2 (ln, sqrt, 5 mul, 2 div, 3 add ≈ 12), two CND
/// evaluations (exp, ~8 mul/add each ≈ 17 each, by the Abramowitz-
/// Stegun polynomial with Horner evaluation), discounting (exp + mul ≈
/// 3), and the four combination multiplies/adds per leg (≈ 6).
pub fn black_scholes_ops() -> u64 {
    12 + 2 * 17 + 3 + 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackscholes::FLOPS_PER_OPTION;
    use crate::Workload;

    #[test]
    fn radix2_count_equals_the_pseudo_flop_convention() {
        // 10 flops x (n/2 log2 n) butterflies = 5 n log2 n: the paper's
        // pseudo-GFLOP denominator is exactly the radix-2 work.
        for &n in &[2usize, 8, 64, 1024, 1 << 14, 1 << 20] {
            let pseudo = Workload::fft(n).unwrap().flops_per_unit();
            assert_eq!(radix2_flops(n) as f64, pseudo, "n = {n}");
        }
    }

    #[test]
    fn radix4_does_fewer_real_flops_than_radix2() {
        // The reason the planner prefers radix-4: 34/4 = 8.5 flops per
        // point per stage-pair vs radix-2's 10.
        for &n in &[16usize, 256, 4096, 1 << 14] {
            let r2 = radix2_flops(n);
            let r4 = radix4_flops(n);
            assert!(r4 < r2, "n = {n}: {r4} !< {r2}");
            // And the ratio is exactly 34/40.
            assert_eq!(r4 * 40, r2 * 34, "n = {n}");
        }
    }

    #[test]
    fn mmm_count_matches_the_model() {
        for &n in &[1usize, 8, 128, 500] {
            let model = Workload::mmm(n).unwrap().flops_per_unit();
            assert_eq!(mmm_flops(n, n, n) as f64, model);
        }
        assert_eq!(mmm_flops(2, 3, 4), 48);
    }

    #[test]
    fn black_scholes_count_matches_the_advertised_constant() {
        assert_eq!(black_scholes_ops() as f64, FLOPS_PER_OPTION);
    }

    #[test]
    fn split_radix_is_the_cheapest_decomposition() {
        for &n in &[8usize, 64, 1024, 1 << 14] {
            let sr = split_radix_flops(n);
            assert!(sr < radix2_flops(n), "n = {n}");
            if n.trailing_zeros() % 2 == 0 {
                assert!(sr < radix4_flops(n), "n = {n}");
            }
        }
        // The canonical small case: N = 8 costs 4*8*3 - 48 + 8 = 56.
        assert_eq!(split_radix_flops(8), 56);
    }

    #[test]
    fn butterfly_counts_are_stagewise() {
        assert_eq!(radix2_butterflies(8), 12); // 4 butterflies x 3 stages
        assert_eq!(radix4_butterflies(16), 8); // 4 butterflies x 2 stages
    }
}
