//! Wall-clock throughput measurement of the real kernels.
//!
//! The paper measures devices "running applications in steady state";
//! this harness does the host-side equivalent for the Rust kernels:
//! repeat a work unit until a minimum duration has elapsed and report
//! throughput in the workload's unit (GFLOP/s or Mopts/s). It is used by
//! the examples and benchmarks; the simulated devices in `ucore-simdev`
//! have their own calibrated throughput model.

use crate::blackscholes::batch;
use crate::fft::{Direction, Fft};
use crate::gen::{random_matrix, random_portfolio, random_signal};
use crate::kernel::{PerfUnit, Workload, WorkloadError, WorkloadKind};
use crate::mmm::blocked;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSample {
    /// Throughput in the workload's reporting unit.
    pub value: f64,
    /// The unit of `value`.
    pub unit: PerfUnit,
    /// Work units completed.
    pub iterations: u64,
    /// Wall-clock time spent, in seconds.
    pub elapsed_s: f64,
}

impl ThroughputSample {
    /// Throughput converted to work units per second.
    pub fn units_per_second(&self) -> f64 {
        self.iterations as f64 / self.elapsed_s
    }
}

/// Runs `workload` repeatedly for at least `min_duration` and reports the
/// achieved throughput.
///
/// The kernel inputs are regenerated once (seeded) and reused, so the
/// measurement is compute-dominated — matching the paper's compute-bound
/// requirement.
///
/// # Errors
///
/// Propagates construction errors (e.g. an FFT size that is not a power
/// of two reaching the planner; impossible for a validated
/// [`Workload`]).
pub fn measure_throughput(
    workload: Workload,
    min_duration: Duration,
) -> Result<ThroughputSample, WorkloadError> {
    match workload.kind() {
        WorkloadKind::Mmm => {
            let n = workload.size();
            let a = random_matrix(n, n, 1);
            let b = random_matrix(n, n, 2);
            let mut iterations = 0u64;
            let start = Instant::now();
            let mut sink = 0.0f32;
            while start.elapsed() < min_duration {
                let c = blocked::multiply(&a, &b, blocked::DEFAULT_BLOCK.min(n))?;
                sink += c.get(0, 0);
                iterations += 1;
            }
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(sink);
            Ok(ThroughputSample {
                value: iterations as f64 * workload.flops_per_unit() / elapsed / 1e9,
                unit: PerfUnit::GflopsPerSec,
                iterations,
                elapsed_s: elapsed,
            })
        }
        WorkloadKind::Fft => {
            let n = workload.size();
            let plan = Fft::new(n)?;
            let signal = random_signal(n, 3);
            let mut iterations = 0u64;
            let start = Instant::now();
            let mut buf = signal.clone();
            while start.elapsed() < min_duration {
                buf.copy_from_slice(&signal);
                plan.transform(&mut buf, Direction::Forward)?;
                iterations += 1;
            }
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(buf[0]);
            Ok(ThroughputSample {
                value: iterations as f64 * workload.flops_per_unit() / elapsed / 1e9,
                unit: PerfUnit::GflopsPerSec,
                iterations,
                elapsed_s: elapsed,
            })
        }
        WorkloadKind::BlackScholes => {
            const BATCH: usize = 4096;
            let portfolio = random_portfolio(BATCH, 4);
            let mut iterations = 0u64;
            let start = Instant::now();
            let mut sink = 0.0f32;
            while start.elapsed() < min_duration {
                let prices = batch::price_all(&portfolio);
                sink += prices[0].call;
                iterations += BATCH as u64;
            }
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(sink);
            Ok(ThroughputSample {
                value: iterations as f64 / elapsed / 1e6,
                unit: PerfUnit::MoptsPerSec,
                iterations,
                elapsed_s: elapsed,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_mmm() {
        let w = Workload::mmm(32).unwrap();
        let s = measure_throughput(w, Duration::from_millis(30)).unwrap();
        assert!(s.value > 0.0);
        assert!(s.iterations > 0);
        assert_eq!(s.unit, PerfUnit::GflopsPerSec);
    }

    #[test]
    fn measures_fft() {
        let w = Workload::fft(256).unwrap();
        let s = measure_throughput(w, Duration::from_millis(30)).unwrap();
        assert!(s.value > 0.0);
        assert_eq!(s.unit, PerfUnit::GflopsPerSec);
    }

    #[test]
    fn measures_black_scholes() {
        let w = Workload::black_scholes();
        let s = measure_throughput(w, Duration::from_millis(30)).unwrap();
        assert!(s.value > 0.0);
        assert_eq!(s.unit, PerfUnit::MoptsPerSec);
        assert!(s.units_per_second() > 0.0);
    }
}
