//! Dense single-precision matrix-matrix multiplication.
//!
//! Three implementations of `C = A·B`, in increasing tuning effort:
//!
//! * [`naive::multiply`] — the textbook triple loop, the correctness
//!   reference;
//! * [`blocked::multiply`] — cache-blocked with an ikj loop order, the
//!   single-threaded tuned kernel;
//! * [`parallel::multiply`] — the blocked kernel with rows distributed
//!   across threads (crossbeam scoped threads), standing in for the
//!   paper's MKL baseline;
//! * [`strassen::multiply`] — the sub-cubic recursion, for completeness
//!   and as a counterexample to the `2N³` operation convention.

pub mod blocked;
pub mod naive;
pub mod parallel;
pub mod strassen;

use crate::kernel::WorkloadError;
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
///
/// ```
/// use ucore_workloads::mmm::Matrix;
/// let m = Matrix::identity(3);
/// assert_eq!(m.get(1, 1), 1.0);
/// assert_eq!(m.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero. Use [`Matrix::try_zeros`] at
    /// boundaries where the shape is untrusted input.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A zero matrix of the given shape, rejecting empty shapes as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroSize`] if either dimension is zero.
    pub fn try_zeros(rows: usize, cols: usize) -> Result<Self, WorkloadError> {
        if rows == 0 {
            return Err(WorkloadError::ZeroSize { what: "rows" });
        }
        if cols == 0 {
            return Err(WorkloadError::ZeroSize { what: "cols" });
        }
        Ok(Matrix { rows, cols, data: vec![0.0; rows * cols] })
    }

    /// The identity matrix of order `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero. Use [`Matrix::try_identity`] for untrusted
    /// orders.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// The identity matrix of order `n`, rejecting `n == 0` as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroSize`] if `n` is zero.
    pub fn try_identity(n: usize) -> Result<Self, WorkloadError> {
        let mut m = Matrix::try_zeros(n, n)?;
        for i in 0..n {
            m.try_set(i, i, 1.0)?;
        }
        Ok(m)
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::LengthMismatch`] unless
    /// `data.len() == rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f32]) -> Result<Self, WorkloadError> {
        if data.len() != rows * cols {
            return Err(WorkloadError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data: data.to_vec() })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds. Use [`Matrix::try_get`] for untrusted
    /// indices.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element at `(row, col)`, reporting out-of-bounds as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::IndexOutOfBounds`] if either index is
    /// outside the matrix.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f32, WorkloadError> {
        self.check_index(row, col)?;
        Ok(self.data[row * self.cols + col])
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds. Use [`Matrix::try_set`] for untrusted
    /// indices.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Sets the element at `(row, col)`, reporting out-of-bounds as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::IndexOutOfBounds`] if either index is
    /// outside the matrix.
    pub fn try_set(
        &mut self,
        row: usize,
        col: usize,
        value: f32,
    ) -> Result<(), WorkloadError> {
        self.check_index(row, col)?;
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    fn check_index(&self, row: usize, col: usize) -> Result<(), WorkloadError> {
        if row >= self.rows || col >= self.cols {
            return Err(WorkloadError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(())
    }

    /// The backing row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The largest absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ. Use [`Matrix::try_max_abs_diff`]
    /// when the shapes are not known to agree.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// The largest absolute element-wise difference to another matrix,
    /// reporting a shape disagreement as a typed error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ShapeMismatch`] if the shapes differ.
    pub fn try_max_abs_diff(&self, other: &Matrix) -> Result<f32, WorkloadError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(WorkloadError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(self.max_abs_diff(other))
    }
}

/// Validates that `a`, `b` are conformable and returns the output shape.
pub(crate) fn check_shapes(a: &Matrix, b: &Matrix) -> Result<(usize, usize), WorkloadError> {
    if a.cols() != b.rows() {
        return Err(WorkloadError::LengthMismatch {
            expected: a.cols(),
            actual: b.rows(),
        });
    }
    Ok((a.rows(), b.cols()))
}

/// The FLOP count of an `m×k` by `k×n` product: `2mkn`.
pub fn flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_constructors_reject_empty_shapes_with_typed_errors() {
        assert_eq!(
            Matrix::try_zeros(0, 3).unwrap_err(),
            WorkloadError::ZeroSize { what: "rows" }
        );
        assert_eq!(
            Matrix::try_zeros(3, 0).unwrap_err(),
            WorkloadError::ZeroSize { what: "cols" }
        );
        assert_eq!(
            Matrix::try_identity(0).unwrap_err(),
            WorkloadError::ZeroSize { what: "rows" }
        );
        assert_eq!(Matrix::try_identity(3).unwrap(), Matrix::identity(3));
        assert_eq!(Matrix::try_zeros(2, 3).unwrap(), Matrix::zeros(2, 3));
    }

    #[test]
    fn try_accessors_reject_out_of_bounds_with_typed_errors() {
        let mut m = Matrix::zeros(2, 3);
        assert!(m.try_set(1, 2, 5.0).is_ok());
        assert_eq!(m.try_get(1, 2).unwrap(), 5.0);
        let err = m.try_get(2, 0).unwrap_err();
        assert_eq!(
            err,
            WorkloadError::IndexOutOfBounds { row: 2, col: 0, rows: 2, cols: 3 }
        );
        assert!(m.try_set(0, 3, 1.0).is_err());
    }

    #[test]
    fn try_max_abs_diff_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(
            a.try_max_abs_diff(&b).unwrap_err(),
            WorkloadError::ShapeMismatch { left: (2, 3), right: (3, 2) }
        );
        assert_eq!(a.try_max_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 5);
        assert_eq!(check_shapes(&a, &b).unwrap(), (2, 5));
        let bad = Matrix::zeros(4, 5);
        assert!(check_shapes(&a, &bad).is_err());
    }

    #[test]
    fn flop_count() {
        assert_eq!(flops(128, 128, 128), 2.0 * 128f64.powi(3));
        assert_eq!(flops(2, 3, 4), 48.0);
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::from_slice(1, 2, &[1.0, 2.0]).unwrap();
        let b = Matrix::from_slice(1, 2, &[1.5, 1.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
