//! Cache-blocked matrix multiplication — the tuned single-threaded kernel.

use super::{check_shapes, Matrix};
use crate::kernel::WorkloadError;

/// The default tile edge, matching the paper's assumed blocking for the
/// MMM compulsory-bandwidth computation (footnote 3).
pub const DEFAULT_BLOCK: usize = 128;

/// Computes `C = A·B` tile-by-tile with an `i, k, j` inner order so the
/// innermost loop streams rows of `B` and `C`, which is what lets the
/// kernel stay compute-bound once a tile fits in cache.
///
/// ```
/// use ucore_workloads::mmm::{blocked, naive, Matrix};
/// let a = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0])?;
/// let b = Matrix::from_slice(2, 2, &[5.0, 6.0, 7.0, 8.0])?;
/// let tuned = blocked::multiply(&a, &b, 64)?;
/// let reference = naive::multiply(&a, &b)?;
/// assert!(tuned.max_abs_diff(&reference) < 1e-4);
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::LengthMismatch`] if the shapes are not
/// conformable, or [`WorkloadError::ZeroSize`] for a zero block size.
pub fn multiply(a: &Matrix, b: &Matrix, block: usize) -> Result<Matrix, WorkloadError> {
    if block == 0 {
        return Err(WorkloadError::ZeroSize { what: "block size" });
    }
    let (m, n) = check_shapes(a, b)?;
    let mut c = Matrix::zeros(m, n);
    multiply_into(a, b, &mut c, block, 0, m);
    Ok(c)
}

/// Multiplies the row range `[row_start, row_end)` of `A` into the same
/// rows of `C`. Shared by the blocked and the parallel kernels.
pub(crate) fn multiply_into(
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    block: usize,
    row_start: usize,
    row_end: usize,
) {
    let n = b.cols();
    let k_dim = a.cols();
    for ii in (row_start..row_end).step_by(block) {
        let i_hi = (ii + block).min(row_end);
        for kk in (0..k_dim).step_by(block) {
            let k_hi = (kk + block).min(k_dim);
            for jj in (0..n).step_by(block) {
                let j_hi = (jj + block).min(n);
                for i in ii..i_hi {
                    for k in kk..k_hi {
                        let aik = a.get(i, k);
                        // ucore-lint: allow(float-eq): exact-zero sparsity skip; skipping only IEEE ±0.0 terms cannot change the sum
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = b.row(k);
                        let c_base = i * n;
                        let c_data = c.as_mut_slice();
                        for j in jj..j_hi {
                            c_data[c_base + j] += aik * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

/// Shared work driver for parallel callers: like [`multiply`] but writes
/// into a caller-provided output row range represented as a raw slice.
pub(crate) fn multiply_rows_to_slice(
    a: &Matrix,
    b: &Matrix,
    out: &mut [f32],
    block: usize,
    row_start: usize,
    row_end: usize,
) {
    let n = b.cols();
    let k_dim = a.cols();
    debug_assert_eq!(out.len(), (row_end - row_start) * n);
    for kk in (0..k_dim).step_by(block) {
        let k_hi = (kk + block).min(k_dim);
        for i in row_start..row_end {
            let out_base = (i - row_start) * n;
            for k in kk..k_hi {
                let aik = a.get(i, k);
                // ucore-lint: allow(float-eq): exact-zero sparsity skip; skipping only IEEE ±0.0 terms cannot change the sum
                if aik == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for j in 0..n {
                    out[out_base + j] += aik * b_row[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::mmm::naive;

    #[test]
    fn agrees_with_naive_on_random_inputs() {
        for &(m, k, n) in &[(5usize, 7usize, 3usize), (16, 16, 16), (33, 17, 9)] {
            let a = random_matrix(m, k, 1);
            let b = random_matrix(k, n, 2);
            let tuned = multiply(&a, &b, 8).unwrap();
            let reference = naive::multiply(&a, &b).unwrap();
            assert!(
                tuned.max_abs_diff(&reference) < 1e-3,
                "({m}, {k}, {n}) diverged"
            );
        }
    }

    #[test]
    fn block_size_larger_than_matrix_is_fine() {
        let a = random_matrix(4, 4, 3);
        let b = random_matrix(4, 4, 4);
        let big = multiply(&a, &b, 1024).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        assert!(big.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn block_size_one_is_fine() {
        let a = random_matrix(6, 5, 5);
        let b = random_matrix(5, 4, 6);
        let one = multiply(&a, &b, 1).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        assert!(one.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn zero_block_rejected() {
        let a = Matrix::identity(2);
        assert!(multiply(&a, &a, 0).is_err());
    }

    #[test]
    fn default_block_matches_paper() {
        assert_eq!(DEFAULT_BLOCK, 128);
    }

    #[test]
    fn rows_to_slice_matches_full_product() {
        let a = random_matrix(10, 8, 7);
        let b = random_matrix(8, 6, 8);
        let full = naive::multiply(&a, &b).unwrap();
        let mut out = vec![0.0f32; 4 * 6];
        multiply_rows_to_slice(&a, &b, &mut out, 4, 3, 7);
        for (idx, &v) in out.iter().enumerate() {
            let i = 3 + idx / 6;
            let j = idx % 6;
            assert!((v - full.get(i, j)).abs() < 1e-3);
        }
    }
}
