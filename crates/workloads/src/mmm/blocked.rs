//! Cache-blocked matrix multiplication — the tuned single-threaded kernel.
//!
//! The hot loops are written against pre-sliced tile rows with a 4-wide
//! unrolled `c[j] += a_ik * b[j]` update, so the compiler can keep the
//! accumulators in registers and hoist every bounds check out of the
//! innermost loop. The pre-optimization indexed loops are kept verbatim
//! in [`reference`]; because both versions perform exactly one fused
//! update per output element in the same `(ii, kk, jj, i, k)` order, the
//! results are bit-identical (see `tests/differential.rs`).

use super::{check_shapes, Matrix};
use crate::kernel::WorkloadError;

/// The default tile edge, matching the paper's assumed blocking for the
/// MMM compulsory-bandwidth computation (footnote 3).
pub const DEFAULT_BLOCK: usize = 128;

/// Computes `C = A·B` tile-by-tile with an `i, k, j` inner order so the
/// innermost loop streams rows of `B` and `C`, which is what lets the
/// kernel stay compute-bound once a tile fits in cache.
///
/// ```
/// use ucore_workloads::mmm::{blocked, naive, Matrix};
/// let a = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0])?;
/// let b = Matrix::from_slice(2, 2, &[5.0, 6.0, 7.0, 8.0])?;
/// let tuned = blocked::multiply(&a, &b, 64)?;
/// let reference = naive::multiply(&a, &b)?;
/// assert!(tuned.max_abs_diff(&reference) < 1e-4);
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::LengthMismatch`] if the shapes are not
/// conformable, or [`WorkloadError::ZeroSize`] for a zero block size.
pub fn multiply(a: &Matrix, b: &Matrix, block: usize) -> Result<Matrix, WorkloadError> {
    if block == 0 {
        return Err(WorkloadError::ZeroSize { what: "block size" });
    }
    let (m, n) = check_shapes(a, b)?;
    let mut c = Matrix::zeros(m, n);
    multiply_into(a, b, &mut c, block, 0, m);
    Ok(c)
}

/// One tile-row update `c[j] += aik * b[j]`, unrolled 4-wide.
///
/// Each output element receives exactly one fused multiply-add per call,
/// so the result is bit-identical to the scalar loop regardless of how
/// the `j` range is chunked.
#[inline]
fn saxpy_row(c: &mut [f32], b: &[f32], aik: f32) {
    debug_assert_eq!(c.len(), b.len());
    let mut c_quads = c.chunks_exact_mut(4);
    let mut b_quads = b.chunks_exact(4);
    for (cq, bq) in (&mut c_quads).zip(&mut b_quads) {
        cq[0] += aik * bq[0];
        cq[1] += aik * bq[1];
        cq[2] += aik * bq[2];
        cq[3] += aik * bq[3];
    }
    for (cv, bv) in c_quads.into_remainder().iter_mut().zip(b_quads.remainder()) {
        *cv += aik * *bv;
    }
}

/// Multiplies the row range `[row_start, row_end)` of `A` into the same
/// rows of `C`. Shared by the blocked and the parallel kernels.
pub(crate) fn multiply_into(
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    block: usize,
    row_start: usize,
    row_end: usize,
) {
    let n = b.cols();
    let k_dim = a.cols();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();
    for ii in (row_start..row_end).step_by(block) {
        let i_hi = (ii + block).min(row_end);
        for kk in (0..k_dim).step_by(block) {
            let k_hi = (kk + block).min(k_dim);
            for jj in (0..n).step_by(block) {
                let j_hi = (jj + block).min(n);
                for i in ii..i_hi {
                    let a_tile = &a.row(i)[kk..k_hi];
                    let c_tile = &mut c_data[i * n + jj..i * n + j_hi];
                    for (k_off, &aik) in a_tile.iter().enumerate() {
                        // ucore-lint: allow(float-eq): exact-zero sparsity skip; skipping only IEEE ±0.0 terms cannot change the sum
                        if aik == 0.0 {
                            continue;
                        }
                        let k = kk + k_off;
                        let b_tile = &b_data[k * n + jj..k * n + j_hi];
                        saxpy_row(c_tile, b_tile, aik);
                    }
                }
            }
        }
    }
}

/// Shared work driver for parallel callers: like [`multiply`] but writes
/// into a caller-provided output row range represented as a raw slice.
pub(crate) fn multiply_rows_to_slice(
    a: &Matrix,
    b: &Matrix,
    out: &mut [f32],
    block: usize,
    row_start: usize,
    row_end: usize,
) {
    let n = b.cols();
    let k_dim = a.cols();
    debug_assert_eq!(out.len(), (row_end - row_start) * n);
    for kk in (0..k_dim).step_by(block) {
        let k_hi = (kk + block).min(k_dim);
        for i in row_start..row_end {
            let out_base = (i - row_start) * n;
            let out_row = &mut out[out_base..out_base + n];
            let a_tile = &a.row(i)[kk..k_hi];
            for (k_off, &aik) in a_tile.iter().enumerate() {
                // ucore-lint: allow(float-eq): exact-zero sparsity skip; skipping only IEEE ±0.0 terms cannot change the sum
                if aik == 0.0 {
                    continue;
                }
                saxpy_row(out_row, b.row(kk + k_off), aik);
            }
        }
    }
}

/// The pre-optimization blocked loops, kept verbatim as the
/// differential-test oracle for the tuned kernel above.
///
/// Not used on any hot path: the tuned kernel must stay bit-identical to
/// these loops (same blocking, same iteration order, same exact-zero
/// skip), and `tests/differential.rs` proves it.
pub mod reference {
    use super::{check_shapes, Matrix, WorkloadError};

    /// `C = A·B` with the original per-element indexed tile loops.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::LengthMismatch`] if the shapes are not
    /// conformable, or [`WorkloadError::ZeroSize`] for a zero block size.
    pub fn multiply(a: &Matrix, b: &Matrix, block: usize) -> Result<Matrix, WorkloadError> {
        if block == 0 {
            return Err(WorkloadError::ZeroSize { what: "block size" });
        }
        let (m, n) = check_shapes(a, b)?;
        let mut c = Matrix::zeros(m, n);
        let k_dim = a.cols();
        for ii in (0..m).step_by(block) {
            let i_hi = (ii + block).min(m);
            for kk in (0..k_dim).step_by(block) {
                let k_hi = (kk + block).min(k_dim);
                for jj in (0..n).step_by(block) {
                    let j_hi = (jj + block).min(n);
                    for i in ii..i_hi {
                        for k in kk..k_hi {
                            let aik = a.get(i, k);
                            // ucore-lint: allow(float-eq): exact-zero sparsity skip; skipping only IEEE ±0.0 terms cannot change the sum
                            if aik == 0.0 {
                                continue;
                            }
                            let b_row = b.row(k);
                            let c_base = i * n;
                            let c_data = c.as_mut_slice();
                            for j in jj..j_hi {
                                c_data[c_base + j] += aik * b_row[j];
                            }
                        }
                    }
                }
            }
        }
        Ok(c)
    }

    /// The original row-band driver backing the parallel kernel, for
    /// differential tests of [`super::multiply_rows_to_slice`].
    pub fn multiply_rows(
        a: &Matrix,
        b: &Matrix,
        out: &mut [f32],
        block: usize,
        row_start: usize,
        row_end: usize,
    ) {
        let n = b.cols();
        let k_dim = a.cols();
        debug_assert_eq!(out.len(), (row_end - row_start) * n);
        for kk in (0..k_dim).step_by(block) {
            let k_hi = (kk + block).min(k_dim);
            for i in row_start..row_end {
                let out_base = (i - row_start) * n;
                for k in kk..k_hi {
                    let aik = a.get(i, k);
                    // ucore-lint: allow(float-eq): exact-zero sparsity skip; skipping only IEEE ±0.0 terms cannot change the sum
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = b.row(k);
                    for j in 0..n {
                        out[out_base + j] += aik * b_row[j];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::mmm::naive;

    #[test]
    fn agrees_with_naive_on_random_inputs() {
        for &(m, k, n) in &[(5usize, 7usize, 3usize), (16, 16, 16), (33, 17, 9)] {
            let a = random_matrix(m, k, 1);
            let b = random_matrix(k, n, 2);
            let tuned = multiply(&a, &b, 8).unwrap();
            let reference = naive::multiply(&a, &b).unwrap();
            assert!(
                tuned.max_abs_diff(&reference) < 1e-3,
                "({m}, {k}, {n}) diverged"
            );
        }
    }

    #[test]
    fn block_size_larger_than_matrix_is_fine() {
        let a = random_matrix(4, 4, 3);
        let b = random_matrix(4, 4, 4);
        let big = multiply(&a, &b, 1024).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        assert!(big.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn block_size_one_is_fine() {
        let a = random_matrix(6, 5, 5);
        let b = random_matrix(5, 4, 6);
        let one = multiply(&a, &b, 1).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        assert!(one.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn zero_block_rejected() {
        let a = Matrix::identity(2);
        assert!(multiply(&a, &a, 0).is_err());
        assert!(reference::multiply(&a, &a, 0).is_err());
    }

    #[test]
    fn default_block_matches_paper() {
        assert_eq!(DEFAULT_BLOCK, 128);
    }

    #[test]
    fn rows_to_slice_matches_full_product() {
        let a = random_matrix(10, 8, 7);
        let b = random_matrix(8, 6, 8);
        let full = naive::multiply(&a, &b).unwrap();
        let mut out = vec![0.0f32; 4 * 6];
        multiply_rows_to_slice(&a, &b, &mut out, 4, 3, 7);
        for (idx, &v) in out.iter().enumerate() {
            let i = 3 + idx / 6;
            let j = idx % 6;
            assert!((v - full.get(i, j)).abs() < 1e-3);
        }
    }

    #[test]
    fn tuned_is_bit_identical_to_reference() {
        for &(m, k, n, block) in &[
            (5usize, 7usize, 3usize, 2usize),
            (16, 16, 16, 8),
            (33, 17, 9, 4),
            (64, 64, 64, 32),
        ] {
            let a = random_matrix(m, k, 21);
            let b = random_matrix(k, n, 22);
            let tuned = multiply(&a, &b, block).unwrap();
            let oracle = reference::multiply(&a, &b, block).unwrap();
            assert_eq!(tuned, oracle, "({m}, {k}, {n}) block {block}");
        }
    }

    #[test]
    fn sparsity_skip_is_preserved() {
        // A matrix with explicit zeros exercises the `aik == 0.0` skip in
        // both versions; the results must still be bit-identical.
        let mut a = random_matrix(9, 9, 31);
        for i in 0..9 {
            a.set(i, (i * 3) % 9, 0.0);
        }
        let b = random_matrix(9, 9, 32);
        let tuned = multiply(&a, &b, 4).unwrap();
        let oracle = reference::multiply(&a, &b, 4).unwrap();
        assert_eq!(tuned, oracle);
    }
}
