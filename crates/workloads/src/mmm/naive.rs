//! The textbook triple-loop matrix product — the correctness reference.

use super::{check_shapes, Matrix};
use crate::kernel::WorkloadError;

/// Computes `C = A·B` with the classic `i, j, k` loop nest, accumulating
/// in `f64` for a tighter reference against which the tuned kernels are
/// validated.
///
/// ```
/// use ucore_workloads::mmm::{naive, Matrix};
/// let a = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0])?;
/// let b = Matrix::identity(2);
/// let c = naive::multiply(&a, &b)?;
/// assert_eq!(c, a);
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::LengthMismatch`] if `a.cols() != b.rows()`.
pub fn multiply(a: &Matrix, b: &Matrix) -> Result<Matrix, WorkloadError> {
    let (m, n) = check_shapes(a, b)?;
    let k_dim = a.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for k in 0..k_dim {
                acc += f64::from(a.get(i, k)) * f64::from(b.get(k, j));
            }
            c.set(i, j, acc as f32);
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_slice(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = multiply(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = multiply(&a, &Matrix::identity(3)).unwrap();
        assert_eq!(c, a);
        let c2 = multiply(&Matrix::identity(2), &a).unwrap();
        assert_eq!(c2, a);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::from_slice(1, 3, &[1.0, 2.0, 3.0]).unwrap();
        let b = Matrix::from_slice(3, 1, &[4.0, 5.0, 6.0]).unwrap();
        let c = multiply(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[32.0]);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(multiply(&a, &b).is_err());
    }

    #[test]
    fn zero_matrix_annihilates() {
        let a = Matrix::zeros(3, 3);
        let b = Matrix::identity(3);
        let c = multiply(&a, &b).unwrap();
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
