//! Multithreaded blocked matrix multiplication.
//!
//! Rows of `C` are divided into contiguous bands, one per worker thread
//! (crossbeam scoped threads, so no `'static` bounds on the inputs). This
//! is the closest analog to the throughput-driven, multicore-tuned MKL
//! baseline the paper measures on the Core i7.

use super::blocked::multiply_rows_to_slice;
use super::{check_shapes, Matrix};
use crate::kernel::WorkloadError;

/// Computes `C = A·B` with the blocked kernel on `threads` workers.
///
/// ```
/// use ucore_workloads::mmm::{naive, parallel, Matrix};
/// use ucore_workloads::gen::random_matrix;
/// let a = random_matrix(32, 32, 1);
/// let b = random_matrix(32, 32, 2);
/// let par = parallel::multiply(&a, &b, 16, 4)?;
/// let reference = naive::multiply(&a, &b)?;
/// assert!(par.max_abs_diff(&reference) < 1e-3);
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::LengthMismatch`] for non-conformable shapes,
/// [`WorkloadError::ZeroSize`] for a zero block size or thread count, and
/// [`WorkloadError::WorkerPanicked`] if a worker thread dies.
pub fn multiply(
    a: &Matrix,
    b: &Matrix,
    block: usize,
    threads: usize,
) -> Result<Matrix, WorkloadError> {
    if block == 0 {
        return Err(WorkloadError::ZeroSize { what: "block size" });
    }
    if threads == 0 {
        return Err(WorkloadError::ZeroSize { what: "thread count" });
    }
    let (m, n) = check_shapes(a, b)?;
    let mut c = Matrix::zeros(m, n);

    // Band height: at least one row, spreading m rows over the workers.
    let band = m.div_ceil(threads);
    let bands: Vec<(usize, &mut [f32])> = c
        .as_mut_slice()
        .chunks_mut(band * n)
        .enumerate()
        .map(|(i, chunk)| (i * band, chunk))
        .collect();

    crossbeam::scope(|scope| {
        for (row_start, chunk) in bands {
            let row_end = row_start + chunk.len() / n;
            scope.spawn(move |_| {
                multiply_rows_to_slice(a, b, chunk, block, row_start, row_end);
            });
        }
    })
    .map_err(|_| WorkloadError::WorkerPanicked { kernel: "parallel MMM" })?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::mmm::naive;

    #[test]
    fn agrees_with_naive_across_thread_counts() {
        let a = random_matrix(37, 23, 11);
        let b = random_matrix(23, 29, 12);
        let reference = naive::multiply(&a, &b).unwrap();
        for threads in [1usize, 2, 3, 8, 64] {
            let par = multiply(&a, &b, 8, threads).unwrap();
            assert!(
                par.max_abs_diff(&reference) < 1e-3,
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let a = random_matrix(3, 3, 13);
        let b = random_matrix(3, 3, 14);
        let par = multiply(&a, &b, 4, 16).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        assert!(par.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn zero_parameters_rejected() {
        let a = Matrix::identity(2);
        assert!(multiply(&a, &a, 0, 2).is_err());
        assert!(multiply(&a, &a, 2, 0).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(multiply(&a, &b, 8, 2).is_err());
    }
}
