//! Strassen's sub-cubic matrix multiplication.
//!
//! A tuned MMM library (MKL-class) carries more than one algorithm; this
//! variant trades the eighth recursive multiplication for extra
//! additions (`O(n^2.807)`), recursing on power-of-two-padded operands
//! and falling back to the blocked kernel below a crossover size. Beyond
//! completeness, it exercises the arithmetic-intensity machinery with a
//! kernel whose FLOP count *differs* from the `2N³` convention — a
//! reminder that the model's "operations" are a unit of account, not a
//! law of nature.

use super::blocked;
use super::{check_shapes, Matrix};
use crate::kernel::WorkloadError;

/// Below this dimension, recursion stops and the blocked kernel runs.
pub const CROSSOVER: usize = 64;

/// Computes `C = A·B` with Strassen's algorithm.
///
/// ```
/// use ucore_workloads::mmm::{naive, strassen, Matrix};
/// use ucore_workloads::gen::random_matrix;
/// let a = random_matrix(48, 48, 1);
/// let b = random_matrix(48, 48, 2);
/// let fast = strassen::multiply(&a, &b)?;
/// let reference = naive::multiply(&a, &b)?;
/// assert!(fast.max_abs_diff(&reference) < 1e-2);
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::LengthMismatch`] for non-conformable shapes.
pub fn multiply(a: &Matrix, b: &Matrix) -> Result<Matrix, WorkloadError> {
    let (m, n) = check_shapes(a, b)?;
    let k = a.cols();
    // Pad to a square power of two that fits all three dimensions.
    let dim = m.max(k).max(n).next_power_of_two().max(1);
    let pa = pad(a, dim);
    let pb = pad(b, dim);
    let pc = strassen_square(&pa, &pb, dim);
    Ok(crop(&pc, m, n))
}

fn pad(src: &Matrix, dim: usize) -> Matrix {
    let mut out = Matrix::zeros(dim, dim);
    for r in 0..src.rows() {
        for c in 0..src.cols() {
            out.set(r, c, src.get(r, c));
        }
    }
    out
}

fn crop(src: &Matrix, rows: usize, cols: usize) -> Matrix {
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            out.set(r, c, src.get(r, c));
        }
    }
    out
}

fn add(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), a.cols());
    for (o, (&x, &y)) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice().iter().zip(b.as_slice()))
    {
        *o = x + y;
    }
    out
}

fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), a.cols());
    for (o, (&x, &y)) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice().iter().zip(b.as_slice()))
    {
        *o = x - y;
    }
    out
}

fn quadrant(src: &Matrix, row0: usize, col0: usize, half: usize) -> Matrix {
    let mut out = Matrix::zeros(half, half);
    for r in 0..half {
        for c in 0..half {
            out.set(r, c, src.get(row0 + r, col0 + c));
        }
    }
    out
}

fn strassen_square(a: &Matrix, b: &Matrix, dim: usize) -> Matrix {
    if dim <= CROSSOVER {
        // The recursion only reaches this leaf with conformable square
        // operands, so the blocked inner loop runs directly, bypassing
        // `blocked::multiply`'s fallible shape checks.
        let mut out = Matrix::zeros(dim, dim);
        blocked::multiply_rows_to_slice(a, b, out.as_mut_slice(), 32, 0, dim);
        return out;
    }
    let h = dim / 2;
    let a11 = quadrant(a, 0, 0, h);
    let a12 = quadrant(a, 0, h, h);
    let a21 = quadrant(a, h, 0, h);
    let a22 = quadrant(a, h, h, h);
    let b11 = quadrant(b, 0, 0, h);
    let b12 = quadrant(b, 0, h, h);
    let b21 = quadrant(b, h, 0, h);
    let b22 = quadrant(b, h, h, h);

    let m1 = strassen_square(&add(&a11, &a22), &add(&b11, &b22), h);
    let m2 = strassen_square(&add(&a21, &a22), &b11, h);
    let m3 = strassen_square(&a11, &sub(&b12, &b22), h);
    let m4 = strassen_square(&a22, &sub(&b21, &b11), h);
    let m5 = strassen_square(&add(&a11, &a12), &b22, h);
    let m6 = strassen_square(&sub(&a21, &a11), &add(&b11, &b12), h);
    let m7 = strassen_square(&sub(&a12, &a22), &add(&b21, &b22), h);

    let c11 = add(&sub(&add(&m1, &m4), &m5), &m7);
    let c12 = add(&m3, &m5);
    let c21 = add(&m2, &m4);
    let c22 = add(&add(&sub(&m1, &m2), &m3), &m6);

    let mut out = Matrix::zeros(dim, dim);
    for r in 0..h {
        for c in 0..h {
            out.set(r, c, c11.get(r, c));
            out.set(r, c + h, c12.get(r, c));
            out.set(r + h, c, c21.get(r, c));
            out.set(r + h, c + h, c22.get(r, c));
        }
    }
    out
}

/// Strassen's multiplication count for a padded `n×n` product (`n` a
/// power of two above the crossover): `7^levels` base multiplies of
/// crossover-size blocks, versus `8^levels` for the classical recursion.
pub fn base_multiplications(n: usize) -> u64 {
    let n = n.next_power_of_two();
    let mut levels = 0u32;
    let mut dim = n;
    while dim > CROSSOVER {
        levels += 1;
        dim /= 2;
    }
    7u64.pow(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::mmm::naive;

    #[test]
    fn matches_naive_below_and_above_crossover() {
        for &n in &[4usize, 32, 65, 96, 130] {
            let a = random_matrix(n, n, n as u64);
            let b = random_matrix(n, n, n as u64 + 1);
            let fast = multiply(&a, &b).unwrap();
            let reference = naive::multiply(&a, &b).unwrap();
            // Strassen's extra additions cost some f32 accuracy; scale
            // tolerance with the recursion depth.
            assert!(
                fast.max_abs_diff(&reference) < 1e-3 * (n as f32),
                "n = {n}"
            );
        }
    }

    #[test]
    fn handles_rectangular_shapes_via_padding() {
        let a = random_matrix(30, 70, 1);
        let b = random_matrix(70, 50, 2);
        let fast = multiply(&a, &b).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        assert_eq!(fast.rows(), 30);
        assert_eq!(fast.cols(), 50);
        assert!(fast.max_abs_diff(&reference) < 0.1);
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 3);
        assert!(multiply(&a, &b).is_err());
    }

    #[test]
    fn identity_round_trip() {
        let a = random_matrix(100, 100, 9);
        let c = multiply(&a, &Matrix::identity(100)).unwrap();
        assert!(c.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn base_multiplication_count_shrinks_vs_classical() {
        // Two levels above the crossover: 49 vs 64 block products.
        assert_eq!(base_multiplications(256), 49);
        assert_eq!(base_multiplications(128), 7);
        assert_eq!(base_multiplications(64), 1);
        assert_eq!(base_multiplications(CROSSOVER / 2), 1);
    }
}
