//! # ucore-workloads — the paper's three kernels, executable
//!
//! The model is calibrated against three tuned, compute-bound,
//! throughput-driven kernels (Table 3):
//!
//! * **Dense matrix-matrix multiplication (MMM)** — high arithmetic
//!   intensity, simple memory behavior;
//! * **Fast Fourier Transform (FFT)** — complex dataflow and memory
//!   requirements;
//! * **Black-Scholes (BS)** — a rich mixture of arithmetic operators.
//!
//! Where the paper linked against MKL / CUBLAS / CUFFT / Spiral / PARSEC,
//! this crate provides real Rust implementations — naive references,
//! cache-blocked and multithreaded variants — so the FLOP counts, byte
//! counts and arithmetic-intensity formulas the model depends on
//! (footnotes 2 and 3 of the paper) are backed by runnable code and
//! verified against executions, not just stated. All kernels use
//! single-precision IEEE floating point, as in the paper.
//!
//! ```
//! use ucore_workloads::{Workload, WorkloadKind};
//!
//! let fft = Workload::fft(1024)?;
//! // Footnote 2: AI(FFT) = 0.3125 * log2 N flops/byte.
//! assert!((fft.arithmetic_intensity() - 3.125).abs() < 1e-12);
//! # Ok::<(), ucore_workloads::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom: model code returns typed errors; `unwrap`/`expect`
// stay legal in `#[cfg(test)]` code only (ucore-lint enforces the same
// contract at the token level).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod blackscholes;
pub mod fft;
pub mod gen;
pub mod intensity;
pub mod kernel;
pub mod mmm;
pub mod ops;
pub mod throughput;

pub use kernel::{PerfUnit, Workload, WorkloadError, WorkloadKind};
pub use throughput::{measure_throughput, ThroughputSample};
