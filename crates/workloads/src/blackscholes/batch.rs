//! Throughput-driven batch pricing.
//!
//! The paper's kernels are "throughput-driven, i.e., many independent
//! inputs are being computed": this module prices whole portfolios,
//! sequentially or with a crossbeam-scoped thread pool, mirroring the
//! PARSEC workload shape.

use super::{OptionParams, OptionPrice};
use crate::kernel::WorkloadError;

/// Prices every option in `portfolio` sequentially.
pub fn price_all(portfolio: &[OptionParams]) -> Vec<OptionPrice> {
    portfolio.iter().map(OptionParams::price).collect()
}

/// Prices every option into a caller-provided buffer — the
/// allocation-free batch entry point for throughput loops that reuse
/// their output storage across iterations.
///
/// Writes `out[i] = portfolio[i].price()` for every `i`; the result is
/// bit-identical to [`price_all`] (both call the same scalar pricer in
/// the same order).
///
/// ```
/// use ucore_workloads::blackscholes::{batch, OptionParams, OptionPrice};
/// let portfolio = vec![OptionParams::new(105.0, 100.0, 0.05, 0.2, 1.0)?; 8];
/// let mut out = vec![OptionPrice { call: 0.0, put: 0.0 }; 8];
/// batch::price_into(&portfolio, &mut out)?;
/// assert_eq!(out, batch::price_all(&portfolio));
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::LengthMismatch`] unless
/// `out.len() == portfolio.len()`.
pub fn price_into(
    portfolio: &[OptionParams],
    out: &mut [OptionPrice],
) -> Result<(), WorkloadError> {
    if portfolio.len() != out.len() {
        return Err(WorkloadError::LengthMismatch {
            expected: portfolio.len(),
            actual: out.len(),
        });
    }
    for (params, price) in portfolio.iter().zip(out.iter_mut()) {
        *price = params.price();
    }
    Ok(())
}

/// Prices every option with `threads` workers, preserving order.
///
/// ```
/// use ucore_workloads::blackscholes::{batch, OptionParams};
/// let portfolio: Vec<OptionParams> = (1..=100)
///     .map(|i| OptionParams::new(100.0 + i as f32, 100.0, 0.05, 0.2, 1.0))
///     .collect::<Result<_, _>>()?;
/// let serial = batch::price_all(&portfolio);
/// let parallel = batch::price_all_parallel(&portfolio, 4)?;
/// assert_eq!(serial, parallel);
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::ZeroSize`] for a zero thread count and
/// [`WorkloadError::WorkerPanicked`] if a pricing worker dies.
pub fn price_all_parallel(
    portfolio: &[OptionParams],
    threads: usize,
) -> Result<Vec<OptionPrice>, WorkloadError> {
    if threads == 0 {
        return Err(WorkloadError::ZeroSize { what: "thread count" });
    }
    if portfolio.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = vec![OptionPrice { call: 0.0, put: 0.0 }; portfolio.len()];
    let chunk = portfolio.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for (inputs, results) in portfolio.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (params, price) in inputs.iter().zip(results.iter_mut()) {
                    *price = params.price();
                }
            });
        }
    })
    .map_err(|_| WorkloadError::WorkerPanicked { kernel: "Black-Scholes batch pricing" })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_portfolio;

    #[test]
    fn parallel_matches_serial() {
        let portfolio = random_portfolio(1_000, 17);
        let serial = price_all(&portfolio);
        for threads in [1usize, 2, 7, 32] {
            let parallel = price_all_parallel(&portfolio, threads).unwrap();
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn empty_portfolio() {
        assert!(price_all(&[]).is_empty());
        assert!(price_all_parallel(&[], 4).unwrap().is_empty());
        assert!(price_into(&[], &mut []).is_ok());
    }

    #[test]
    fn price_into_matches_price_all_bit_for_bit() {
        let portfolio = random_portfolio(257, 19);
        let mut out = vec![OptionPrice { call: 0.0, put: 0.0 }; portfolio.len()];
        price_into(&portfolio, &mut out).unwrap();
        assert_eq!(out, price_all(&portfolio));
    }

    #[test]
    fn price_into_rejects_length_mismatch() {
        let portfolio = random_portfolio(4, 20);
        let mut out = vec![OptionPrice { call: 0.0, put: 0.0 }; 3];
        assert!(price_into(&portfolio, &mut out).is_err());
    }

    #[test]
    fn zero_threads_rejected() {
        let portfolio = random_portfolio(10, 1);
        assert!(price_all_parallel(&portfolio, 0).is_err());
    }

    #[test]
    fn more_threads_than_options() {
        let portfolio = random_portfolio(3, 2);
        let parallel = price_all_parallel(&portfolio, 64).unwrap();
        assert_eq!(parallel, price_all(&portfolio));
    }

    #[test]
    fn all_prices_are_non_negative() {
        let portfolio = random_portfolio(500, 23);
        for price in price_all(&portfolio) {
            assert!(price.call >= 0.0);
            assert!(price.put >= 0.0);
        }
    }
}
