//! The cumulative normal distribution.
//!
//! PARSEC's `blackscholes` uses the Abramowitz & Stegun 26.2.17
//! five-coefficient polynomial approximation of the standard normal CDF
//! (absolute error < 7.5e-8); the same approximation is used here so the
//! kernel matches the measured workload's arithmetic mix.

/// The standard normal probability density `φ(x)`.
pub fn pdf(x: f64) -> f64 {
    const INV_SQRT_TAU: f64 = 0.398_942_280_401_432_7; // 1/sqrt(2π)
    INV_SQRT_TAU * (-0.5 * x * x).exp()
}

/// The cumulative standard normal distribution `Φ(x)` via the
/// Abramowitz & Stegun polynomial.
pub fn cnd(x: f64) -> f64 {
    const B1: f64 = 0.319_381_530;
    const B2: f64 = -0.356_563_782;
    const B3: f64 = 1.781_477_937;
    const B4: f64 = -1.821_255_978;
    const B5: f64 = 1.330_274_429;
    const P: f64 = 0.231_641_9;

    let abs_x = x.abs();
    let t = 1.0 / (1.0 + P * abs_x);
    let poly = t * (B1 + t * (B2 + t * (B3 + t * (B4 + t * B5))));
    let tail = pdf(abs_x) * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.5, 4.0] {
            assert!((cnd(x) + cnd(-x) - 1.0).abs() < 1e-7, "x = {x}");
        }
    }

    #[test]
    fn known_values() {
        // Standard normal table values.
        assert!((cnd(0.0) - 0.5).abs() < 1e-7);
        assert!((cnd(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((cnd(1.96) - 0.975_002_1).abs() < 1e-6);
        assert!((cnd(-1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((cnd(3.0) - 0.998_650_1).abs() < 1e-6);
    }

    #[test]
    fn tails_saturate() {
        assert!(cnd(8.0) > 1.0 - 1e-12);
        assert!(cnd(-8.0) < 1e-12);
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = cnd(-5.0);
        let mut x = -5.0;
        while x <= 5.0 {
            let cur = cnd(x);
            assert!(cur + 1e-9 >= prev, "not monotone at {x}");
            prev = cur;
            x += 0.01;
        }
    }

    #[test]
    fn derivative_matches_pdf() {
        // Centered difference of the CDF approximates the density.
        for &x in &[-2.0, -0.5, 0.0, 0.7, 1.9] {
            let h = 1e-5;
            let numeric = (cnd(x + h) - cnd(x - h)) / (2.0 * h);
            assert!((numeric - pdf(x)).abs() < 1e-4, "x = {x}");
        }
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((pdf(0.0) - 0.398_942_3).abs() < 1e-6);
        assert!((pdf(1.5) - pdf(-1.5)).abs() < 1e-15);
    }
}
