//! Black-Scholes European option pricing.
//!
//! The paper uses PARSEC's `blackscholes` (CPU, SSE-tuned) and Nvidia's
//! CUDA reference. This module implements the same closed-form pricer:
//! the cumulative normal distribution via the Abramowitz–Stegun
//! polynomial (the approximation PARSEC uses), the call/put formulas, and
//! a throughput-driven batch evaluator with an optional thread pool.

pub mod batch;
pub mod math;
pub mod reference;

use crate::kernel::WorkloadError;
use serde::{Deserialize, Serialize};

/// Approximate floating-point operations per option pricing in this
/// pipeline (both legs), used as the paper-style operation count when an
/// "op" must be converted to FLOPs. Counted from the pricing pipeline:
/// d1/d2 (1 log, 1 sqrt, ~10 mul/add/div), two CND evaluations
/// (~17 each), discounting and the two combination steps (~10).
pub const FLOPS_PER_OPTION: f64 = 55.0;

/// One option-pricing problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptionParams {
    /// Current underlying price `S`.
    pub spot: f32,
    /// Strike price `K`.
    pub strike: f32,
    /// Risk-free rate `r` (annualized, continuous compounding).
    pub rate: f32,
    /// Volatility `σ` (annualized).
    pub volatility: f32,
    /// Time to expiry in years `T`.
    pub time: f32,
}

/// The price of both legs for one option.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptionPrice {
    /// European call price.
    pub call: f32,
    /// European put price.
    pub put: f32,
}

impl OptionParams {
    /// Creates an option after validating positivity of `S`, `K`, `σ`,
    /// `T` (rate may be zero or negative).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroSize`] naming the offending
    /// parameter.
    pub fn new(
        spot: f32,
        strike: f32,
        rate: f32,
        volatility: f32,
        time: f32,
    ) -> Result<Self, WorkloadError> {
        fn check(what: &'static str, v: f32) -> Result<(), WorkloadError> {
            if !(v.is_finite() && v > 0.0) {
                return Err(WorkloadError::ZeroSize { what });
            }
            Ok(())
        }
        check("spot", spot)?;
        check("strike", strike)?;
        check("volatility", volatility)?;
        check("time to expiry", time)?;
        if !rate.is_finite() {
            return Err(WorkloadError::ZeroSize { what: "rate" });
        }
        Ok(OptionParams { spot, strike, rate, volatility, time })
    }

    /// Prices both legs with the closed-form Black-Scholes formulas.
    pub fn price(&self) -> OptionPrice {
        let s = f64::from(self.spot);
        let k = f64::from(self.strike);
        let r = f64::from(self.rate);
        let v = f64::from(self.volatility);
        let t = f64::from(self.time);

        let sqrt_t = t.sqrt();
        let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
        let d2 = d1 - v * sqrt_t;
        let discount = (-r * t).exp();

        let call = s * math::cnd(d1) - k * discount * math::cnd(d2);
        let put = k * discount * math::cnd(-d2) - s * math::cnd(-d1);
        OptionPrice { call: call as f32, put: put as f32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(spot: f32, strike: f32, rate: f32, vol: f32, time: f32) -> OptionParams {
        OptionParams::new(spot, strike, rate, vol, time).unwrap()
    }

    #[test]
    fn hull_textbook_example() {
        // Hull, "Options, Futures and Other Derivatives": S=42, K=40,
        // r=10%, sigma=20%, T=0.5 -> call 4.76, put 0.81.
        let p = opt(42.0, 40.0, 0.10, 0.20, 0.5).price();
        assert!((p.call - 4.76).abs() < 0.01, "call {}", p.call);
        assert!((p.put - 0.81).abs() < 0.01, "put {}", p.put);
    }

    #[test]
    fn at_the_money_zero_rate_symmetry() {
        // With r = 0 and S = K, call and put are equal.
        let p = opt(100.0, 100.0, 0.0, 0.3, 1.0).price();
        assert!((p.call - p.put).abs() < 1e-4);
        assert!(p.call > 0.0);
    }

    #[test]
    fn put_call_parity() {
        // C - P = S - K e^{-rT}.
        for (s, k, r, v, t) in [
            (100.0, 90.0, 0.05, 0.25, 0.75),
            (80.0, 120.0, 0.02, 0.4, 2.0),
            (55.0, 55.0, 0.08, 0.15, 0.25),
        ] {
            let p = opt(s, k, r, v, t).price();
            let parity = s - k * (-r * t).exp();
            assert!(
                (p.call - p.put - parity).abs() < 1e-3,
                "parity violated for S={s}, K={k}"
            );
        }
    }

    #[test]
    fn deep_in_the_money_call_approaches_intrinsic() {
        let p = opt(1000.0, 10.0, 0.05, 0.2, 0.5).price();
        let intrinsic = 1000.0 - 10.0 * (-0.05f32 * 0.5).exp();
        assert!((p.call - intrinsic).abs() / intrinsic < 1e-4);
        assert!(p.put < 1e-3);
    }

    #[test]
    fn longer_expiry_raises_option_value() {
        let short = opt(100.0, 100.0, 0.05, 0.2, 0.25).price();
        let long = opt(100.0, 100.0, 0.05, 0.2, 2.0).price();
        assert!(long.call > short.call);
    }

    #[test]
    fn higher_volatility_raises_option_value() {
        let calm = opt(100.0, 100.0, 0.05, 0.1, 1.0).price();
        let wild = opt(100.0, 100.0, 0.05, 0.5, 1.0).price();
        assert!(wild.call > calm.call);
        assert!(wild.put > calm.put);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(OptionParams::new(0.0, 100.0, 0.05, 0.2, 1.0).is_err());
        assert!(OptionParams::new(100.0, -1.0, 0.05, 0.2, 1.0).is_err());
        assert!(OptionParams::new(100.0, 100.0, 0.05, 0.0, 1.0).is_err());
        assert!(OptionParams::new(100.0, 100.0, 0.05, 0.2, 0.0).is_err());
        assert!(OptionParams::new(100.0, 100.0, f32::NAN, 0.2, 1.0).is_err());
        // Negative rates are legal.
        assert!(OptionParams::new(100.0, 100.0, -0.01, 0.2, 1.0).is_ok());
    }
}
