//! The reference scalar pricing pipeline, kept as a differential oracle.
//!
//! [`price`] is the Black-Scholes pipeline written out step by step in
//! the exact order [`super::OptionParams::price`] is required to follow.
//! The tolerance policy for this kernel is **bit-for-bit**: any future
//! vectorization or refactoring of the production pricer must keep every
//! intermediate f64 operation in this order, and `tests/differential.rs`
//! enforces it on random portfolios.

use super::{math, OptionParams, OptionPrice};

/// Prices both legs with the canonical operation order.
pub fn price(params: &OptionParams) -> OptionPrice {
    let s = f64::from(params.spot);
    let k = f64::from(params.strike);
    let r = f64::from(params.rate);
    let v = f64::from(params.volatility);
    let t = f64::from(params.time);

    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let discount = (-r * t).exp();

    let call = s * math::cnd(d1) - k * discount * math::cnd(d2);
    let put = k * discount * math::cnd(-d2) - s * math::cnd(-d1);
    OptionPrice { call: call as f32, put: put as f32 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_portfolio;

    #[test]
    fn reference_matches_production_pricer_bit_for_bit() {
        for params in random_portfolio(512, 41) {
            assert_eq!(price(&params), params.price());
        }
    }
}
