//! Closed-form arithmetic-intensity formulas (footnotes 2 and 3).
//!
//! These free functions duplicate what [`crate::Workload`] computes from
//! first principles, in the exact symbolic form the paper quotes; tests
//! assert the two agree, which guards both against transcription errors.

/// FFT arithmetic intensity in FLOPs per byte for a 32-bit, `n`-point
/// transform: `5N log2 N / 16N = 0.3125 · log2 N` (footnote 2).
pub fn fft_flops_per_byte(n: usize) -> f64 {
    0.3125 * (n as f64).log2()
}

/// MMM arithmetic intensity in FLOPs per byte for 32-bit inputs blocked
/// at `n`: `2N³ / (2·4N²) = N/4` (footnote 3).
pub fn mmm_flops_per_byte(n: usize) -> f64 {
    n as f64 / 4.0
}

/// Black-Scholes compulsory traffic per option, in bytes (Section 6).
pub fn bs_bytes_per_option() -> f64 {
    crate::kernel::BS_BYTES_PER_OPTION
}

/// FFT-1024 compulsory bandwidth in bytes per FLOP, the number the paper
/// quotes as `0.32 bytes/flop`.
pub fn fft_1024_bytes_per_flop() -> f64 {
    1.0 / fft_flops_per_byte(1024)
}

/// MMM compulsory bandwidth at the paper's blocking (`N = 128`), quoted
/// as `0.0313 bytes/flop`.
pub fn mmm_blocked_bytes_per_flop() -> f64 {
    1.0 / mmm_flops_per_byte(crate::kernel::MMM_PAPER_BLOCK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn formulas_agree_with_workload_model() {
        for &n in &[16usize, 64, 1024, 16384] {
            let w = Workload::fft(n).unwrap();
            assert!((w.arithmetic_intensity() - fft_flops_per_byte(n)).abs() < 1e-12);
        }
        for &n in &[32usize, 128, 2048] {
            let w = Workload::mmm(n).unwrap();
            assert!((w.arithmetic_intensity() - mmm_flops_per_byte(n)).abs() < 1e-12);
        }
        assert_eq!(
            Workload::black_scholes().compulsory_bytes_per_unit(),
            bs_bytes_per_option()
        );
    }

    #[test]
    fn paper_quoted_values() {
        assert!((fft_1024_bytes_per_flop() - 0.32).abs() < 0.001);
        assert!((mmm_blocked_bytes_per_flop() - 0.0313).abs() < 0.0001);
    }

    #[test]
    fn intensity_grows_with_size() {
        assert!(fft_flops_per_byte(2048) > fft_flops_per_byte(1024));
        assert!(mmm_flops_per_byte(256) > mmm_flops_per_byte(128));
    }

    #[test]
    fn asic_mmm_blocking_supports_bandwidth_exemption() {
        // Section 6 exempts the ASIC MMM core from the bandwidth bound
        // because its 40 nm design blocks at N >= 2048: intensity 512
        // flops/byte, 16x the paper's default blocking.
        let default_ai = mmm_flops_per_byte(128);
        let asic_ai = mmm_flops_per_byte(2048);
        assert!((asic_ai / default_ai - 16.0).abs() < 1e-12);
        assert!(asic_ai >= 512.0);
    }
}
