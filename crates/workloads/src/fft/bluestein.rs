//! Bluestein's chirp-z algorithm: FFTs of *arbitrary* length.
//!
//! The paper's kernels only need power-of-two transforms, but a tuned
//! FFT library (Spiral, CUFFT) handles arbitrary sizes; this extension
//! closes that gap. An `n`-point DFT is re-expressed as a linear
//! convolution with a chirp sequence and evaluated with a power-of-two
//! FFT of length `m ≥ 2n − 1`:
//!
//! `X_k = c_k · (a ⊛ b)_k`, where `a_j = x_j·c_j`,
//! `c_j = e^(−iπ j²/n)`, and `b_j = conj(c_j)`.

use super::radix2::Radix2Fft;
use super::{Complex, Direction};
use crate::kernel::WorkloadError;
use std::f64::consts::PI;

/// A planned arbitrary-length FFT.
#[derive(Debug, Clone)]
pub struct BluesteinFft {
    size: usize,
    m: usize,
    inner: Radix2Fft,
    chirp: Vec<Complex>,      // c_j = e^(-i pi j^2 / n)
    kernel_fft: Vec<Complex>, // FFT of the padded b sequence
}

impl BluesteinFft {
    /// Plans an `n`-point transform for any `n ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroSize`] for `n = 0`.
    pub fn new(size: usize) -> Result<Self, WorkloadError> {
        if size == 0 {
            return Err(WorkloadError::ZeroSize { what: "transform size" });
        }
        let m = (2 * size - 1).next_power_of_two().max(2);
        let inner = Radix2Fft::new(m)?;

        // Chirp with the exponent reduced mod 2n for numeric stability.
        let chirp: Vec<Complex> = (0..size)
            .map(|j| {
                let sq = (j as u128 * j as u128) % (2 * size as u128);
                Complex::from_angle(-PI * sq as f64 / size as f64)
            })
            .collect();

        // b padded to m with wrap-around symmetry: b'[0] = b[0],
        // b'[j] = b'[m - j] = conj(c_j).
        let mut b = vec![Complex::ZERO; m];
        b[0] = chirp[0].conj();
        for j in 1..size {
            let v = chirp[j].conj();
            b[j] = v;
            b[m - j] = v;
        }
        inner.forward(&mut b);

        Ok(BluesteinFft { size, m, inner, chirp, kernel_fft: b })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The internal power-of-two convolution length.
    pub fn convolution_size(&self) -> usize {
        self.m
    }

    /// Transforms `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::LengthMismatch`] unless
    /// `data.len() == size`.
    pub fn transform(
        &self,
        data: &mut [Complex],
        direction: Direction,
    ) -> Result<(), WorkloadError> {
        if data.len() != self.size {
            return Err(WorkloadError::LengthMismatch {
                expected: self.size,
                actual: data.len(),
            });
        }
        match direction {
            Direction::Forward => {
                self.forward(data);
            }
            Direction::Inverse => {
                for v in data.iter_mut() {
                    *v = v.conj();
                }
                self.forward(data);
                let scale = 1.0 / self.size as f32;
                for v in data.iter_mut() {
                    *v = v.conj().scale(scale);
                }
            }
        }
        Ok(())
    }

    fn forward(&self, data: &mut [Complex]) {
        // a = x .* chirp, zero-padded to m.
        let mut a = vec![Complex::ZERO; self.m];
        for (j, x) in data.iter().enumerate() {
            a[j] = *x * self.chirp[j];
        }
        self.inner.forward(&mut a);
        // Pointwise multiply with the kernel's spectrum; inverse via the
        // conjugate trick.
        for (v, k) in a.iter_mut().zip(&self.kernel_fft) {
            *v = (*v * *k).conj();
        }
        self.inner.forward(&mut a);
        let scale = 1.0 / self.m as f32;
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k].conj().scale(scale) * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft;
    use crate::gen::random_signal;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f32) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "bin {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_reference_on_awkward_sizes() {
        for &n in &[1usize, 2, 3, 5, 7, 11, 12, 60, 100, 127, 1000] {
            let signal = random_signal(n, n as u64);
            let mut fast = signal.clone();
            BluesteinFft::new(n)
                .unwrap()
                .transform(&mut fast, Direction::Forward)
                .unwrap();
            let slow = dft::reference(&signal, Direction::Forward);
            assert_close(&fast, &slow, 2e-2 * (n as f32).sqrt().max(1.0));
        }
    }

    #[test]
    fn agrees_with_radix2_on_powers_of_two() {
        for &n in &[8usize, 64, 256] {
            let signal = random_signal(n, 3);
            let mut blue = signal.clone();
            BluesteinFft::new(n)
                .unwrap()
                .transform(&mut blue, Direction::Forward)
                .unwrap();
            let mut r2 = signal;
            Radix2Fft::new(n).unwrap().forward(&mut r2);
            assert_close(&blue, &r2, 1e-2 * (n as f32).sqrt());
        }
    }

    #[test]
    fn inverse_round_trips() {
        for &n in &[5usize, 12, 97, 360] {
            let signal = random_signal(n, 9);
            let plan = BluesteinFft::new(n).unwrap();
            let mut data = signal.clone();
            plan.transform(&mut data, Direction::Forward).unwrap();
            plan.transform(&mut data, Direction::Inverse).unwrap();
            assert_close(&data, &signal, 5e-3);
        }
    }

    #[test]
    fn one_point_transform_is_identity() {
        let plan = BluesteinFft::new(1).unwrap();
        let mut data = vec![Complex::new(3.0, -2.0)];
        plan.transform(&mut data, Direction::Forward).unwrap();
        assert!((data[0] - Complex::new(3.0, -2.0)).abs() < 1e-6);
    }

    #[test]
    fn convolution_size_is_padded_power_of_two() {
        let plan = BluesteinFft::new(100).unwrap();
        assert!(plan.convolution_size().is_power_of_two());
        assert!(plan.convolution_size() >= 199);
        assert_eq!(plan.size(), 100);
    }

    #[test]
    fn rejects_zero_and_wrong_lengths() {
        assert!(BluesteinFft::new(0).is_err());
        let plan = BluesteinFft::new(5).unwrap();
        let mut short = vec![Complex::ZERO; 4];
        assert!(plan.transform(&mut short, Direction::Forward).is_err());
    }
}
