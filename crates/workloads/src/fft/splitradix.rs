//! Recursive split-radix FFT.
//!
//! The split-radix decomposition — even samples through a half-size
//! transform, odd samples through two quarter-size transforms — achieves
//! the lowest classical operation count (`4N·log2 N − 6N + 8` real
//! FLOPs), which is why Spiral-generated kernels favor it. Including it
//! alongside radix-2/4 lets the throughput harness compare all three
//! decompositions of the same transform.

use super::{Complex, Direction};
use crate::kernel::WorkloadError;
use std::f64::consts::TAU;

/// A planned split-radix FFT of a power-of-two size.
#[derive(Debug, Clone)]
pub struct SplitRadixFft {
    size: usize,
    // Full twiddle table W_N^k for k in 0..N (simple and uniform across
    // the recursion levels; each level strides into it).
    twiddles: Vec<Complex>,
}

impl SplitRadixFft {
    /// Plans a transform of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NotPowerOfTwo`] unless `size` is a power
    /// of two and at least 2.
    pub fn new(size: usize) -> Result<Self, WorkloadError> {
        if size < 2 || !size.is_power_of_two() {
            return Err(WorkloadError::NotPowerOfTwo { size });
        }
        let twiddles = (0..size)
            .map(|k| Complex::from_angle(-TAU * k as f64 / size as f64))
            .collect();
        Ok(SplitRadixFft { size, twiddles })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Transforms `data`, returning the spectrum.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::LengthMismatch`] unless
    /// `data.len() == size`.
    pub fn transform(
        &self,
        data: &[Complex],
        direction: Direction,
    ) -> Result<Vec<Complex>, WorkloadError> {
        if data.len() != self.size {
            return Err(WorkloadError::LengthMismatch {
                expected: self.size,
                actual: data.len(),
            });
        }
        match direction {
            Direction::Forward => Ok(self.recurse(data, 1)),
            Direction::Inverse => {
                let conjugated: Vec<Complex> = data.iter().map(|c| c.conj()).collect();
                let spectrum = self.recurse(&conjugated, 1);
                let scale = 1.0 / self.size as f32;
                Ok(spectrum.iter().map(|c| c.conj().scale(scale)).collect())
            }
        }
    }

    /// The split-radix recursion on a strided view: `data` holds `n`
    /// points at the current level, `stride` maps level-local twiddle
    /// indices into the root table.
    fn recurse(&self, data: &[Complex], stride: usize) -> Vec<Complex> {
        let n = data.len();
        if n == 1 {
            return data.to_vec();
        }
        if n == 2 {
            return vec![data[0] + data[1], data[0] - data[1]];
        }
        // Split: evens, odds ≡ 1 (mod 4), odds ≡ 3 (mod 4).
        let even: Vec<Complex> = data.iter().step_by(2).copied().collect();
        let odd1: Vec<Complex> = data.iter().skip(1).step_by(4).copied().collect();
        let odd3: Vec<Complex> = data.iter().skip(3).step_by(4).copied().collect();

        let u = self.recurse(&even, stride * 2);
        let z1 = self.recurse(&odd1, stride * 4);
        let z3 = self.recurse(&odd3, stride * 4);

        let quarter = n / 4;
        let half = n / 2;
        let mut out = vec![Complex::ZERO; n];
        for k in 0..quarter {
            let w1 = self.twiddles[k * stride];
            let w3 = self.twiddles[(3 * k * stride) % self.twiddles.len()];
            let t1 = w1 * z1[k];
            let t3 = w3 * z3[k];
            let sum = t1 + t3;
            // i * (t1 - t3).
            let diff_i = (t1 - t3).mul_i();
            out[k] = u[k] + sum;
            out[k + half] = u[k] - sum;
            out[k + quarter] = u[k + quarter] - diff_i;
            out[k + 3 * quarter] = u[k + quarter] + diff_i;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::radix2::Radix2Fft;
    use crate::fft::{dft, Fft};
    use crate::gen::random_signal;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f32) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "bin {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
            let signal = random_signal(n, 31);
            let spectrum = SplitRadixFft::new(n)
                .unwrap()
                .transform(&signal, Direction::Forward)
                .unwrap();
            let reference = dft::reference(&signal, Direction::Forward);
            assert_close(&spectrum, &reference, 1e-2 * (n as f32).sqrt());
        }
    }

    #[test]
    fn agrees_with_radix2_and_the_planner() {
        for &n in &[64usize, 512, 1024, 4096] {
            let signal = random_signal(n, 33);
            let split = SplitRadixFft::new(n)
                .unwrap()
                .transform(&signal, Direction::Forward)
                .unwrap();
            let mut r2 = signal.clone();
            Radix2Fft::new(n).unwrap().forward(&mut r2);
            assert_close(&split, &r2, 1e-2 * (n as f32).sqrt());
            let mut planned = signal;
            Fft::new(n)
                .unwrap()
                .transform(&mut planned, Direction::Forward)
                .unwrap();
            assert_close(&split, &planned, 1e-2 * (n as f32).sqrt());
        }
    }

    #[test]
    fn inverse_round_trips() {
        for &n in &[8usize, 64, 1024] {
            let signal = random_signal(n, 35);
            let plan = SplitRadixFft::new(n).unwrap();
            let spectrum = plan.transform(&signal, Direction::Forward).unwrap();
            let back = plan.transform(&spectrum, Direction::Inverse).unwrap();
            assert_close(&back, &signal, 1e-3);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(SplitRadixFft::new(0).is_err());
        assert!(SplitRadixFft::new(3).is_err());
        let plan = SplitRadixFft::new(8).unwrap();
        let short = vec![Complex::ZERO; 4];
        assert!(plan.transform(&short, Direction::Forward).is_err());
    }

    #[test]
    fn two_point_base_case() {
        let plan = SplitRadixFft::new(2).unwrap();
        let out = plan
            .transform(
                &[Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)],
                Direction::Forward,
            )
            .unwrap();
        assert!((out[0].re - 3.0).abs() < 1e-6);
        assert!((out[1].re + 1.0).abs() < 1e-6);
    }
}
