//! Iterative radix-2 decimation-in-time FFT.

use super::plan::{bit_reversal, forward_twiddles, permute_in_place};
use super::Complex;
use crate::kernel::WorkloadError;

/// A planned radix-2 FFT: twiddles and the bit-reversal permutation are
/// computed once and reused across transforms, as a throughput-driven
/// kernel would.
#[derive(Debug, Clone)]
pub struct Radix2Fft {
    size: usize,
    twiddles: Vec<Complex>,
    reversal: Vec<usize>,
}

impl Radix2Fft {
    /// Plans a transform of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NotPowerOfTwo`] unless `size` is a power
    /// of two and at least 2.
    pub fn new(size: usize) -> Result<Self, WorkloadError> {
        if size < 2 || !size.is_power_of_two() {
            return Err(WorkloadError::NotPowerOfTwo { size });
        }
        Ok(Radix2Fft {
            size,
            twiddles: forward_twiddles(size),
            reversal: bit_reversal(size),
        })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward transform, in place.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `data.len()` equals the planned size; the
    /// public entry point is [`super::Fft::transform`], which validates.
    pub fn forward(&self, data: &mut [Complex]) {
        debug_assert_eq!(data.len(), self.size);
        permute_in_place(data, &self.reversal);
        let n = self.size;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft;
    use crate::fft::Direction;
    use crate::gen::random_signal;

    #[test]
    fn matches_reference_for_all_small_sizes() {
        for &n in &[2usize, 4, 8, 16, 32, 64, 128, 512] {
            let signal = random_signal(n, 42);
            let mut fast = signal.clone();
            Radix2Fft::new(n).unwrap().forward(&mut fast);
            let slow = dft::reference(&signal, Direction::Forward);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-2 * (n as f32).sqrt(),
                    "n = {n}, bin {i}"
                );
            }
        }
    }

    #[test]
    fn two_point_butterfly() {
        let fft = Radix2Fft::new(2).unwrap();
        let mut data = [Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)];
        fft.forward(&mut data);
        assert!((data[0].re - 3.0).abs() < 1e-6);
        assert!((data[1].re + 1.0).abs() < 1e-6);
    }

    #[test]
    fn plan_is_reusable() {
        let fft = Radix2Fft::new(64).unwrap();
        let a = random_signal(64, 1);
        let mut first = a.clone();
        fft.forward(&mut first);
        let mut second = a;
        fft.forward(&mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(Radix2Fft::new(0).is_err());
        assert!(Radix2Fft::new(1).is_err());
        assert!(Radix2Fft::new(6).is_err());
    }
}
