//! Iterative radix-2 decimation-in-time FFT.

use super::plan::{bit_reversal, forward_twiddles, permute_in_place};
use super::Complex;
use crate::kernel::WorkloadError;

/// A planned radix-2 FFT: twiddles and the bit-reversal permutation are
/// computed once and reused across transforms, as a throughput-driven
/// kernel would.
///
/// The plan stores the twiddles *stage-contiguously*: for every stage the
/// `half` factors the butterflies consume are laid out in one run, so the
/// inner loop walks three slices (low half, high half, twiddles) in
/// lockstep instead of computing strided indices. The factor values are
/// copied bit-for-bit from the classic `W_N^k` table, and the butterfly
/// arithmetic is unchanged, so the output is bit-identical to the
/// original strided loop kept in [`super::reference::radix2_forward`].
#[derive(Debug, Clone)]
pub struct Radix2Fft {
    size: usize,
    /// Per-stage twiddle runs, concatenated: `1 + 2 + … + n/2 = n − 1`
    /// factors for stages `len = 2, 4, …, n`.
    stage_twiddles: Vec<Complex>,
    reversal: Vec<usize>,
}

impl Radix2Fft {
    /// Plans a transform of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NotPowerOfTwo`] unless `size` is a power
    /// of two and at least 2.
    pub fn new(size: usize) -> Result<Self, WorkloadError> {
        if size < 2 || !size.is_power_of_two() {
            return Err(WorkloadError::NotPowerOfTwo { size });
        }
        let twiddles = forward_twiddles(size);
        let mut stage_twiddles = Vec::with_capacity(size - 1);
        let mut len = 2;
        while len <= size {
            let half = len / 2;
            let stride = size / len;
            for k in 0..half {
                stage_twiddles.push(twiddles[k * stride]);
            }
            len *= 2;
        }
        Ok(Radix2Fft {
            size,
            stage_twiddles,
            reversal: bit_reversal(size),
        })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward transform, in place.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `data.len()` equals the planned size; the
    /// public entry point is [`super::Fft::transform`], which validates.
    pub fn forward(&self, data: &mut [Complex]) {
        debug_assert_eq!(data.len(), self.size);
        permute_in_place(data, &self.reversal);
        let n = self.size;
        let mut len = 2;
        let mut offset = 0;
        while len <= n {
            let half = len / 2;
            let tw = &self.stage_twiddles[offset..offset + half];
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                for ((x, y), w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                    let a = *x;
                    let b = *y * *w;
                    *x = a + b;
                    *y = a - b;
                }
            }
            offset += half;
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft;
    use crate::fft::Direction;
    use crate::gen::random_signal;

    #[test]
    fn matches_reference_for_all_small_sizes() {
        for &n in &[2usize, 4, 8, 16, 32, 64, 128, 512] {
            let signal = random_signal(n, 42);
            let mut fast = signal.clone();
            Radix2Fft::new(n).unwrap().forward(&mut fast);
            let slow = dft::reference(&signal, Direction::Forward);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-2 * (n as f32).sqrt(),
                    "n = {n}, bin {i}"
                );
            }
        }
    }

    #[test]
    fn two_point_butterfly() {
        let fft = Radix2Fft::new(2).unwrap();
        let mut data = [Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)];
        fft.forward(&mut data);
        assert!((data[0].re - 3.0).abs() < 1e-6);
        assert!((data[1].re + 1.0).abs() < 1e-6);
    }

    #[test]
    fn plan_is_reusable() {
        let fft = Radix2Fft::new(64).unwrap();
        let a = random_signal(64, 1);
        let mut first = a.clone();
        fft.forward(&mut first);
        let mut second = a;
        fft.forward(&mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(Radix2Fft::new(0).is_err());
        assert!(Radix2Fft::new(1).is_err());
        assert!(Radix2Fft::new(6).is_err());
    }

    #[test]
    fn bit_identical_to_reference_loop() {
        for &n in &[2usize, 8, 64, 2048] {
            let signal = random_signal(n, 77);
            let mut fast = signal.clone();
            Radix2Fft::new(n).unwrap().forward(&mut fast);
            let mut slow = signal;
            crate::fft::reference::radix2_forward(&mut slow);
            assert_eq!(fast, slow, "n = {n}");
        }
    }
}
