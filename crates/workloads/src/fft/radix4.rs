//! Iterative radix-4 decimation-in-time FFT for sizes that are powers of
//! four.
//!
//! Radix-4 butterflies replace half of radix-2's complex multiplies with
//! free multiplications by `±i`, which is the first structural
//! optimization Spiral-class generators apply; having both radices lets
//! the throughput harness compare them.

use super::plan::{digit4_reversal, permute_in_place};
use super::Complex;
use crate::kernel::WorkloadError;
use std::f64::consts::TAU;

/// A planned radix-4 FFT.
///
/// Like [`super::radix2::Radix2Fft`], the plan stores the twiddles
/// stage-contiguously — one `(w¹, w², w³)` triple per butterfly, in
/// butterfly order — so the transform walks four quarter slices and the
/// twiddle run in lockstep with no strided index arithmetic. The triple
/// values are copied bit-for-bit from the full `W_n^k` table and the
/// butterfly arithmetic is unchanged, so the output is bit-identical to
/// the original loop kept in [`super::reference::radix4_forward`].
#[derive(Debug, Clone)]
pub struct Radix4Fft {
    size: usize,
    /// Per-stage `(w¹, w², w³)` butterfly triples, concatenated in stage
    /// then butterfly order.
    stage_twiddles: Vec<Complex>,
    reversal: Vec<usize>,
}

impl Radix4Fft {
    /// Plans a transform of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NotPowerOfTwo`] unless `size` is a power
    /// of **four** and at least 4.
    pub fn new(size: usize) -> Result<Self, WorkloadError> {
        let is_power_of_four =
            size >= 4 && size.is_power_of_two() && size.trailing_zeros().is_multiple_of(2);
        if !is_power_of_four {
            return Err(WorkloadError::NotPowerOfTwo { size });
        }
        // Full table W_n^k for k in 0..n: radix-4 needs powers up to 3n/4.
        let full: Vec<Complex> = (0..size)
            .map(|k| Complex::from_angle(-TAU * k as f64 / size as f64))
            .collect();
        let mut stage_twiddles = Vec::new();
        let mut len = 4;
        while len <= size {
            let quarter = len / 4;
            let stride = size / len;
            for k in 0..quarter {
                stage_twiddles.push(full[k * stride]);
                stage_twiddles.push(full[2 * k * stride]);
                stage_twiddles.push(full[3 * k * stride]);
            }
            len *= 4;
        }
        Ok(Radix4Fft {
            size,
            stage_twiddles,
            reversal: digit4_reversal(size),
        })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward transform, in place.
    pub fn forward(&self, data: &mut [Complex]) {
        debug_assert_eq!(data.len(), self.size);
        permute_in_place(data, &self.reversal);
        let n = self.size;
        let mut len = 4;
        let mut offset = 0;
        while len <= n {
            let quarter = len / 4;
            let tw = &self.stage_twiddles[offset..offset + 3 * quarter];
            for block in data.chunks_exact_mut(len) {
                let (half01, half23) = block.split_at_mut(2 * quarter);
                let (q0, q1) = half01.split_at_mut(quarter);
                let (q2, q3) = half23.split_at_mut(quarter);
                for ((((p0, p1), p2), p3), w) in q0
                    .iter_mut()
                    .zip(q1.iter_mut())
                    .zip(q2.iter_mut())
                    .zip(q3.iter_mut())
                    .zip(tw.chunks_exact(3))
                {
                    let a = *p0;
                    let b = *p1 * w[0];
                    let c = *p2 * w[1];
                    let d = *p3 * w[2];
                    let t0 = a + c;
                    let t1 = a - c;
                    let t2 = b + d;
                    // -i * (b - d): the free quarter-turn.
                    let bd = b - d;
                    let t3 = Complex::new(bd.im, -bd.re);
                    *p0 = t0 + t2;
                    *p1 = t1 + t3;
                    *p2 = t0 - t2;
                    *p3 = t1 - t3;
                }
            }
            offset += 3 * quarter;
            len *= 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::radix2::Radix2Fft;
    use crate::fft::{dft, Direction};
    use crate::gen::random_signal;

    #[test]
    fn rejects_non_powers_of_four() {
        assert!(Radix4Fft::new(2).is_err());
        assert!(Radix4Fft::new(8).is_err());
        assert!(Radix4Fft::new(32).is_err());
        assert!(Radix4Fft::new(12).is_err());
        assert!(Radix4Fft::new(4).is_ok());
        assert!(Radix4Fft::new(1024).is_ok());
    }

    #[test]
    fn four_point_matches_dft() {
        let signal = random_signal(4, 5);
        let mut fast = signal.clone();
        Radix4Fft::new(4).unwrap().forward(&mut fast);
        let slow = dft::reference(&signal, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[4usize, 16, 64, 256] {
            let signal = random_signal(n, 9);
            let mut fast = signal.clone();
            Radix4Fft::new(n).unwrap().forward(&mut fast);
            let slow = dft::reference(&signal, Direction::Forward);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-2 * (n as f32).sqrt(),
                    "n = {n}, bin {i}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_radix2_on_common_sizes() {
        for &n in &[16usize, 256, 1024, 4096] {
            let signal = random_signal(n, 13);
            let mut r4 = signal.clone();
            Radix4Fft::new(n).unwrap().forward(&mut r4);
            let mut r2 = signal;
            Radix2Fft::new(n).unwrap().forward(&mut r2);
            for (i, (a, b)) in r4.iter().zip(&r2).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-2 * (n as f32).sqrt(),
                    "n = {n}, bin {i}"
                );
            }
        }
    }

    #[test]
    fn bit_identical_to_reference_loop() {
        for &n in &[4usize, 16, 256, 4096] {
            let signal = random_signal(n, 91);
            let mut fast = signal.clone();
            Radix4Fft::new(n).unwrap().forward(&mut fast);
            let mut slow = signal;
            crate::fft::reference::radix4_forward(&mut slow);
            assert_eq!(fast, slow, "n = {n}");
        }
    }
}
