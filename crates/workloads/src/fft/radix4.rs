//! Iterative radix-4 decimation-in-time FFT for sizes that are powers of
//! four.
//!
//! Radix-4 butterflies replace half of radix-2's complex multiplies with
//! free multiplications by `±i`, which is the first structural
//! optimization Spiral-class generators apply; having both radices lets
//! the throughput harness compare them.

use super::plan::{digit4_reversal, permute_in_place};
use super::Complex;
use crate::kernel::WorkloadError;
use std::f64::consts::TAU;

/// A planned radix-4 FFT.
#[derive(Debug, Clone)]
pub struct Radix4Fft {
    size: usize,
    // Full table W_n^k for k in 0..n: radix-4 needs powers up to 3n/4.
    twiddles: Vec<Complex>,
    reversal: Vec<usize>,
}

impl Radix4Fft {
    /// Plans a transform of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NotPowerOfTwo`] unless `size` is a power
    /// of **four** and at least 4.
    pub fn new(size: usize) -> Result<Self, WorkloadError> {
        let is_power_of_four =
            size >= 4 && size.is_power_of_two() && size.trailing_zeros().is_multiple_of(2);
        if !is_power_of_four {
            return Err(WorkloadError::NotPowerOfTwo { size });
        }
        let twiddles = (0..size)
            .map(|k| Complex::from_angle(-TAU * k as f64 / size as f64))
            .collect();
        Ok(Radix4Fft {
            size,
            twiddles,
            reversal: digit4_reversal(size),
        })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward transform, in place.
    pub fn forward(&self, data: &mut [Complex]) {
        debug_assert_eq!(data.len(), self.size);
        permute_in_place(data, &self.reversal);
        let n = self.size;
        let mut len = 4;
        while len <= n {
            let quarter = len / 4;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..quarter {
                    let w1 = self.twiddles[k * stride];
                    let w2 = self.twiddles[2 * k * stride];
                    let w3 = self.twiddles[3 * k * stride];
                    let a = data[start + k];
                    let b = data[start + k + quarter] * w1;
                    let c = data[start + k + 2 * quarter] * w2;
                    let d = data[start + k + 3 * quarter] * w3;
                    let t0 = a + c;
                    let t1 = a - c;
                    let t2 = b + d;
                    // -i * (b - d): the free quarter-turn.
                    let bd = b - d;
                    let t3 = Complex::new(bd.im, -bd.re);
                    data[start + k] = t0 + t2;
                    data[start + k + quarter] = t1 + t3;
                    data[start + k + 2 * quarter] = t0 - t2;
                    data[start + k + 3 * quarter] = t1 - t3;
                }
            }
            len *= 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::radix2::Radix2Fft;
    use crate::fft::{dft, Direction};
    use crate::gen::random_signal;

    #[test]
    fn rejects_non_powers_of_four() {
        assert!(Radix4Fft::new(2).is_err());
        assert!(Radix4Fft::new(8).is_err());
        assert!(Radix4Fft::new(32).is_err());
        assert!(Radix4Fft::new(12).is_err());
        assert!(Radix4Fft::new(4).is_ok());
        assert!(Radix4Fft::new(1024).is_ok());
    }

    #[test]
    fn four_point_matches_dft() {
        let signal = random_signal(4, 5);
        let mut fast = signal.clone();
        Radix4Fft::new(4).unwrap().forward(&mut fast);
        let slow = dft::reference(&signal, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[4usize, 16, 64, 256] {
            let signal = random_signal(n, 9);
            let mut fast = signal.clone();
            Radix4Fft::new(n).unwrap().forward(&mut fast);
            let slow = dft::reference(&signal, Direction::Forward);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-2 * (n as f32).sqrt(),
                    "n = {n}, bin {i}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_radix2_on_common_sizes() {
        for &n in &[16usize, 256, 1024, 4096] {
            let signal = random_signal(n, 13);
            let mut r4 = signal.clone();
            Radix4Fft::new(n).unwrap().forward(&mut r4);
            let mut r2 = signal;
            Radix2Fft::new(n).unwrap().forward(&mut r2);
            for (i, (a, b)) in r4.iter().zip(&r2).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-2 * (n as f32).sqrt(),
                    "n = {n}, bin {i}"
                );
            }
        }
    }
}
