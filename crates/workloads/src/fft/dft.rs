//! The O(N²) discrete Fourier transform — the correctness oracle.

use super::{Complex, Direction};
use std::f64::consts::TAU;

/// Computes the DFT of `input` directly from the definition, accumulating
/// in `f64`. Quadratic time; for testing only.
///
/// Forward: `X[k] = Σ_n x[n]·e^(−2πi·kn/N)`.
/// Inverse: `x[n] = (1/N)·Σ_k X[k]·e^(+2πi·kn/N)`.
pub fn reference(input: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = input.len();
    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut re = 0.0f64;
        let mut im = 0.0f64;
        for (j, x) in input.iter().enumerate() {
            let angle = sign * TAU * (k as f64) * (j as f64) / (n as f64);
            let (s, c) = angle.sin_cos();
            re += f64::from(x.re) * c - f64::from(x.im) * s;
            im += f64::from(x.re) * s + f64::from(x.im) * c;
        }
        let scale = match direction {
            Direction::Forward => 1.0,
            Direction::Inverse => 1.0 / n as f64,
        };
        out.push(Complex::new((re * scale) as f32, (im * scale) as f32));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spectrum = reference(&x, Direction::Forward);
        for bin in spectrum {
            assert!((bin.re - 1.0).abs() < 1e-6);
            assert!(bin.im.abs() < 1e-6);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 16;
        let tone = 3usize;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::from_angle(TAU * tone as f64 * j as f64 / n as f64))
            .collect();
        let spectrum = reference(&x, Direction::Forward);
        for (k, bin) in spectrum.iter().enumerate() {
            if k == tone {
                assert!((bin.re - n as f32).abs() < 1e-3);
            } else {
                assert!(bin.abs() < 1e-3, "leakage in bin {k}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let x: Vec<Complex> = (0..8)
            .map(|i| Complex::new(i as f32, -(i as f32) / 2.0))
            .collect();
        let back = reference(&reference(&x, Direction::Forward), Direction::Inverse);
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn dft_of_empty_is_empty() {
        assert!(reference(&[], Direction::Forward).is_empty());
    }
}
