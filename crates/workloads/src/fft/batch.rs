//! Throughput-driven batched transforms.
//!
//! "To satisfy compute-bound requirements, all kernels are assumed to be
//! throughput-driven, i.e., many independent inputs are being computed."
//! This module runs whole batches of independent FFTs — sequentially or
//! across crossbeam-scoped worker threads — which is the shape CUFFT's
//! batched API and the paper's streaming RTL cores actually execute.

use super::{Complex, Direction, Fft};
use crate::kernel::WorkloadError;

/// Transforms every signal in `batch` in place, sequentially.
///
/// # Errors
///
/// Returns [`WorkloadError::LengthMismatch`] if any signal's length
/// differs from the plan's size (signals before the offender are already
/// transformed; treat the batch as poisoned on error).
pub fn transform_all(
    plan: &Fft,
    batch: &mut [Vec<Complex>],
    direction: Direction,
) -> Result<(), WorkloadError> {
    for signal in batch.iter_mut() {
        plan.transform(signal, direction)?;
    }
    Ok(())
}

/// Transforms every signal with `threads` workers, preserving order.
///
/// ```
/// use ucore_workloads::fft::{batch, Complex, Direction, Fft};
/// use ucore_workloads::gen::random_signal;
/// let plan = Fft::new(256)?;
/// let signals: Vec<Vec<Complex>> = (0..32).map(|s| random_signal(256, s)).collect();
/// let mut serial = signals.clone();
/// batch::transform_all(&plan, &mut serial, Direction::Forward)?;
/// let mut parallel = signals;
/// batch::transform_all_parallel(&plan, &mut parallel, Direction::Forward, 4)?;
/// assert_eq!(serial, parallel);
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::ZeroSize`] for zero threads,
/// [`WorkloadError::LengthMismatch`] if any signal is mis-sized (checked
/// up front, before any work starts), or
/// [`WorkloadError::WorkerPanicked`] if a transform worker dies.
pub fn transform_all_parallel(
    plan: &Fft,
    batch: &mut [Vec<Complex>],
    direction: Direction,
    threads: usize,
) -> Result<(), WorkloadError> {
    if threads == 0 {
        return Err(WorkloadError::ZeroSize { what: "thread count" });
    }
    // Validate everything first so workers cannot fail mid-flight.
    for signal in batch.iter() {
        if signal.len() != plan.size() {
            return Err(WorkloadError::LengthMismatch {
                expected: plan.size(),
                actual: signal.len(),
            });
        }
    }
    if batch.is_empty() {
        return Ok(());
    }
    let chunk = batch.len().div_ceil(threads);
    const KERNEL: &str = "FFT batch transform";
    crossbeam::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks_mut(chunk)
            .map(|piece| {
                scope.spawn(move |_| -> Result<(), WorkloadError> {
                    for signal in piece.iter_mut() {
                        plan.transform(signal, direction)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle
                .join()
                .map_err(|_| WorkloadError::WorkerPanicked { kernel: KERNEL })??;
        }
        Ok(())
    })
    .map_err(|_| WorkloadError::WorkerPanicked { kernel: KERNEL })?
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_signal;

    fn batch_of(n: usize, count: usize) -> Vec<Vec<Complex>> {
        (0..count).map(|s| random_signal(n, s as u64)).collect()
    }

    #[test]
    fn parallel_matches_serial_across_thread_counts() {
        let plan = Fft::new(128).unwrap();
        let signals = batch_of(128, 37);
        let mut serial = signals.clone();
        transform_all(&plan, &mut serial, Direction::Forward).unwrap();
        for threads in [1usize, 2, 5, 16, 64] {
            let mut parallel = signals.clone();
            transform_all_parallel(&plan, &mut parallel, Direction::Forward, threads)
                .unwrap();
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let plan = Fft::new(64).unwrap();
        let mut empty: Vec<Vec<Complex>> = vec![];
        transform_all(&plan, &mut empty, Direction::Forward).unwrap();
        transform_all_parallel(&plan, &mut empty, Direction::Forward, 4).unwrap();
    }

    #[test]
    fn mis_sized_signal_rejected_before_work() {
        let plan = Fft::new(64).unwrap();
        let mut batch = batch_of(64, 3);
        batch[1] = random_signal(32, 9);
        let original = batch.clone();
        let err =
            transform_all_parallel(&plan, &mut batch, Direction::Forward, 2).unwrap_err();
        assert!(matches!(err, WorkloadError::LengthMismatch { .. }));
        // Up-front validation: nothing was touched.
        assert_eq!(batch, original);
    }

    #[test]
    fn zero_threads_rejected() {
        let plan = Fft::new(64).unwrap();
        let mut batch = batch_of(64, 2);
        assert!(transform_all_parallel(&plan, &mut batch, Direction::Forward, 0).is_err());
    }

    #[test]
    fn round_trip_through_batches() {
        let plan = Fft::new(256).unwrap();
        let signals = batch_of(256, 8);
        let mut data = signals.clone();
        transform_all_parallel(&plan, &mut data, Direction::Forward, 3).unwrap();
        transform_all_parallel(&plan, &mut data, Direction::Inverse, 3).unwrap();
        for (restored, original) in data.iter().zip(&signals) {
            for (a, b) in restored.iter().zip(original) {
                assert!((*a - *b).abs() < 1e-3);
            }
        }
    }
}
