//! Shared FFT plumbing: twiddle-factor tables and digit-reversal
//! permutations.

use super::Complex;
use std::f64::consts::TAU;

/// Precomputed forward twiddles `W_N^k = e^(−2πik/N)` for
/// `k = 0..N/2`.
pub fn forward_twiddles(n: usize) -> Vec<Complex> {
    (0..n / 2)
        .map(|k| Complex::from_angle(-TAU * k as f64 / n as f64))
        .collect()
}

/// The bit-reversal permutation of `0..n` for power-of-two `n`.
pub fn bit_reversal(n: usize) -> Vec<usize> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
        .collect()
}

/// The base-4 digit-reversal permutation of `0..n` for `n` a power of 4.
pub fn digit4_reversal(n: usize) -> Vec<usize> {
    let pairs = n.trailing_zeros() / 2;
    (0..n)
        .map(|i| {
            let mut x = i;
            let mut out = 0usize;
            for _ in 0..pairs {
                out = (out << 2) | (x & 3);
                x >>= 2;
            }
            out
        })
        .collect()
}

/// Applies a permutation in place: `data'[perm[i]] <- data[i]` is *not*
/// what we want — reorder so `data'[i] = data[perm[i]]`, swapping lazily
/// (each 2-cycle swapped once).
pub fn permute_in_place(data: &mut [Complex], perm: &[usize]) {
    debug_assert_eq!(data.len(), perm.len());
    for (i, &j) in perm.iter().enumerate() {
        if j > i {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twiddles_start_at_one_and_rotate_clockwise() {
        let tw = forward_twiddles(8);
        assert_eq!(tw.len(), 4);
        assert!((tw[0].re - 1.0).abs() < 1e-6);
        assert!(tw[0].im.abs() < 1e-6);
        // W_8^2 = e^{-i pi/2} = -i.
        assert!(tw[2].re.abs() < 1e-6);
        assert!((tw[2].im + 1.0).abs() < 1e-6);
    }

    #[test]
    fn bit_reversal_is_involution() {
        for &n in &[2usize, 8, 64, 1024] {
            let p = bit_reversal(n);
            for i in 0..n {
                assert_eq!(p[p[i]], i, "n = {n}, i = {i}");
            }
        }
    }

    #[test]
    fn bit_reversal_small_case() {
        assert_eq!(bit_reversal(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn digit4_reversal_is_involution_and_permutation() {
        for &n in &[4usize, 16, 256, 1024] {
            let p = digit4_reversal(n);
            let mut seen = vec![false; n];
            for i in 0..n {
                assert_eq!(p[p[i]], i, "n = {n}, i = {i}");
                assert!(!seen[p[i]], "duplicate image");
                seen[p[i]] = true;
            }
        }
    }

    #[test]
    fn digit4_small_case() {
        // Base-4 digits of 0..16 reversed: 0,4,8,12, 1,5,9,13, ...
        assert_eq!(
            digit4_reversal(16),
            vec![0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]
        );
    }

    #[test]
    fn permute_in_place_matches_gather() {
        let n = 16;
        let perm = bit_reversal(n);
        let data: Vec<Complex> =
            (0..n).map(|i| Complex::new(i as f32, 0.0)).collect();
        let mut in_place = data.clone();
        permute_in_place(&mut in_place, &perm);
        let gathered: Vec<Complex> = perm.iter().map(|&j| data[j]).collect();
        assert_eq!(in_place, gathered);
    }
}
