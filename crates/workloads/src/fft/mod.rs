//! Single-precision complex FFTs.
//!
//! The paper's FFT numbers come from Spiral-generated kernels (CPU and
//! RTL) and CUFFT; here the transform is implemented directly:
//!
//! * [`dft::reference`] — the O(N²) discrete Fourier transform, the
//!   correctness oracle;
//! * [`radix2::Radix2Fft`] — iterative radix-2 decimation-in-time with
//!   precomputed twiddles and bit-reversal permutation;
//! * [`radix4::Radix4Fft`] — iterative radix-4 for sizes that are powers
//!   of four (fewer twiddle multiplies per butterfly, the first step
//!   Spiral-class generators take);
//! * [`splitradix::SplitRadixFft`] — the lowest-operation-count
//!   classical decomposition (what Spiral's search converges to);
//! * [`bluestein::BluesteinFft`] — arbitrary-length transforms via the
//!   chirp-z reformulation;
//! * [`Fft`] — a small planner that picks radix-4 when the size allows
//!   and radix-2 otherwise, with forward and inverse directions;
//! * [`reference`] — the pre-optimization butterfly loops, kept as
//!   bit-for-bit differential oracles for the tuned transforms.

pub mod batch;
pub mod bluestein;
pub mod dft;
pub mod plan;
pub mod radix2;
pub mod radix4;
pub mod reference;
pub mod splitradix;

use crate::kernel::WorkloadError;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// A single-precision complex number.
///
/// A local implementation (rather than an external crate) keeps the
/// kernel self-contained and under test here.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Creates `re + im·i`.
    pub fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// `e^(i·theta)`.
    pub fn from_angle(theta: f64) -> Self {
        Complex::new(theta.cos() as f32, theta.sin() as f32)
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by `i` (a quarter-turn), cheaper than a full
    /// complex multiply inside radix-4 butterflies.
    pub fn mul_i(self) -> Self {
        Complex::new(-self.im, self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f32) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The forward DFT (negative exponent).
    Forward,
    /// The inverse DFT (positive exponent, scaled by `1/N`).
    Inverse,
}

/// A planned FFT of a fixed power-of-two size.
///
/// ```
/// use ucore_workloads::fft::{Complex, Direction, Fft};
/// let fft = Fft::new(8)?;
/// let mut data = vec![Complex::ZERO; 8];
/// data[1] = Complex::ONE; // a shifted impulse
/// fft.transform(&mut data, Direction::Forward)?;
/// // The spectrum of a shifted impulse has unit magnitude everywhere.
/// for bin in &data {
///     assert!((bin.abs() - 1.0).abs() < 1e-5);
/// }
/// # Ok::<(), ucore_workloads::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    Radix2(radix2::Radix2Fft),
    Radix4(radix4::Radix4Fft),
}

impl Fft {
    /// Plans a transform of `size` points, preferring radix-4 when `size`
    /// is a power of four.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NotPowerOfTwo`] unless `size` is a power
    /// of two and at least 2.
    pub fn new(size: usize) -> Result<Self, WorkloadError> {
        if size < 2 || !size.is_power_of_two() {
            return Err(WorkloadError::NotPowerOfTwo { size });
        }
        let kind = if size.trailing_zeros().is_multiple_of(2) {
            PlanKind::Radix4(radix4::Radix4Fft::new(size)?)
        } else {
            PlanKind::Radix2(radix2::Radix2Fft::new(size)?)
        };
        Ok(Fft { size, kind })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Which radix the planner selected.
    pub fn radix(&self) -> usize {
        match &self.kind {
            PlanKind::Radix2(_) => 2,
            PlanKind::Radix4(_) => 4,
        }
    }

    /// Transforms `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::LengthMismatch`] unless
    /// `data.len() == size`.
    pub fn transform(
        &self,
        data: &mut [Complex],
        direction: Direction,
    ) -> Result<(), WorkloadError> {
        if data.len() != self.size {
            return Err(WorkloadError::LengthMismatch {
                expected: self.size,
                actual: data.len(),
            });
        }
        match direction {
            Direction::Forward => self.forward(data),
            Direction::Inverse => {
                // x^-1 = conj(FFT(conj(X))) / N.
                for v in data.iter_mut() {
                    *v = v.conj();
                }
                self.forward(data);
                let scale = 1.0 / self.size as f32;
                for v in data.iter_mut() {
                    *v = v.conj().scale(scale);
                }
            }
        }
        Ok(())
    }

    fn forward(&self, data: &mut [Complex]) {
        match &self.kind {
            PlanKind::Radix2(p) => p.forward(data),
            PlanKind::Radix4(p) => p.forward(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_signal;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "bin {i}: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.mul_i(), Complex::new(-2.0, 1.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn planner_prefers_radix4_for_powers_of_four() {
        assert_eq!(Fft::new(4).unwrap().radix(), 4);
        assert_eq!(Fft::new(16).unwrap().radix(), 4);
        assert_eq!(Fft::new(1024).unwrap().radix(), 4);
        assert_eq!(Fft::new(8).unwrap().radix(), 2);
        assert_eq!(Fft::new(2048).unwrap().radix(), 2);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(Fft::new(0).is_err());
        assert!(Fft::new(1).is_err());
        assert!(Fft::new(12).is_err());
    }

    #[test]
    fn rejects_wrong_length_buffer() {
        let fft = Fft::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        assert!(fft.transform(&mut data, Direction::Forward).is_err());
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
            let signal = random_signal(n, 7);
            let mut fast = signal.clone();
            Fft::new(n)
                .unwrap()
                .transform(&mut fast, Direction::Forward)
                .unwrap();
            let slow = dft::reference(&signal, Direction::Forward);
            assert_close(&fast, &slow, 1e-2 * (n as f32).sqrt());
        }
    }

    #[test]
    fn inverse_round_trips() {
        for &n in &[4usize, 8, 64, 512, 1024] {
            let signal = random_signal(n, 11);
            let mut data = signal.clone();
            let fft = Fft::new(n).unwrap();
            fft.transform(&mut data, Direction::Forward).unwrap();
            fft.transform(&mut data, Direction::Inverse).unwrap();
            assert_close(&data, &signal, 1e-3);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let signal = random_signal(n, 3);
        let time_energy: f64 = signal.iter().map(|c| f64::from(c.norm_sqr())).sum();
        let mut freq = signal;
        Fft::new(n)
            .unwrap()
            .transform(&mut freq, Direction::Forward)
            .unwrap();
        let freq_energy: f64 =
            freq.iter().map(|c| f64::from(c.norm_sqr())).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() / time_energy < 1e-4,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let n = 64;
        let mut data = vec![Complex::ONE; n];
        Fft::new(n)
            .unwrap()
            .transform(&mut data, Direction::Forward)
            .unwrap();
        assert!((data[0].re - n as f32).abs() < 1e-3);
        assert!(data[0].im.abs() < 1e-3);
        for bin in &data[1..] {
            assert!(bin.abs() < 1e-3);
        }
    }

    #[test]
    fn linearity() {
        let n = 128;
        let x = random_signal(n, 21);
        let y = random_signal(n, 22);
        let fft = Fft::new(n).unwrap();

        let mut fx = x.clone();
        fft.transform(&mut fx, Direction::Forward).unwrap();
        let mut fy = y.clone();
        fft.transform(&mut fy, Direction::Forward).unwrap();

        let mut sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        fft.transform(&mut sum, Direction::Forward).unwrap();

        let expect: Vec<Complex> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert_close(&sum, &expect, 1e-2);
    }
}
