//! Pre-optimization FFT butterfly loops, kept as differential oracles.
//!
//! The tuned [`super::radix2`] / [`super::radix4`] transforms reorganize
//! memory access (stage-contiguous twiddle tables, slice-zipped
//! butterflies) but perform exactly the same arithmetic in the same
//! order. These functions are the original strided-index loops, kept
//! verbatim so `tests/differential.rs` can prove the transforms are
//! **bit-identical** — not merely close — on every input.
//!
//! They plan per call (twiddle table + permutation), so they are
//! intentionally slow; nothing on a hot path uses them.

use super::plan::{bit_reversal, digit4_reversal, forward_twiddles, permute_in_place};
use super::Complex;
use std::f64::consts::TAU;

/// The original radix-2 forward transform, in place.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two and at least 2.
pub fn radix2_forward(data: &mut [Complex]) {
    let n = data.len();
    assert!(n >= 2 && n.is_power_of_two(), "size must be a power of two");
    let twiddles = forward_twiddles(n);
    let reversal = bit_reversal(n);
    permute_in_place(data, &reversal);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = twiddles[k * stride];
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
            }
        }
        len *= 2;
    }
}

/// The original radix-4 forward transform, in place.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of four and at least 4.
pub fn radix4_forward(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n >= 4 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2),
        "size must be a power of four"
    );
    let twiddles: Vec<Complex> = (0..n)
        .map(|k| Complex::from_angle(-TAU * k as f64 / n as f64))
        .collect();
    let reversal = digit4_reversal(n);
    permute_in_place(data, &reversal);
    let mut len = 4;
    while len <= n {
        let quarter = len / 4;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..quarter {
                let w1 = twiddles[k * stride];
                let w2 = twiddles[2 * k * stride];
                let w3 = twiddles[3 * k * stride];
                let a = data[start + k];
                let b = data[start + k + quarter] * w1;
                let c = data[start + k + 2 * quarter] * w2;
                let d = data[start + k + 3 * quarter] * w3;
                let t0 = a + c;
                let t1 = a - c;
                let t2 = b + d;
                // -i * (b - d): the free quarter-turn.
                let bd = b - d;
                let t3 = Complex::new(bd.im, -bd.re);
                data[start + k] = t0 + t2;
                data[start + k + quarter] = t1 + t3;
                data[start + k + 2 * quarter] = t0 - t2;
                data[start + k + 3 * quarter] = t1 - t3;
            }
        }
        len *= 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{dft, Direction};
    use crate::gen::random_signal;

    #[test]
    fn reference_loops_match_the_dft_oracle() {
        for &n in &[8usize, 16] {
            let signal = random_signal(n, 3);
            let slow = dft::reference(&signal, Direction::Forward);
            let mut r2 = signal.clone();
            radix2_forward(&mut r2);
            for (a, b) in r2.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-3);
            }
            if n.trailing_zeros().is_multiple_of(2) {
                let mut r4 = signal;
                radix4_forward(&mut r4);
                for (a, b) in r4.iter().zip(&slow) {
                    assert!((*a - *b).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn radix2_rejects_bad_sizes() {
        radix2_forward(&mut [Complex::ZERO; 6]);
    }

    #[test]
    #[should_panic(expected = "power of four")]
    fn radix4_rejects_bad_sizes() {
        radix4_forward(&mut [Complex::ZERO; 8]);
    }
}
