//! Workload characterization: operation counts, byte counts and units.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised when describing or running workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// FFT sizes must be powers of two (and at least 2) for the
    /// radix-based plans.
    NotPowerOfTwo {
        /// The rejected size.
        size: usize,
    },
    /// A dimension that must be non-zero was zero.
    ZeroSize {
        /// Name of the dimension.
        what: &'static str,
    },
    /// Mismatched buffer lengths passed to a kernel.
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// An element index outside a matrix or buffer.
    IndexOutOfBounds {
        /// The rejected row (or flat) index.
        row: usize,
        /// The rejected column index (0 for flat buffers).
        col: usize,
        /// Rows (or length) of the indexed object.
        rows: usize,
        /// Columns of the indexed object (1 for flat buffers).
        cols: usize,
    },
    /// Two operands whose shapes must agree did not.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A worker thread of a parallel kernel panicked; the output buffer
    /// must be treated as poisoned and discarded.
    WorkerPanicked {
        /// The parallel kernel whose scope observed the panic.
        kernel: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NotPowerOfTwo { size } => {
                write!(f, "size {size} is not a power of two >= 2")
            }
            WorkloadError::ZeroSize { what } => write!(f, "{what} must be non-zero"),
            WorkloadError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match expected {expected}")
            }
            WorkloadError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "index ({row}, {col}) is outside a {rows}x{cols} matrix")
            }
            WorkloadError::ShapeMismatch { left, right } => {
                write!(
                    f,
                    "shape {}x{} does not match shape {}x{}",
                    left.0, left.1, right.0, right.1
                )
            }
            WorkloadError::WorkerPanicked { kernel } => {
                write!(f, "a {kernel} worker thread panicked")
            }
        }
    }
}

impl Error for WorkloadError {}

/// The three kernel families of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Dense matrix-matrix multiplication.
    Mmm,
    /// Fast Fourier Transform (complex, single precision).
    Fft,
    /// Black-Scholes option pricing.
    BlackScholes,
}

impl WorkloadKind {
    /// All kernel families, in the paper's order.
    pub const ALL: [WorkloadKind; 3] =
        [WorkloadKind::Mmm, WorkloadKind::Fft, WorkloadKind::BlackScholes];

    /// The abbreviation used throughout the paper.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Mmm => "MMM",
            WorkloadKind::Fft => "FFT",
            WorkloadKind::BlackScholes => "BS",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The unit a workload's throughput is reported in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerfUnit {
    /// Billions of floating-point operations per second (MMM; for FFT
    /// these are the paper's *pseudo*-GFLOP/s based on `5N log2 N`).
    GflopsPerSec,
    /// Millions of option pricings per second (Black-Scholes).
    MoptsPerSec,
}

impl fmt::Display for PerfUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PerfUnit::GflopsPerSec => "GFLOP/s",
            PerfUnit::MoptsPerSec => "Mopts/s",
        })
    }
}

/// A concrete workload instance: a kernel family plus its size parameter.
///
/// The *work unit* is one kernel invocation: one `N×N` matrix product for
/// MMM, one `N`-point transform for FFT, one option pricing for BS. All
/// kernels are throughput-driven (many independent work units), which is
/// what makes them compute-bound on real devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    kind: WorkloadKind,
    size: usize,
}

/// Bytes of a single-precision float.
const F32_BYTES: f64 = 4.0;

/// The paper's compulsory traffic for one Black-Scholes option.
pub const BS_BYTES_PER_OPTION: f64 = 10.0;

/// The matrix blocking the paper assumes when computing MMM compulsory
/// bandwidth ("square matrix inputs blocked at N = 128").
pub const MMM_PAPER_BLOCK: usize = 128;

impl Workload {
    /// An `n × n` dense matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroSize`] for `n = 0`.
    pub fn mmm(n: usize) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::ZeroSize { what: "matrix dimension" });
        }
        Ok(Workload { kind: WorkloadKind::Mmm, size: n })
    }

    /// An `n`-point complex FFT.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::NotPowerOfTwo`] unless `n` is a power of
    /// two and at least 2.
    pub fn fft(n: usize) -> Result<Self, WorkloadError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(WorkloadError::NotPowerOfTwo { size: n });
        }
        Ok(Workload { kind: WorkloadKind::Fft, size: n })
    }

    /// An `N × N` dense matrix multiplication with the dimension
    /// checked at compile time.
    ///
    /// The `N > 0` check is evaluated during const evaluation (an
    /// invalid `N` fails the build), so this constructor is infallible
    /// at runtime — prefer it over [`Workload::mmm`] wherever the
    /// dimension is a constant.
    pub const fn mmm_const<const N: usize>() -> Self {
        const { assert!(N > 0, "matrix dimension must be nonzero") };
        Workload { kind: WorkloadKind::Mmm, size: N }
    }

    /// An `N`-point complex FFT with the size checked at compile time.
    ///
    /// The power-of-two check is evaluated during const evaluation (an
    /// invalid `N` fails the build), so this constructor is infallible
    /// at runtime — prefer it over [`Workload::fft`] wherever the size
    /// is a constant.
    pub const fn fft_const<const N: usize>() -> Self {
        const {
            assert!(N >= 2 && N.is_power_of_two(), "FFT size must be a power of two >= 2");
        };
        Workload { kind: WorkloadKind::Fft, size: N }
    }

    /// Black-Scholes option pricing (size is per-option, so 1).
    pub fn black_scholes() -> Self {
        Workload { kind: WorkloadKind::BlackScholes, size: 1 }
    }

    /// The kernel family.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The size parameter (`N` for MMM/FFT, 1 for BS).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Floating-point operations in one work unit:
    ///
    /// * MMM: `2N³` (a multiply and an add per inner-loop step);
    /// * FFT: `5N·log2 N` (the standard pseudo-FLOP convention the paper
    ///   uses for its "pseudo-GFLOP/s");
    /// * BS: the operation count of our pricing pipeline (see
    ///   [`crate::blackscholes::FLOPS_PER_OPTION`]).
    pub fn flops_per_unit(&self) -> f64 {
        match self.kind {
            WorkloadKind::Mmm => 2.0 * (self.size as f64).powi(3),
            WorkloadKind::Fft => {
                5.0 * self.size as f64 * (self.size as f64).log2()
            }
            WorkloadKind::BlackScholes => crate::blackscholes::FLOPS_PER_OPTION,
        }
    }

    /// Compulsory off-chip traffic for one work unit, in bytes:
    ///
    /// * MMM: `2·4N²` — read one input tile and write one output tile per
    ///   blocked product, as in footnote 3;
    /// * FFT: `16N` — read and write `N` complex singles, as in
    ///   footnote 2;
    /// * BS: 10 bytes per option, as in Section 6.
    pub fn compulsory_bytes_per_unit(&self) -> f64 {
        match self.kind {
            WorkloadKind::Mmm => 2.0 * F32_BYTES * (self.size as f64).powi(2),
            WorkloadKind::Fft => 4.0 * F32_BYTES * self.size as f64,
            WorkloadKind::BlackScholes => BS_BYTES_PER_OPTION,
        }
    }

    /// Arithmetic intensity in FLOPs per byte (for BS: options per byte,
    /// scaled by the per-option FLOP count).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops_per_unit() / self.compulsory_bytes_per_unit()
    }

    /// Compulsory bytes per FLOP — the reciprocal of
    /// [`arithmetic_intensity`](Self::arithmetic_intensity), the form the
    /// paper quotes (`0.32 bytes/flop` for FFT-1024, `0.0313` for MMM
    /// blocked at 128).
    pub fn bytes_per_flop(&self) -> f64 {
        1.0 / self.arithmetic_intensity()
    }

    /// The unit throughput is reported in for this workload.
    pub fn perf_unit(&self) -> PerfUnit {
        match self.kind {
            WorkloadKind::Mmm | WorkloadKind::Fft => PerfUnit::GflopsPerSec,
            WorkloadKind::BlackScholes => PerfUnit::MoptsPerSec,
        }
    }

    /// Converts a device throughput in this workload's reporting unit
    /// (GFLOP/s or Mopts/s) into compulsory bandwidth in GB/s.
    ///
    /// This is how the projection engine turns "one BCE of performance"
    /// into "one unit of compulsory bandwidth".
    pub fn compulsory_bandwidth_gb_s(&self, throughput: f64) -> f64 {
        match self.perf_unit() {
            // GFLOP/s x bytes/flop = GB/s.
            PerfUnit::GflopsPerSec => throughput * self.bytes_per_flop(),
            // Mopts/s x bytes/option = MB/s -> GB/s.
            PerfUnit::MoptsPerSec => {
                throughput * self.compulsory_bytes_per_unit() / 1000.0
            }
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            WorkloadKind::Mmm => write!(f, "MMM-{}", self.size),
            WorkloadKind::Fft => write!(f, "FFT-{}", self.size),
            WorkloadKind::BlackScholes => f.write_str("BS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_requires_power_of_two() {
        assert!(Workload::fft(0).is_err());
        assert!(Workload::fft(1).is_err());
        assert!(Workload::fft(3).is_err());
        assert!(Workload::fft(1000).is_err());
        assert!(Workload::fft(1024).is_ok());
    }

    #[test]
    fn mmm_rejects_zero() {
        assert!(Workload::mmm(0).is_err());
        assert!(Workload::mmm(128).is_ok());
    }

    #[test]
    fn footnote2_fft_arithmetic_intensity() {
        // AI(FFT) = 5N log2 N / 16N = 0.3125 log2 N.
        for &n in &[64usize, 1024, 16384] {
            let w = Workload::fft(n).unwrap();
            let expect = 0.3125 * (n as f64).log2();
            assert!((w.arithmetic_intensity() - expect).abs() < 1e-12, "N = {n}");
        }
        // FFT-1024: 0.32 bytes/flop as quoted in Section 6.
        let w = Workload::fft(1024).unwrap();
        assert!((w.bytes_per_flop() - 0.32).abs() < 0.001);
    }

    #[test]
    fn footnote3_mmm_arithmetic_intensity() {
        // AI(MMM) = 2N^3 / (2*4N^2) = N/4.
        let w = Workload::mmm(MMM_PAPER_BLOCK).unwrap();
        assert!((w.arithmetic_intensity() - 32.0).abs() < 1e-12);
        assert!((w.bytes_per_flop() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn bs_bytes_per_option() {
        let w = Workload::black_scholes();
        assert_eq!(w.compulsory_bytes_per_unit(), 10.0);
        assert_eq!(w.perf_unit(), PerfUnit::MoptsPerSec);
    }

    #[test]
    fn mmm_flop_count() {
        let w = Workload::mmm(128).unwrap();
        assert_eq!(w.flops_per_unit(), 2.0 * 128f64.powi(3));
    }

    #[test]
    fn fft_pseudo_flops() {
        let w = Workload::fft(1024).unwrap();
        assert_eq!(w.flops_per_unit(), 5.0 * 1024.0 * 10.0);
    }

    #[test]
    fn compulsory_bandwidth_conversions() {
        // FFT-1024 at 10 GFLOP/s consumes 3.2 GB/s.
        let fft = Workload::fft(1024).unwrap();
        assert!((fft.compulsory_bandwidth_gb_s(10.0) - 3.2).abs() < 0.01);
        // BS at 100 Mopts/s consumes 1 GB/s.
        let bs = Workload::black_scholes();
        assert!((bs.compulsory_bandwidth_gb_s(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Workload::fft(1024).unwrap().to_string(), "FFT-1024");
        assert_eq!(Workload::mmm(128).unwrap().to_string(), "MMM-128");
        assert_eq!(Workload::black_scholes().to_string(), "BS");
    }

    #[test]
    fn labels() {
        assert_eq!(WorkloadKind::Mmm.label(), "MMM");
        assert_eq!(WorkloadKind::Fft.label(), "FFT");
        assert_eq!(WorkloadKind::BlackScholes.label(), "BS");
    }

    #[test]
    fn error_messages() {
        assert!(Workload::fft(12).unwrap_err().to_string().contains("power of two"));
        assert!(Workload::mmm(0).unwrap_err().to_string().contains("non-zero"));
    }
}
