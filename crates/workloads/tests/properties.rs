//! Property-based tests of the kernel implementations.

use proptest::prelude::*;
use ucore_workloads::blackscholes::OptionParams;
use ucore_workloads::fft::{dft, Complex, Direction, Fft};
use ucore_workloads::mmm::{blocked, naive, parallel, Matrix};
use ucore_workloads::Workload;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec(
        (-1.0f32..1.0, -1.0f32..1.0).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |v| Matrix::from_slice(rows, cols, &v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_inverse_round_trips(signal in complex_vec(64)) {
        let fft = Fft::new(64).unwrap();
        let mut data = signal.clone();
        fft.transform(&mut data, Direction::Forward).unwrap();
        fft.transform(&mut data, Direction::Inverse).unwrap();
        for (a, b) in data.iter().zip(&signal) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn fft_matches_reference_dft(signal in complex_vec(32)) {
        let mut fast = signal.clone();
        Fft::new(32).unwrap().transform(&mut fast, Direction::Forward).unwrap();
        let slow = dft::reference(&signal, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-2);
        }
    }

    #[test]
    fn fft_parseval(signal in complex_vec(128)) {
        let time: f64 = signal.iter().map(|c| f64::from(c.norm_sqr())).sum();
        let mut freq = signal;
        Fft::new(128).unwrap().transform(&mut freq, Direction::Forward).unwrap();
        let spectral: f64 =
            freq.iter().map(|c| f64::from(c.norm_sqr())).sum::<f64>() / 128.0;
        prop_assert!((time - spectral).abs() <= 1e-3 * time.max(1.0));
    }

    #[test]
    fn blocked_mmm_matches_naive(
        a in matrix(9, 7),
        b in matrix(7, 5),
        block in 1usize..12,
    ) {
        let tuned = blocked::multiply(&a, &b, block).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        prop_assert!(tuned.max_abs_diff(&reference) < 1e-3);
    }

    #[test]
    fn parallel_mmm_matches_naive(
        a in matrix(8, 8),
        b in matrix(8, 8),
        threads in 1usize..9,
    ) {
        let par = parallel::multiply(&a, &b, 4, threads).unwrap();
        let reference = naive::multiply(&a, &b).unwrap();
        prop_assert!(par.max_abs_diff(&reference) < 1e-3);
    }

    #[test]
    fn mmm_is_distributive(
        a in matrix(5, 5),
        b in matrix(5, 5),
        c in matrix(5, 5),
    ) {
        // A(B + C) = AB + AC, within f32 tolerance.
        let mut bc = Matrix::zeros(5, 5);
        for i in 0..5 {
            for j in 0..5 {
                bc.set(i, j, b.get(i, j) + c.get(i, j));
            }
        }
        let lhs = naive::multiply(&a, &bc).unwrap();
        let ab = naive::multiply(&a, &b).unwrap();
        let ac = naive::multiply(&a, &c).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((lhs.get(i, j) - ab.get(i, j) - ac.get(i, j)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn black_scholes_put_call_parity(
        s in 5.0f32..250.0,
        k in 5.0f32..250.0,
        r in 0.0f32..0.10,
        v in 0.05f32..0.9,
        t in 0.05f32..4.0,
    ) {
        let p = OptionParams::new(s, k, r, v, t).unwrap().price();
        let parity = s - k * (-r * t).exp();
        prop_assert!((p.call - p.put - parity).abs() < 2e-3 * s.max(k));
    }

    #[test]
    fn black_scholes_call_bounds(
        s in 5.0f32..250.0,
        k in 5.0f32..250.0,
        r in 0.0f32..0.10,
        v in 0.05f32..0.9,
        t in 0.05f32..4.0,
    ) {
        // max(0, S - K e^{-rT}) <= C <= S.
        let p = OptionParams::new(s, k, r, v, t).unwrap().price();
        let lower = (s - k * (-r * t).exp()).max(0.0);
        prop_assert!(p.call + 1e-3 * s >= lower);
        prop_assert!(p.call <= s * (1.0 + 1e-5));
    }

    #[test]
    fn arithmetic_intensity_positive_and_monotone(shift in 4u32..14) {
        let n = 1usize << shift;
        let fft = Workload::fft(n).unwrap();
        let fft_bigger = Workload::fft(n * 2).unwrap();
        prop_assert!(fft.arithmetic_intensity() > 0.0);
        prop_assert!(fft_bigger.arithmetic_intensity() > fft.arithmetic_intensity());
    }
}
