//! Differential tests: every tuned kernel against its in-tree reference.
//!
//! ## Tolerance policy
//!
//! Two distinct regimes, deliberately kept apart:
//!
//! * **Tuned vs. reference — bit for bit.** The optimized kernels
//!   (blocked/parallel MMM, radix-2/radix-4 FFT, batch Black-Scholes)
//!   reorganize *memory access*, never arithmetic: each output element
//!   receives exactly the same fused updates in exactly the same order
//!   as its reference loop. Agreement is checked with `assert_eq!` /
//!   `prop_assert_eq!` on the raw values — identical IEEE bits or bust.
//!   An epsilon here would let a reordering bug hide inside rounding
//!   noise.
//! * **Cross-algorithm — bounded error.** Bluestein's chirp-z transform
//!   computes the same DFT through a power-of-two convolution, so its
//!   rounding profile legitimately differs from the O(n²) oracle DFT.
//!   Those comparisons use an absolute per-element tolerance of
//!   `1e-3 * n.sqrt()` in f32 — generous against accumulated rounding
//!   over `n` terms of unit-magnitude inputs, far below any algorithmic
//!   error (a dropped twiddle or mis-sized convolution shows up at
//!   magnitude ~1).

use proptest::prelude::*;
use ucore_workloads::blackscholes::{batch, reference as bs_reference, OptionParams, OptionPrice};
use ucore_workloads::fft::bluestein::BluesteinFft;
use ucore_workloads::fft::radix2::Radix2Fft;
use ucore_workloads::fft::radix4::Radix4Fft;
use ucore_workloads::fft::{dft, reference as fft_reference, Complex, Direction, Fft};
use ucore_workloads::gen::{random_matrix, random_portfolio, random_signal};
use ucore_workloads::mmm::{blocked, naive, parallel, Matrix};

// ---------------------------------------------------------------------
// MMM: tuned blocked/parallel kernels vs. the reference tile loops.
// ---------------------------------------------------------------------

/// A matrix with injected exact zeros, exercising the sparsity skip in
/// both the tuned and the reference inner loops.
fn matrix_with_zeros(rows: usize, cols: usize, seed: u64, zero_every: usize) -> Matrix {
    let mut m = random_matrix(rows, cols, seed);
    if zero_every > 0 {
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            if i % zero_every == 0 {
                *v = 0.0;
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tuned blocked kernel returns the exact bits of the reference
    /// tile loops over random shapes and block sizes — including blocks
    /// of 1, blocks larger than every dimension, and blocks that do not
    /// divide the dimensions (partial edge tiles).
    #[test]
    fn blocked_matches_reference_bitwise(
        m in 1..40usize,
        k in 1..40usize,
        n in 1..40usize,
        block in prop::sample::select(vec![1usize, 2, 3, 5, 8, 16, 64]),
        seed in 0..u64::MAX / 2,
        zero_every in 0..7usize,
    ) {
        let a = matrix_with_zeros(m, k, seed, zero_every);
        let b = random_matrix(k, n, seed.wrapping_add(1));
        let tuned = blocked::multiply(&a, &b, block).unwrap();
        let reference = blocked::reference::multiply(&a, &b, block).unwrap();
        prop_assert_eq!(&tuned, &reference, "m={} k={} n={} block={}", m, k, n, block);
        // Different blockings change summation order, so only compare
        // the naive kernel approximately — this guards gross indexing
        // errors that a bit-equal-but-shared bug could mask.
        let oracle = naive::multiply(&a, &b).unwrap();
        prop_assert!(tuned.max_abs_diff(&oracle) < 1e-2 * k as f32);
    }

    /// The parallel row-band kernel (which drives the tuned
    /// `multiply_rows_to_slice`) is bit-identical to the reference
    /// row-band loops assembled band by band, for every thread count —
    /// band partitioning must not change any element's update order.
    #[test]
    fn parallel_matches_reference_rows_bitwise(
        m in 1..32usize,
        k in 1..32usize,
        n in 1..32usize,
        block in prop::sample::select(vec![1usize, 3, 8, 32]),
        threads in 1..6usize,
        seed in 0..u64::MAX / 2,
    ) {
        let a = matrix_with_zeros(m, k, seed, 5);
        let b = random_matrix(k, n, seed.wrapping_add(1));
        let tuned = parallel::multiply(&a, &b, block, threads).unwrap();

        // Reassemble the expected result with the reference band loop,
        // using the same band partition the parallel kernel uses.
        let band = m.div_ceil(threads);
        let mut expected = Matrix::zeros(m, n);
        let mut row_start = 0;
        for chunk in expected.as_mut_slice().chunks_mut(band * n) {
            let row_end = row_start + chunk.len() / n;
            blocked::reference::multiply_rows(&a, &b, chunk, block, row_start, row_end);
            row_start = row_end;
        }
        prop_assert_eq!(&tuned, &expected);
        // The band decomposition itself must also match the one-band
        // reference (k-accumulation order is row-local, so it does).
        let whole = blocked::reference::multiply(&a, &b, block).unwrap();
        prop_assert_eq!(&tuned, &whole);
    }
}

/// Blocking-boundary edge cases pinned explicitly: block == dim,
/// block == dim ± 1, and a dimension just past the 4-wide unroll.
#[test]
fn blocked_boundary_blocks_are_bit_identical() {
    for (m, k, n) in [(5, 7, 9), (8, 8, 8), (4, 4, 5), (1, 1, 1), (17, 3, 13)] {
        let a = matrix_with_zeros(m, k, 42, 3);
        let b = random_matrix(k, n, 43);
        for block in [1, n.saturating_sub(1).max(1), n, n + 1, m, k, 128] {
            let tuned = blocked::multiply(&a, &b, block).unwrap();
            let reference = blocked::reference::multiply(&a, &b, block).unwrap();
            assert_eq!(tuned, reference, "m={m} k={k} n={n} block={block}");
        }
    }
}

// ---------------------------------------------------------------------
// FFT: tuned transforms vs. the original strided-index butterflies.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tuned radix-2 transform (stage-contiguous twiddles, zipped
    /// butterflies) is bit-identical to the original strided loops for
    /// every power-of-two size, including the non-power-of-four sizes
    /// the planner routes to radix-2.
    #[test]
    fn radix2_matches_reference_bitwise(
        log2 in 1..12u32,
        seed in 0..u64::MAX / 2,
    ) {
        let n = 1usize << log2;
        let mut tuned = random_signal(n, seed);
        let mut reference = tuned.clone();
        Radix2Fft::new(n).unwrap().forward(&mut tuned);
        fft_reference::radix2_forward(&mut reference);
        prop_assert_eq!(tuned, reference, "n={}", n);
    }

    /// Likewise for the tuned radix-4 transform on powers of four.
    #[test]
    fn radix4_matches_reference_bitwise(
        log4 in 1..6u32,
        seed in 0..u64::MAX / 2,
    ) {
        let n = 1usize << (2 * log4);
        let mut tuned = random_signal(n, seed);
        let mut reference = tuned.clone();
        Radix4Fft::new(n).unwrap().forward(&mut tuned);
        fft_reference::radix4_forward(&mut reference);
        prop_assert_eq!(tuned, reference, "n={}", n);
    }

    /// Bluestein handles the non-power-of-two sizes: cross-algorithm
    /// against the O(n²) oracle DFT, within the documented tolerance
    /// (different algorithm, different rounding — see module doc).
    #[test]
    fn bluestein_matches_dft_oracle(
        n in prop::sample::select(vec![3usize, 5, 6, 7, 9, 12, 15, 21, 31, 48, 100]),
        seed in 0..u64::MAX / 2,
    ) {
        let signal = random_signal(n, seed);
        let oracle = dft::reference(&signal, Direction::Forward);
        let mut data = signal.clone();
        BluesteinFft::new(n).unwrap().transform(&mut data, Direction::Forward).unwrap();
        let tol = 1e-3 * (n as f32).sqrt();
        for (i, (got, want)) in data.iter().zip(&oracle).enumerate() {
            prop_assert!(
                (got.re - want.re).abs() < tol && (got.im - want.im).abs() < tol,
                "n={} bin {}: {:?} vs oracle {:?}", n, i, got, want
            );
        }
        // And the round trip comes back to the input.
        BluesteinFft::new(n).unwrap().transform(&mut data, Direction::Inverse).unwrap();
        for (got, want) in data.iter().zip(&signal) {
            prop_assert!((got.re - want.re).abs() < tol && (got.im - want.im).abs() < tol);
        }
    }
}

/// The planner front end dispatches to exactly the transforms the
/// reference loops model: radix-4 for powers of four, radix-2 for the
/// remaining powers of two — pinned by bit-comparing through `Fft`.
#[test]
fn planner_dispatch_is_bit_identical_to_references() {
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let plan = Fft::new(n).unwrap();
        let mut tuned = random_signal(n, n as u64);
        let mut reference = tuned.clone();
        plan.transform(&mut tuned, Direction::Forward).unwrap();
        if n.trailing_zeros() % 2 == 0 && n >= 4 {
            assert_eq!(plan.radix(), 4, "n={n}");
            fft_reference::radix4_forward(&mut reference);
        } else {
            assert_eq!(plan.radix(), 2, "n={n}");
            fft_reference::radix2_forward(&mut reference);
        }
        assert_eq!(tuned, reference, "n={n}");
    }
}

/// A delta impulse transforms to an all-ones spectrum in every size —
/// an analytic anchor independent of any in-tree implementation.
#[test]
fn impulse_spectrum_is_flat() {
    for n in [8usize, 16, 7, 12] {
        let mut data = vec![Complex::ZERO; n];
        data[0] = Complex::new(1.0, 0.0);
        if n.is_power_of_two() {
            Fft::new(n).unwrap().transform(&mut data, Direction::Forward).unwrap();
        } else {
            BluesteinFft::new(n).unwrap().transform(&mut data, Direction::Forward).unwrap();
        }
        for (k, bin) in data.iter().enumerate() {
            assert!(
                (bin.re - 1.0).abs() < 1e-4 && bin.im.abs() < 1e-4,
                "n={n} bin {k}: {bin:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Black-Scholes: batch entry points vs. the reference scalar pricer.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every batch entry point — allocating, allocation-free, parallel —
    /// produces the exact bits of the reference scalar pricer applied
    /// element by element.
    #[test]
    fn batch_pricing_matches_reference_bitwise(
        spot in 1.0..500.0f32,
        strike in 1.0..500.0f32,
        rate in -0.05..0.2f32,
        volatility in 0.01..1.5f32,
        time in 0.05..5.0f32,
        len in 1..64usize,
        threads in 1..5usize,
        seed in 0..u64::MAX / 2,
    ) {
        let mut portfolio = random_portfolio(len, seed);
        // Pin one fully proptest-chosen option alongside the random
        // portfolio so edge parameters (deep in/out of the money,
        // negative rates) are explored independently of `gen`'s ranges.
        portfolio[0] =
            OptionParams::new(spot, strike, rate, volatility, time).unwrap();

        let expected: Vec<OptionPrice> =
            portfolio.iter().map(bs_reference::price).collect();
        let serial = batch::price_all(&portfolio);
        prop_assert_eq!(&serial, &expected);

        let mut into = vec![OptionPrice { call: 0.0, put: 0.0 }; len];
        batch::price_into(&portfolio, &mut into).unwrap();
        prop_assert_eq!(&into, &expected);

        let parallel = batch::price_all_parallel(&portfolio, threads).unwrap();
        prop_assert_eq!(&parallel, &expected);
    }
}

/// Put-call parity `C - P = S - K·e^{-rT}` holds for the tuned pricer —
/// an analytic anchor independent of the reference implementation.
#[test]
fn put_call_parity_holds() {
    for params in random_portfolio(256, 7) {
        let OptionPrice { call, put } = params.price();
        let parity = f64::from(params.spot)
            - f64::from(params.strike)
                * (-f64::from(params.rate) * f64::from(params.time)).exp();
        assert!(
            (f64::from(call) - f64::from(put) - parity).abs() < 1e-2,
            "parity violated for {params:?}"
        );
    }
}
