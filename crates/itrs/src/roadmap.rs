//! Table 6: technology-scaling parameters per projection node.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use ucore_devices::TechNode;

/// Errors raised when constructing or querying the roadmap.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadmapError {
    /// The requested node is not part of the projection (e.g. 65 nm).
    NotProjected {
        /// The rejected node.
        node: TechNode,
    },
    /// A roadmap was supplied with no nodes.
    Empty,
    /// Node years must be strictly increasing.
    UnsortedYears {
        /// The earlier year in the offending pair.
        prev: u32,
        /// The year that failed to increase past it.
        next: u32,
    },
    /// A scaling parameter that must be positive and finite was not.
    InvalidScale {
        /// Name of the parameter.
        what: &'static str,
        /// The node carrying it.
        node: TechNode,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for RoadmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadmapError::NotProjected { node } => {
                write!(f, "node {node} is not in the projection roadmap")
            }
            RoadmapError::Empty => write!(f, "roadmap has no nodes"),
            RoadmapError::UnsortedYears { prev, next } => {
                write!(f, "roadmap years must strictly increase, got {prev} then {next}")
            }
            RoadmapError::InvalidScale { what, node, value } => {
                write!(f, "{what} at node {node} must be positive and finite, got {value}")
            }
        }
    }
}

impl Error for RoadmapError {}

/// One row (column, in the paper's layout) of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeParams {
    /// The technology node.
    pub node: TechNode,
    /// The year the roadmap assigns this node.
    pub year: u32,
    /// Core+cache silicon budget in mm² (576 mm² die, 25% reserved for
    /// non-compute components).
    pub core_die_budget_mm2: f64,
    /// Core+cache power budget in watts.
    pub core_power_budget_w: f64,
    /// Off-chip bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
    /// Area budget expressed in BCE units (transistor density doubles
    /// per node while the silicon budget stays fixed).
    pub max_area_bce: f64,
    /// Power per transistor relative to 40 nm.
    pub rel_power_per_transistor: f64,
    /// Bandwidth relative to 40 nm.
    pub rel_bandwidth: f64,
}

/// The scaling roadmap: a sequence of per-node parameters.
///
/// [`Roadmap::itrs_2009`] reproduces the paper's Table 6 exactly;
/// [`Roadmap::with_bandwidth_gb_s`] and friends derive the §6.2
/// alternative scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roadmap {
    nodes: Vec<NodeParams>,
}

/// The paper's total die budget in mm² (a Power7-class die).
pub const TOTAL_DIE_MM2: f64 = 576.0;

/// Fraction of the die reserved for non-compute components.
pub const NON_COMPUTE_FRACTION: f64 = 0.25;

impl Roadmap {
    /// Builds the paper's Table 6.
    pub fn itrs_2009() -> Self {
        // (node, year, bandwidth GB/s, max area BCE, rel power, rel bw)
        let rows = [
            (TechNode::N40, 2011, 180.0, 19.0, 1.0, 1.0),
            (TechNode::N32, 2013, 198.0, 37.0, 0.75, 1.1),
            (TechNode::N22, 2016, 234.0, 75.0, 0.5, 1.3),
            (TechNode::N16, 2019, 234.0, 149.0, 0.36, 1.3),
            (TechNode::N11, 2022, 252.0, 298.0, 0.25, 1.4),
        ];
        let nodes = rows
            .into_iter()
            .map(|(node, year, bw, area, pwr, relbw)| NodeParams {
                node,
                year,
                core_die_budget_mm2: TOTAL_DIE_MM2 * (1.0 - NON_COMPUTE_FRACTION),
                core_power_budget_w: 100.0,
                bandwidth_gb_s: bw,
                max_area_bce: area,
                rel_power_per_transistor: pwr,
                rel_bandwidth: relbw,
            })
            .collect();
        Roadmap { nodes }
    }

    /// Builds a roadmap from caller-supplied node rows (an ingress
    /// boundary: e.g. an alternative table loaded from external data).
    ///
    /// # Errors
    ///
    /// Returns [`RoadmapError::Empty`] for an empty table,
    /// [`RoadmapError::UnsortedYears`] if years are not strictly
    /// increasing (interpolation in [`Roadmap::at_year`] depends on
    /// this), and [`RoadmapError::InvalidScale`] if any budget or scale
    /// factor is not positive and finite.
    pub fn from_nodes(nodes: Vec<NodeParams>) -> Result<Roadmap, RoadmapError> {
        if nodes.is_empty() {
            return Err(RoadmapError::Empty);
        }
        for pair in nodes.windows(2) {
            if pair[1].year <= pair[0].year {
                return Err(RoadmapError::UnsortedYears {
                    prev: pair[0].year,
                    next: pair[1].year,
                });
            }
        }
        for p in &nodes {
            for (what, value) in [
                ("core die budget", p.core_die_budget_mm2),
                ("core power budget", p.core_power_budget_w),
                ("bandwidth", p.bandwidth_gb_s),
                ("area budget", p.max_area_bce),
                ("relative power per transistor", p.rel_power_per_transistor),
                ("relative bandwidth", p.rel_bandwidth),
            ] {
                if !value.is_finite() || value <= 0.0 {
                    return Err(RoadmapError::InvalidScale {
                        what,
                        node: p.node,
                        value,
                    });
                }
            }
        }
        Ok(Roadmap { nodes })
    }

    /// All nodes, oldest first.
    pub fn nodes(&self) -> &[NodeParams] {
        &self.nodes
    }

    /// Parameters for one node.
    ///
    /// # Errors
    ///
    /// Returns [`RoadmapError::NotProjected`] for nodes outside the
    /// projection.
    pub fn node(&self, node: TechNode) -> Result<NodeParams, RoadmapError> {
        self.nodes
            .iter()
            .find(|p| p.node == node)
            .copied()
            .ok_or(RoadmapError::NotProjected { node })
    }

    /// A copy with the starting (40 nm) bandwidth replaced and every
    /// later node rescaled by its `rel_bandwidth` factor — scenario 1
    /// (90 GB/s) and scenario 2 (1 TB/s) of §6.2.
    pub fn with_bandwidth_gb_s(&self, starting: f64) -> Roadmap {
        let nodes = self
            .nodes
            .iter()
            .map(|p| NodeParams {
                bandwidth_gb_s: starting * p.rel_bandwidth,
                ..*p
            })
            .collect();
        Roadmap { nodes }
    }

    /// A copy with a different core-area budget in mm², rescaling each
    /// node's BCE area budget proportionally — scenario 3 (216 mm²).
    pub fn with_core_area_mm2(&self, core_mm2: f64) -> Roadmap {
        let nodes = self
            .nodes
            .iter()
            .map(|p| NodeParams {
                core_die_budget_mm2: core_mm2,
                max_area_bce: p.max_area_bce * core_mm2 / p.core_die_budget_mm2,
                ..*p
            })
            .collect();
        Roadmap { nodes }
    }

    /// A copy with a different core power budget in watts — scenarios 4
    /// (200 W) and 5 (10 W).
    // ucore-lint: allow(raw-f64-api): raw watts is the external ITRS roadmap input; the `_w` suffix carries the unit at this ingress boundary
    pub fn with_power_budget_w(&self, watts: f64) -> Roadmap {
        let nodes = self
            .nodes
            .iter()
            .map(|p| NodeParams { core_power_budget_w: watts, ..*p })
            .collect();
        Roadmap { nodes }
    }

    /// Interpolated parameters at an arbitrary calendar year between the
    /// first and last node years.
    ///
    /// Scale-like quantities (area in BCE, power per transistor) are
    /// interpolated geometrically — density doubles per node, so the
    /// between-node trajectory is exponential — while bandwidth is
    /// interpolated linearly (pin counts creep roughly linearly). The
    /// node assigned is the nearest *available* one (processes ship at
    /// node years, not between them).
    ///
    /// # Errors
    ///
    /// Returns [`RoadmapError::NotProjected`] if the year falls outside
    /// the roadmap horizon.
    pub fn at_year(&self, year: u32) -> Result<NodeParams, RoadmapError> {
        let (Some(first), Some(last)) = (self.nodes.first(), self.nodes.last()) else {
            return Err(RoadmapError::Empty);
        };
        if year < first.year || year > last.year {
            // Report against the nearest end node for a meaningful error.
            return Err(RoadmapError::NotProjected { node: first.node });
        }
        if let Some(exact) = self.nodes.iter().find(|p| p.year == year) {
            return Ok(*exact);
        }
        // Unreachable while years are sorted (guaranteed by the builders
        // and validated by `from_nodes`), but a malformed roadmap must
        // degrade to an error, never panic the projection path.
        let bracket = self
            .nodes
            .iter()
            .position(|p| p.year > year)
            .and_then(|i| Some((self.nodes.get(i.checked_sub(1)?)?, self.nodes.get(i)?)));
        let Some((&lo, &hi)) = bracket else {
            return Err(RoadmapError::UnsortedYears { prev: first.year, next: last.year });
        };
        let t = f64::from(year - lo.year) / f64::from(hi.year - lo.year);
        let geo = |a: f64, b: f64| (a.ln() + t * (b.ln() - a.ln())).exp();
        let lin = |a: f64, b: f64| a + t * (b - a);
        Ok(NodeParams {
            // The fab you can actually buy at this year.
            node: if t < 0.5 { lo.node } else { hi.node },
            year,
            core_die_budget_mm2: lo.core_die_budget_mm2,
            core_power_budget_w: lo.core_power_budget_w,
            bandwidth_gb_s: lin(lo.bandwidth_gb_s, hi.bandwidth_gb_s),
            max_area_bce: geo(lo.max_area_bce, hi.max_area_bce),
            rel_power_per_transistor: geo(
                lo.rel_power_per_transistor,
                hi.rel_power_per_transistor,
            ),
            rel_bandwidth: lin(lo.rel_bandwidth, hi.rel_bandwidth),
        })
    }
}

impl Default for Roadmap {
    fn default() -> Self {
        Roadmap::itrs_2009()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_values() {
        let r = Roadmap::itrs_2009();
        assert_eq!(r.nodes().len(), 5);
        let n40 = r.node(TechNode::N40).unwrap();
        assert_eq!(n40.year, 2011);
        assert_eq!(n40.core_die_budget_mm2, 432.0);
        assert_eq!(n40.core_power_budget_w, 100.0);
        assert_eq!(n40.bandwidth_gb_s, 180.0);
        assert_eq!(n40.max_area_bce, 19.0);

        let n22 = r.node(TechNode::N22).unwrap();
        assert_eq!(n22.bandwidth_gb_s, 234.0);
        assert_eq!(n22.max_area_bce, 75.0);
        assert_eq!(n22.rel_power_per_transistor, 0.5);

        let n11 = r.node(TechNode::N11).unwrap();
        assert_eq!(n11.year, 2022);
        assert_eq!(n11.rel_bandwidth, 1.4);
    }

    #[test]
    fn area_doubles_per_node() {
        let r = Roadmap::itrs_2009();
        let areas: Vec<f64> = r.nodes().iter().map(|p| p.max_area_bce).collect();
        for pair in areas.windows(2) {
            let ratio = pair[1] / pair[0];
            assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn power_per_transistor_drops_only_4x() {
        // The dark-silicon observation: density grows 16x while power per
        // transistor falls only 4x across the roadmap.
        let r = Roadmap::itrs_2009();
        let first = r.nodes().first().unwrap();
        let last = r.nodes().last().unwrap();
        assert!((last.max_area_bce / first.max_area_bce - 15.7).abs() < 1.0);
        assert_eq!(first.rel_power_per_transistor / last.rel_power_per_transistor, 4.0);
    }

    #[test]
    fn bandwidth_grows_less_than_1_5x() {
        let r = Roadmap::itrs_2009();
        let first = r.nodes().first().unwrap().bandwidth_gb_s;
        let last = r.nodes().last().unwrap().bandwidth_gb_s;
        assert!(last / first < 1.5);
    }

    #[test]
    fn non_projected_node_is_an_error() {
        let r = Roadmap::itrs_2009();
        let err = r.node(TechNode::N65).unwrap_err();
        assert!(err.to_string().contains("65nm"));
    }

    #[test]
    fn bandwidth_scenario_rescales_all_nodes() {
        let r = Roadmap::itrs_2009().with_bandwidth_gb_s(1000.0);
        assert_eq!(r.node(TechNode::N40).unwrap().bandwidth_gb_s, 1000.0);
        assert_eq!(r.node(TechNode::N11).unwrap().bandwidth_gb_s, 1400.0);
    }

    #[test]
    fn area_scenario_halves_bce_budget() {
        let r = Roadmap::itrs_2009().with_core_area_mm2(216.0);
        let n40 = r.node(TechNode::N40).unwrap();
        assert_eq!(n40.core_die_budget_mm2, 216.0);
        assert!((n40.max_area_bce - 9.5).abs() < 1e-9);
    }

    #[test]
    fn power_scenario_replaces_budget() {
        let r = Roadmap::itrs_2009().with_power_budget_w(10.0);
        assert!(r.nodes().iter().all(|p| p.core_power_budget_w == 10.0));
    }

    #[test]
    fn die_budget_consistent_with_576mm2_minus_25_percent() {
        assert_eq!(TOTAL_DIE_MM2 * (1.0 - NON_COMPUTE_FRACTION), 432.0);
    }

    #[test]
    fn at_year_hits_node_years_exactly() {
        let r = Roadmap::itrs_2009();
        for node in r.nodes() {
            let p = r.at_year(node.year).unwrap();
            assert_eq!(&p, node);
        }
    }

    #[test]
    fn at_year_interpolates_between_nodes() {
        let r = Roadmap::itrs_2009();
        let p2012 = r.at_year(2012).unwrap();
        assert!(p2012.max_area_bce > 19.0 && p2012.max_area_bce < 37.0);
        assert!(p2012.bandwidth_gb_s > 180.0 && p2012.bandwidth_gb_s < 198.0);
        assert!(
            p2012.rel_power_per_transistor < 1.0
                && p2012.rel_power_per_transistor > 0.75
        );
        // Budgets are constants of the study, not interpolated.
        assert_eq!(p2012.core_power_budget_w, 100.0);
    }

    #[test]
    fn at_year_geometric_area_growth() {
        // Midway between 2011 (19 BCE) and 2013 (37 BCE) the geometric
        // interpolation gives sqrt(19*37) ≈ 26.5, not the linear 28.
        let r = Roadmap::itrs_2009();
        let p = r.at_year(2012).unwrap();
        assert!((p.max_area_bce - (19.0f64 * 37.0).sqrt()).abs() < 0.1);
    }

    #[test]
    fn at_year_rejects_out_of_horizon() {
        let r = Roadmap::itrs_2009();
        assert!(r.at_year(2010).is_err());
        assert!(r.at_year(2023).is_err());
    }

    #[test]
    fn from_nodes_round_trips_table6() {
        let nodes = Roadmap::itrs_2009().nodes().to_vec();
        let rebuilt = Roadmap::from_nodes(nodes).unwrap();
        assert_eq!(rebuilt, Roadmap::itrs_2009());
    }

    #[test]
    fn from_nodes_rejects_empty() {
        assert_eq!(Roadmap::from_nodes(Vec::new()).unwrap_err(), RoadmapError::Empty);
    }

    #[test]
    fn from_nodes_rejects_unsorted_years() {
        let mut nodes = Roadmap::itrs_2009().nodes().to_vec();
        nodes.swap(0, 1);
        let err = Roadmap::from_nodes(nodes).unwrap_err();
        assert!(matches!(err, RoadmapError::UnsortedYears { .. }), "{err}");
    }

    #[test]
    fn from_nodes_rejects_non_finite_scales() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
            let mut nodes = Roadmap::itrs_2009().nodes().to_vec();
            nodes[2].rel_power_per_transistor = bad;
            let err = Roadmap::from_nodes(nodes).unwrap_err();
            assert!(
                matches!(err, RoadmapError::InvalidScale { what, .. }
                    if what.contains("power per transistor")),
                "{err}"
            );
        }
    }

    #[test]
    fn at_year_is_monotone_in_capability() {
        let r = Roadmap::itrs_2009();
        let mut prev_area = 0.0;
        let mut prev_power = f64::INFINITY;
        for year in 2011..=2022 {
            let p = r.at_year(year).unwrap();
            assert!(p.max_area_bce >= prev_area);
            assert!(p.rel_power_per_transistor <= prev_power);
            prev_area = p.max_area_bce;
            prev_power = p.rel_power_per_transistor;
        }
    }
}
