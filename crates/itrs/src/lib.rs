//! # ucore-itrs — the ITRS 2009 scaling roadmap
//!
//! The paper's projections (Section 6) rest on the International
//! Technology Roadmap for Semiconductors, 2009 edition, distilled into:
//!
//! * **Table 6** — per-node budgets and scale factors for the five
//!   projection nodes 40/32/22/16/11 nm (2011–2022): a fixed 432 mm²
//!   core-area budget, a fixed 100 W core power budget, off-chip
//!   bandwidth growing only 1.4× in fifteen years, transistor density
//!   doubling per node, and power per transistor shrinking only 4×;
//! * **Figure 5** — the long-term normalized trends behind those factors
//!   (package pins, Vdd, gate capacitance, combined power reduction).
//!
//! ```
//! use ucore_itrs::Roadmap;
//! use ucore_devices::TechNode;
//!
//! let roadmap = Roadmap::itrs_2009();
//! let n11 = roadmap.node(TechNode::N11).unwrap();
//! assert_eq!(n11.max_area_bce, 298.0);
//! assert_eq!(n11.rel_power_per_transistor, 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom: model code returns typed errors; `unwrap`/`expect`
// stay legal in `#[cfg(test)]` code only (ucore-lint enforces the same
// contract at the token level).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod roadmap;
pub mod trends;

pub use roadmap::{NodeParams, Roadmap, RoadmapError};
pub use trends::{Trend, TrendPoint, TrendSeries};
