//! Figure 5: long-term ITRS 2009 trends, normalized to 2011.
//!
//! The figure plots four series over the roadmap horizon: package pin
//! count, supply voltage (Vdd), gate capacitance, and the combined
//! technology power reduction (∝ Vdd² · C_gate). The anchor values below
//! are reconstructed from the quantities the paper states — pins grow
//! < 1.5× over fifteen years, the combined power per transistor falls
//! only ~4–5× (Table 6's 1 / 0.75 / 0.5 / 0.36 / 0.25) — with yearly
//! values linearly interpolated between node years.

use serde::{Deserialize, Serialize};

/// The four trend lines of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trend {
    /// Package pin count.
    PackagePins,
    /// Supply voltage.
    Vdd,
    /// Gate capacitance.
    GateCapacitance,
    /// Combined technology power reduction (the Table 6 factor).
    CombinedPowerReduction,
}

impl Trend {
    /// All trends, in the figure's legend order.
    pub const ALL: [Trend; 4] = [
        Trend::PackagePins,
        Trend::Vdd,
        Trend::GateCapacitance,
        Trend::CombinedPowerReduction,
    ];

    /// The legend label.
    pub fn label(self) -> &'static str {
        match self {
            Trend::PackagePins => "Package pins",
            Trend::Vdd => "Vdd",
            Trend::GateCapacitance => "Gate capacitance",
            Trend::CombinedPowerReduction => "Combined technology power reduction",
        }
    }
}

/// One `(year, value)` sample of a trend, normalized to 2011 = 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendPoint {
    /// Calendar year.
    pub year: u32,
    /// Value relative to 2011.
    pub value: f64,
}

/// A full normalized series for one trend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendSeries {
    trend: Trend,
    points: Vec<TrendPoint>,
}

/// Anchor years: the node years of the projection.
const ANCHOR_YEARS: [u32; 5] = [2011, 2013, 2016, 2019, 2022];

/// Anchor values per trend at the node years (2011-normalized).
fn anchors(trend: Trend) -> [f64; 5] {
    match trend {
        // Pins grow roughly 2%/year: < 1.5x over fifteen years.
        Trend::PackagePins => [1.0, 1.04, 1.10, 1.17, 1.25],
        // Vdd creeps down slowly in the 2009 roadmap (0.97 V -> ~0.77 V).
        Trend::Vdd => [1.0, 0.95, 0.89, 0.84, 0.80],
        // Gate capacitance shrinks with feature size.
        Trend::GateCapacitance => [1.0, 0.83, 0.63, 0.51, 0.39],
        // The Table 6 factor: Vdd^2 * C to within rounding.
        Trend::CombinedPowerReduction => [1.0, 0.75, 0.5, 0.36, 0.25],
    }
}

impl TrendSeries {
    /// Builds the yearly series for a trend, 2011 through 2022, linearly
    /// interpolated between node years.
    pub fn itrs_2009(trend: Trend) -> Self {
        let anchor_vals = anchors(trend);
        let mut points = Vec::new();
        for year in ANCHOR_YEARS[0]..=ANCHOR_YEARS[4] {
            points.push(TrendPoint { year, value: interp(year, &anchor_vals) });
        }
        TrendSeries { trend, points }
    }

    /// Which trend this series describes.
    pub fn trend(&self) -> Trend {
        self.trend
    }

    /// The yearly samples.
    pub fn points(&self) -> &[TrendPoint] {
        &self.points
    }

    /// The value at a given year, if covered.
    pub fn at(&self, year: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.year == year)
            .map(|p| p.value)
    }
}

/// Linear interpolation over the anchor grid.
fn interp(year: u32, values: &[f64; 5]) -> f64 {
    if year <= ANCHOR_YEARS[0] {
        return values[0];
    }
    if year >= ANCHOR_YEARS[4] {
        return values[4];
    }
    for seg in 0..4 {
        let (y0, y1) = (ANCHOR_YEARS[seg], ANCHOR_YEARS[seg + 1]);
        if (y0..=y1).contains(&year) {
            let t = f64::from(year - y0) / f64::from(y1 - y0);
            return values[seg] + t * (values[seg + 1] - values[seg]);
        }
    }
    unreachable!("year within anchor range is covered by a segment")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_series_start_at_unity() {
        for trend in Trend::ALL {
            let s = TrendSeries::itrs_2009(trend);
            assert_eq!(s.at(2011), Some(1.0), "{}", trend.label());
        }
    }

    #[test]
    fn combined_power_matches_table6() {
        let s = TrendSeries::itrs_2009(Trend::CombinedPowerReduction);
        assert_eq!(s.at(2011), Some(1.0));
        assert_eq!(s.at(2013), Some(0.75));
        assert_eq!(s.at(2016), Some(0.5));
        assert_eq!(s.at(2019), Some(0.36));
        assert_eq!(s.at(2022), Some(0.25));
    }

    #[test]
    fn pins_grow_less_than_1_5x() {
        let s = TrendSeries::itrs_2009(Trend::PackagePins);
        for p in s.points() {
            assert!(p.value < 1.5);
            assert!(p.value >= 1.0);
        }
    }

    #[test]
    fn everything_but_pins_declines() {
        for trend in [Trend::Vdd, Trend::GateCapacitance, Trend::CombinedPowerReduction] {
            let s = TrendSeries::itrs_2009(trend);
            for pair in s.points().windows(2) {
                assert!(
                    pair[1].value <= pair[0].value + 1e-12,
                    "{} rose at {}",
                    trend.label(),
                    pair[1].year
                );
            }
        }
    }

    #[test]
    fn combined_is_consistent_with_vdd_squared_times_cap() {
        // The physics: dynamic power per transistor ∝ C · Vdd². The
        // anchors were chosen so the product tracks Table 6 within
        // rounding.
        let vdd = TrendSeries::itrs_2009(Trend::Vdd);
        let cap = TrendSeries::itrs_2009(Trend::GateCapacitance);
        let combined = TrendSeries::itrs_2009(Trend::CombinedPowerReduction);
        for year in [2013u32, 2016, 2019, 2022] {
            let predicted = vdd.at(year).unwrap().powi(2) * cap.at(year).unwrap();
            let table = combined.at(year).unwrap();
            assert!(
                (predicted - table).abs() / table < 0.07,
                "year {year}: {predicted} vs {table}"
            );
        }
    }

    #[test]
    fn yearly_coverage_is_complete() {
        let s = TrendSeries::itrs_2009(Trend::Vdd);
        assert_eq!(s.points().len(), 12); // 2011..=2022
        assert_eq!(s.at(2010), None);
        assert!(s.at(2017).is_some());
    }

    #[test]
    fn interpolation_is_between_anchors() {
        let s = TrendSeries::itrs_2009(Trend::GateCapacitance);
        let v2014 = s.at(2014).unwrap();
        assert!(v2014 < s.at(2013).unwrap());
        assert!(v2014 > s.at(2016).unwrap());
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(Trend::PackagePins.label(), "Package pins");
        assert_eq!(
            Trend::CombinedPowerReduction.label(),
            "Combined technology power reduction"
        );
    }
}
