//! Property-based tests over the roadmap and trend series.

use proptest::prelude::*;
use ucore_itrs::{Roadmap, Trend, TrendSeries};

proptest! {
    #[test]
    fn at_year_stays_within_neighbor_bounds(year in 2011u32..=2022) {
        let r = Roadmap::itrs_2009();
        let p = r.at_year(year).unwrap();
        let nodes = r.nodes();
        let lo = nodes.iter().rev().find(|n| n.year <= year).unwrap();
        let hi = nodes.iter().find(|n| n.year >= year).unwrap();
        prop_assert!(p.max_area_bce >= lo.max_area_bce - 1e-9);
        prop_assert!(p.max_area_bce <= hi.max_area_bce + 1e-9);
        prop_assert!(p.bandwidth_gb_s >= lo.bandwidth_gb_s - 1e-9);
        prop_assert!(p.bandwidth_gb_s <= hi.bandwidth_gb_s + 1e-9);
        prop_assert!(p.rel_power_per_transistor <= lo.rel_power_per_transistor + 1e-9);
        prop_assert!(p.rel_power_per_transistor >= hi.rel_power_per_transistor - 1e-9);
    }

    #[test]
    fn bandwidth_scenarios_scale_uniformly(start in 10.0f64..2000.0) {
        let r = Roadmap::itrs_2009().with_bandwidth_gb_s(start);
        for node in r.nodes() {
            prop_assert!((node.bandwidth_gb_s - start * node.rel_bandwidth).abs() < 1e-9);
        }
    }

    #[test]
    fn power_scenarios_apply_everywhere(watts in 1.0f64..1000.0) {
        let r = Roadmap::itrs_2009().with_power_budget_w(watts);
        for node in r.nodes() {
            prop_assert_eq!(node.core_power_budget_w, watts);
        }
    }

    #[test]
    fn area_scenarios_preserve_density_ratios(mm2 in 50.0f64..1000.0) {
        let base = Roadmap::itrs_2009();
        let scaled = base.with_core_area_mm2(mm2);
        for (b, s) in base.nodes().iter().zip(scaled.nodes()) {
            let expect = b.max_area_bce * mm2 / b.core_die_budget_mm2;
            prop_assert!((s.max_area_bce - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn trend_series_values_are_positive_and_bounded(year in 2011u32..=2022) {
        for trend in Trend::ALL {
            let s = TrendSeries::itrs_2009(trend);
            let v = s.at(year).unwrap();
            prop_assert!(v > 0.0);
            prop_assert!(v < 2.0, "{}: {v}", trend.label());
        }
    }
}
