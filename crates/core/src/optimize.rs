//! Sequential-core sizing: the paper's `r` sweep.
//!
//! "To determine the optimal size of the sequential core, we sweep all
//! values of r (sequential core size) up to 16 for each particular design
//! point and report the maximum speedup."
//!
//! For every candidate `r` the optimizer resolves the usable `n` from the
//! Table 1 bounds (speedup is monotone in `n`, so using every permitted
//! BCE is always optimal for the speedup objective) and evaluates the
//! design; infeasible `r` values (serial bounds violated, or no room left
//! for parallel resources) are skipped.
//!
//! ## Search strategy
//!
//! [`Optimizer::optimize`] is the tuned search. It differs from the
//! verbatim scan kept in [`Optimizer::optimize_exhaustive`] in four ways,
//! each of which provably — or, for (4), testably — preserves the result:
//!
//! 1. candidates come from a lazy iterator and infeasible probes use
//!    [`BoundSet::compute_quiet`], so the sweep allocates nothing;
//! 2. a serial-bound violation stops the sweep: the serial caps do not
//!    depend on `r`, so every larger candidate is infeasible too
//!    ([`crate::Infeasibility::is_monotone_in_r`]);
//! 3. for the speedup objective the energy breakdown is computed once for
//!    the winner instead of per candidate (selection depends only on
//!    speedup, and first-wins strict-`>` argmax over a superset with the
//!    same score order picks the same element);
//! 4. for the speedup objective the scan exploits the model's observed
//!    unimodality of speedup in `r` and stops after [`DESCENT_RUN`]
//!    consecutive strictly-descending feasible candidates — but only
//!    while the precondition holds: any infeasibility hole between
//!    feasible candidates or any rise-after-descent wiggle permanently
//!    disables early exit for that sweep, degrading it to the exhaustive
//!    scan. `tests/optimize_equiv.rs` proptests exact-bits agreement
//!    with [`Optimizer::optimize_exhaustive`] and pins the fallback.

use crate::bounds::BoundSet;
use crate::budget::Budgets;
use crate::chip::{ChipSpec, Evaluation};
use crate::energy::EnergyModel;
use crate::error::{ensure_positive, ModelError};
use crate::units::ParallelFraction;
use serde::{Deserialize, Serialize};

/// What the optimizer maximizes or minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize speedup (the paper's objective).
    MaxSpeedup,
    /// Minimize total energy per workload execution.
    MinEnergy,
    /// Minimize the energy-delay product.
    MinEnergyDelay,
}

/// The best design found by an [`Optimizer`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalDesign {
    /// The evaluation of the winning design (speedup, limiter, `n`, `r`).
    pub evaluation: Evaluation,
    /// Total energy of the winning design at the reference node
    /// (BCE-energy units).
    pub energy: f64,
}

/// Sweeps sequential-core sizes and reports the best design.
///
/// ```
/// use ucore_core::{Budgets, ChipSpec, Optimizer, ParallelFraction};
/// let opt = Optimizer::paper_default();
/// let budgets = Budgets::new(19.0, 7.4, 100.0)?;
/// let f = ParallelFraction::new(0.9)?;
/// let best = opt.optimize(&ChipSpec::asymmetric_offload(), &budgets, f)?;
/// assert!(best.evaluation.r >= 1.0 && best.evaluation.r <= 16.0);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    r_min: f64,
    r_max: f64,
    r_step: f64,
    objective: Objective,
}

impl Optimizer {
    /// The paper's sweep: integer `r` from 1 to 16, maximizing speedup.
    pub fn paper_default() -> Self {
        Optimizer {
            r_min: 1.0,
            r_max: 16.0,
            r_step: 1.0,
            objective: Objective::MaxSpeedup,
        }
    }

    /// Creates a sweep over `[r_min, r_max]` with the given step.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < r_min ≤ r_max` and `r_step > 0`.
    pub fn new(r_min: f64, r_max: f64, r_step: f64) -> Result<Self, ModelError> {
        ensure_positive("r_min", r_min)?;
        ensure_positive("r_max", r_max)?;
        ensure_positive("r_step", r_step)?;
        if r_min > r_max {
            return Err(ModelError::Infeasible {
                reason: format!("empty r sweep: r_min = {r_min} > r_max = {r_max}"),
            });
        }
        Ok(Optimizer {
            r_min,
            r_max,
            r_step,
            objective: Objective::MaxSpeedup,
        })
    }

    /// Returns a copy with a different objective.
    pub fn with_objective(&self, objective: Objective) -> Self {
        Optimizer { objective, ..*self }
    }

    /// The lower end of the `r` sweep.
    pub fn r_min(&self) -> f64 {
        self.r_min
    }

    /// The upper end of the `r` sweep.
    pub fn r_max(&self) -> f64 {
        self.r_max
    }

    /// The sweep step.
    pub fn r_step(&self) -> f64 {
        self.r_step
    }

    /// The optimization objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The candidate `r` values of this sweep.
    pub fn candidates(&self) -> Vec<f64> {
        self.candidate_values().collect()
    }

    /// The candidate `r` values as a lazy iterator — the allocation-free
    /// form [`Self::optimize`] sweeps. Produces exactly the values (and
    /// accumulated-rounding bit patterns) of [`Self::candidates`].
    pub fn candidate_values(&self) -> impl Iterator<Item = f64> {
        let mut r = self.r_min;
        let r_max = self.r_max;
        let r_step = self.r_step;
        std::iter::from_fn(move || {
            if r <= r_max + 1e-9 {
                let out = r.min(r_max);
                r += r_step;
                Some(out)
            } else {
                None
            }
        })
    }

    /// Finds the best design for `spec` under `budgets` at parallel
    /// fraction `f`.
    ///
    /// This is the tuned search (see the module docs for the four
    /// strategies); [`Self::optimize_exhaustive`] is the verbatim
    /// reference scan it must agree with bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] if *no* swept `r` yields a
    /// feasible design (for instance when the serial power bound rejects
    /// even `r = r_min`).
    pub fn optimize(
        &self,
        spec: &ChipSpec,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Result<OptimalDesign, ModelError> {
        match self.objective {
            Objective::MaxSpeedup => self.optimize_speedup(spec, budgets, f),
            Objective::MinEnergy | Objective::MinEnergyDelay => {
                self.optimize_energy_objectives(spec, budgets, f)
            }
        }
    }

    /// The speedup-objective fast path: allocation-free sweep, pruned
    /// enumeration with exhaustive fallback, and a single deferred energy
    /// breakdown for the winner.
    fn optimize_speedup(
        &self,
        spec: &ChipSpec,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Result<OptimalDesign, ModelError> {
        let mut scan = PrunedScan::new(true);
        let mut best: Option<Evaluation> = None;
        for r in self.candidate_values() {
            let evaluation = match evaluate_candidate(spec, budgets, f, r, &mut scan) {
                Ok(Some(evaluation)) => evaluation,
                Ok(None) => continue,
                Err(StopSweep) => break,
            };
            let better = match &best {
                None => true,
                Some(b) => evaluation.speedup > b.speedup,
            };
            let stop = scan.observe(evaluation.speedup.get());
            if better {
                best = Some(evaluation);
            }
            if stop {
                break;
            }
        }
        let Some(evaluation) = best else {
            return Err(self.infeasible(spec, budgets, f));
        };
        // Selection depended only on speedup; the energy number is
        // attached once, for the winner. Should the breakdown fail for
        // the winner alone (the exhaustive scan would then have skipped
        // it and picked another candidate), degrade to the reference
        // scan rather than reimplement its retry order here.
        let energy_model = EnergyModel::at_reference_node();
        match energy_model.breakdown(spec, f, evaluation.n, evaluation.r) {
            Ok(breakdown) => Ok(OptimalDesign { evaluation, energy: breakdown.total() }),
            Err(_) => self.optimize_exhaustive(spec, budgets, f),
        }
    }

    /// The energy-scored objectives need the breakdown per candidate, so
    /// they keep the per-candidate loop — allocation-free, with the
    /// provable serial-bound tail cut, but no descent pruning (energy is
    /// not unimodal in `r` in general).
    fn optimize_energy_objectives(
        &self,
        spec: &ChipSpec,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Result<OptimalDesign, ModelError> {
        let energy_model = EnergyModel::at_reference_node();
        let mut scan = PrunedScan::new(false);
        let mut best: Option<OptimalDesign> = None;
        for r in self.candidate_values() {
            let evaluation = match evaluate_candidate(spec, budgets, f, r, &mut scan) {
                Ok(Some(evaluation)) => evaluation,
                Ok(None) => continue,
                Err(StopSweep) => break,
            };
            let Ok(breakdown) = energy_model.breakdown(spec, f, evaluation.n, evaluation.r)
            else {
                continue;
            };
            let candidate = OptimalDesign {
                evaluation,
                energy: breakdown.total(),
            };
            let better = match &best {
                None => true,
                Some(b) => match self.objective {
                    Objective::MaxSpeedup => {
                        candidate.evaluation.speedup > b.evaluation.speedup
                    }
                    Objective::MinEnergy => candidate.energy < b.energy,
                    Objective::MinEnergyDelay => {
                        candidate.energy * candidate.evaluation.speedup.time()
                            < b.energy * b.evaluation.speedup.time()
                    }
                },
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or_else(|| self.infeasible(spec, budgets, f))
    }

    /// The pre-optimization sweep, verbatim: allocating candidate list,
    /// diagnostic-rendering bounds, energy breakdown for every feasible
    /// candidate, no early exit. Kept in-tree as the reference the tuned
    /// [`Self::optimize`] is differentially tested against
    /// (`tests/optimize_equiv.rs`), and as the fallback when the
    /// unimodality precondition fails in a way the pruned scan cannot
    /// repair locally.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] if no swept `r` yields a
    /// feasible design.
    pub fn optimize_exhaustive(
        &self,
        spec: &ChipSpec,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Result<OptimalDesign, ModelError> {
        let energy_model = EnergyModel::at_reference_node();
        let mut best: Option<OptimalDesign> = None;
        for r in self.candidates() {
            let Ok(bounds) = BoundSet::compute(spec, budgets, r) else {
                continue;
            };
            // Use every BCE the tightest bound permits, but never fewer
            // than the sequential core itself occupies.
            let n = bounds.n_max().max(r);
            // Designs with no parallel resources cannot run parallel work.
            if f.get() > 0.0 && spec.parallel_perf(n, r) <= 0.0 {
                continue;
            }
            let Ok(evaluation) = spec.evaluate(f, n, r, budgets) else {
                continue;
            };
            let Ok(breakdown) = energy_model.breakdown(spec, f, n, r) else {
                continue;
            };
            let candidate = OptimalDesign {
                evaluation,
                energy: breakdown.total(),
            };
            let better = match &best {
                None => true,
                Some(b) => match self.objective {
                    Objective::MaxSpeedup => {
                        candidate.evaluation.speedup > b.evaluation.speedup
                    }
                    Objective::MinEnergy => candidate.energy < b.energy,
                    Objective::MinEnergyDelay => {
                        candidate.energy * candidate.evaluation.speedup.time()
                            < b.energy * b.evaluation.speedup.time()
                    }
                },
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or_else(|| self.infeasible(spec, budgets, f))
    }

    fn infeasible(&self, spec: &ChipSpec, budgets: &Budgets, f: ParallelFraction) -> ModelError {
        ModelError::Infeasible {
            reason: format!(
                "no feasible design for {} under {budgets} at {f}",
                spec.kind()
            ),
        }
    }
}

/// Probes one candidate `r`: bounds, `n` resolution, evaluation. Returns
/// `Ok(None)` for a skipped (infeasible) candidate after informing the
/// scan state, and `Err` only for the provably-monotone serial-bound
/// violation, which the callers translate into "stop sweeping" — the
/// error value itself is never surfaced.
#[inline]
fn evaluate_candidate(
    spec: &ChipSpec,
    budgets: &Budgets,
    f: ParallelFraction,
    r: f64,
    scan: &mut PrunedScan,
) -> Result<Option<Evaluation>, StopSweep> {
    let bounds = match BoundSet::compute_quiet(spec, budgets, r) {
        Ok(bounds) => bounds,
        Err(why) if why.is_monotone_in_r() => return Err(StopSweep),
        Err(_) => {
            scan.hole();
            return Ok(None);
        }
    };
    // Use every BCE the tightest bound permits, but never fewer than the
    // sequential core itself occupies.
    let n = bounds.n_max().max(r);
    // Designs with no parallel resources cannot run parallel work.
    if f.get() > 0.0 && spec.parallel_perf(n, r) <= 0.0 {
        scan.hole();
        return Ok(None);
    }
    let Ok(evaluation) = spec.evaluate(f, n, r, budgets) else {
        scan.hole();
        return Ok(None);
    };
    Ok(Some(evaluation))
}

/// Sentinel returned by [`evaluate_candidate`] when the remaining tail
/// of an increasing `r` sweep is provably infeasible.
struct StopSweep;

/// How many consecutive strictly-descending feasible candidates the
/// pruned scan requires before declaring the speedup peak passed.
pub const DESCENT_RUN: u32 = 3;

/// State machine of the pruned argmax scan over an increasing `r` sweep.
///
/// The precondition it polices is unimodality of the score sequence:
/// scores rise (or plateau), peak once, then descend. While the
/// precondition holds, observing [`DESCENT_RUN`] consecutive strict
/// descents proves (under the precondition) that the peak is behind, and
/// the sweep may stop. Two kinds of evidence *permanently* disable early
/// exit for the sweep, degrading it to exhaustive:
///
/// * a **hole** — an infeasible candidate after at least one feasible
///   one (the feasible set is not an interval, so the shape assumption
///   is void);
/// * a **wiggle** — a strict rise after at least one strict descent
///   (directly non-unimodal).
#[derive(Debug, Clone, Copy)]
pub struct PrunedScan {
    enabled: bool,
    violated: bool,
    descents: u32,
    prev: Option<f64>,
    seen_feasible: bool,
}

impl PrunedScan {
    /// A fresh scan; `enabled = false` records the same evidence but
    /// never requests an early exit (used by objectives that must stay
    /// exhaustive).
    pub fn new(enabled: bool) -> Self {
        PrunedScan {
            enabled,
            violated: false,
            descents: 0,
            prev: None,
            seen_feasible: false,
        }
    }

    /// Records an infeasible candidate.
    pub fn hole(&mut self) {
        if self.seen_feasible {
            self.violated = true;
        }
    }

    /// Records a feasible candidate's score; returns `true` when the
    /// sweep may stop early.
    pub fn observe(&mut self, score: f64) -> bool {
        if let Some(prev) = self.prev {
            if score < prev {
                self.descents += 1;
            } else if score > prev {
                if self.descents > 0 {
                    self.violated = true;
                }
                self.descents = 0;
            } else {
                // Plateau (or NaN): consistent with unimodality, but it
                // breaks the current descent run.
                self.descents = 0;
            }
        }
        self.seen_feasible = true;
        self.prev = Some(score);
        self.enabled && !self.violated && self.descents >= DESCENT_RUN
    }

    /// Whether the unimodality precondition has been violated (the scan
    /// has degraded to exhaustive).
    pub fn is_violated(&self) -> bool {
        self.violated
    }
}

/// A pruned first-wins strict-`>` argmax over `candidates`, driven by
/// the same [`PrunedScan`] state machine [`Optimizer::optimize`] uses.
///
/// `eval` returns `None` for an infeasible candidate, or the payload and
/// its score. The result is identical to an exhaustive first-wins argmax
/// whenever the score sequence satisfies the unimodality precondition;
/// when the precondition is violated before an early exit could trigger,
/// the scan self-disables and *is* the exhaustive argmax. This free
/// function exists so the equivalence tests can drive the exact
/// production state machine with crafted score sequences.
pub fn pruned_max_scan<T>(
    candidates: impl IntoIterator<Item = f64>,
    mut eval: impl FnMut(f64) -> Option<(T, f64)>,
) -> Option<T> {
    let mut scan = PrunedScan::new(true);
    let mut best: Option<(T, f64)> = None;
    for r in candidates {
        let Some((value, score)) = eval(r) else {
            scan.hole();
            continue;
        };
        let better = match &best {
            None => true,
            Some((_, b)) => score > *b,
        };
        let stop = scan.observe(score);
        if better {
            best = Some((value, score));
        }
        if stop {
            break;
        }
    }
    best.map(|(value, _)| value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn paper_default_matches_section_six() {
        let opt = Optimizer::paper_default();
        assert_eq!(opt.r_max(), 16.0);
        assert_eq!(opt.r_step(), 1.0);
        assert_eq!(opt.objective(), Objective::MaxSpeedup);
        assert_eq!(opt.candidates().len(), 16);
    }

    #[test]
    fn candidates_cover_range() {
        let opt = Optimizer::new(1.0, 4.0, 0.5).unwrap();
        let c = opt.candidates();
        assert_eq!(c.first().copied(), Some(1.0));
        assert_eq!(c.last().copied(), Some(4.0));
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn serial_workload_prefers_biggest_core() {
        // With f = 0 the only thing that matters is perf(r): r = 16 wins
        // when power permits.
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 100.0, 100.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.0))
            .unwrap();
        assert_eq!(best.evaluation.r, 16.0);
    }

    #[test]
    fn perfectly_parallel_workload_prefers_smallest_core() {
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 1000.0, 1000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(1.0))
            .unwrap();
        assert_eq!(best.evaluation.r, 1.0);
    }

    #[test]
    fn optimum_is_at_least_any_feasible_point() {
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(75.0, 14.7, 441.0).unwrap();
        let spec = ChipSpec::heterogeneous(UCore::new(8.47, 1.27).unwrap());
        let best = opt.optimize(&spec, &budgets, f(0.99)).unwrap();
        for r in 1..=16 {
            let Ok(bounds) = BoundSet::compute(&spec, &budgets, r as f64) else {
                continue;
            };
            let n = bounds.n_max().max(r as f64);
            let Ok(s) = spec.speedup(f(0.99), n, r as f64) else {
                continue;
            };
            assert!(best.evaluation.speedup.get() + 1e-9 >= s.get(), "r = {r}");
        }
    }

    #[test]
    fn infeasible_when_power_rejects_all_r() {
        // P = 0.5: even r = 1 needs power 1 in the serial phase.
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 0.5, 100.0).unwrap();
        let err = opt
            .optimize(&ChipSpec::symmetric(), &budgets, f(0.5))
            .unwrap_err();
        assert!(matches!(err, ModelError::Infeasible { .. }));
    }

    #[test]
    fn min_energy_objective_prefers_small_core() {
        let opt = Optimizer::paper_default().with_objective(Objective::MinEnergy);
        let budgets = Budgets::new(64.0, 100.0, 1000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.5))
            .unwrap();
        // Serial energy grows with r, parallel energy is r-independent.
        assert_eq!(best.evaluation.r, 1.0);
    }

    #[test]
    fn min_energy_delay_balances_speed_and_energy() {
        let opt = Optimizer::paper_default().with_objective(Objective::MinEnergyDelay);
        let budgets = Budgets::new(64.0, 100.0, 1000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.5))
            .unwrap();
        // EDP favors some sequential performance at f = 0.5: bigger than
        // the pure-energy optimum.
        assert!(best.evaluation.r >= 1.0);
        let energy_best = opt
            .with_objective(Objective::MinEnergy)
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.5))
            .unwrap();
        assert!(best.evaluation.r >= energy_best.evaluation.r);
    }

    #[test]
    fn rejects_bad_sweep_parameters() {
        assert!(Optimizer::new(0.0, 16.0, 1.0).is_err());
        assert!(Optimizer::new(4.0, 2.0, 1.0).is_err());
        assert!(Optimizer::new(1.0, 16.0, 0.0).is_err());
    }

    #[test]
    fn power_limited_chip_reports_power_limiter() {
        use crate::bounds::Limiter;
        let opt = Optimizer::paper_default();
        // Plenty of area/bandwidth, tight power.
        let budgets = Budgets::new(298.0, 10.0, 10_000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.99))
            .unwrap();
        assert_eq!(best.evaluation.limiter, Limiter::Power);
        assert!(best.evaluation.n < 298.0);
    }
}
