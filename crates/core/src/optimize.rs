//! Sequential-core sizing: the paper's `r` sweep.
//!
//! "To determine the optimal size of the sequential core, we sweep all
//! values of r (sequential core size) up to 16 for each particular design
//! point and report the maximum speedup."
//!
//! For every candidate `r` the optimizer resolves the usable `n` from the
//! Table 1 bounds (speedup is monotone in `n`, so using every permitted
//! BCE is always optimal for the speedup objective) and evaluates the
//! design; infeasible `r` values (serial bounds violated, or no room left
//! for parallel resources) are skipped.

use crate::bounds::BoundSet;
use crate::budget::Budgets;
use crate::chip::{ChipSpec, Evaluation};
use crate::energy::EnergyModel;
use crate::error::{ensure_positive, ModelError};
use crate::units::ParallelFraction;
use serde::{Deserialize, Serialize};

/// What the optimizer maximizes or minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize speedup (the paper's objective).
    MaxSpeedup,
    /// Minimize total energy per workload execution.
    MinEnergy,
    /// Minimize the energy-delay product.
    MinEnergyDelay,
}

/// The best design found by an [`Optimizer`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalDesign {
    /// The evaluation of the winning design (speedup, limiter, `n`, `r`).
    pub evaluation: Evaluation,
    /// Total energy of the winning design at the reference node
    /// (BCE-energy units).
    pub energy: f64,
}

/// Sweeps sequential-core sizes and reports the best design.
///
/// ```
/// use ucore_core::{Budgets, ChipSpec, Optimizer, ParallelFraction};
/// let opt = Optimizer::paper_default();
/// let budgets = Budgets::new(19.0, 7.4, 100.0)?;
/// let f = ParallelFraction::new(0.9)?;
/// let best = opt.optimize(&ChipSpec::asymmetric_offload(), &budgets, f)?;
/// assert!(best.evaluation.r >= 1.0 && best.evaluation.r <= 16.0);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    r_min: f64,
    r_max: f64,
    r_step: f64,
    objective: Objective,
}

impl Optimizer {
    /// The paper's sweep: integer `r` from 1 to 16, maximizing speedup.
    pub fn paper_default() -> Self {
        Optimizer {
            r_min: 1.0,
            r_max: 16.0,
            r_step: 1.0,
            objective: Objective::MaxSpeedup,
        }
    }

    /// Creates a sweep over `[r_min, r_max]` with the given step.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < r_min ≤ r_max` and `r_step > 0`.
    pub fn new(r_min: f64, r_max: f64, r_step: f64) -> Result<Self, ModelError> {
        ensure_positive("r_min", r_min)?;
        ensure_positive("r_max", r_max)?;
        ensure_positive("r_step", r_step)?;
        if r_min > r_max {
            return Err(ModelError::Infeasible {
                reason: format!("empty r sweep: r_min = {r_min} > r_max = {r_max}"),
            });
        }
        Ok(Optimizer {
            r_min,
            r_max,
            r_step,
            objective: Objective::MaxSpeedup,
        })
    }

    /// Returns a copy with a different objective.
    pub fn with_objective(&self, objective: Objective) -> Self {
        Optimizer { objective, ..*self }
    }

    /// The lower end of the `r` sweep.
    pub fn r_min(&self) -> f64 {
        self.r_min
    }

    /// The upper end of the `r` sweep.
    pub fn r_max(&self) -> f64 {
        self.r_max
    }

    /// The sweep step.
    pub fn r_step(&self) -> f64 {
        self.r_step
    }

    /// The optimization objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The candidate `r` values of this sweep.
    pub fn candidates(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut r = self.r_min;
        while r <= self.r_max + 1e-9 {
            out.push(r.min(self.r_max));
            r += self.r_step;
        }
        out
    }

    /// Finds the best design for `spec` under `budgets` at parallel
    /// fraction `f`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] if *no* swept `r` yields a
    /// feasible design (for instance when the serial power bound rejects
    /// even `r = r_min`).
    pub fn optimize(
        &self,
        spec: &ChipSpec,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Result<OptimalDesign, ModelError> {
        let energy_model = EnergyModel::at_reference_node();
        let mut best: Option<OptimalDesign> = None;
        for r in self.candidates() {
            let Ok(bounds) = BoundSet::compute(spec, budgets, r) else {
                continue;
            };
            // Use every BCE the tightest bound permits, but never fewer
            // than the sequential core itself occupies.
            let n = bounds.n_max().max(r);
            // Designs with no parallel resources cannot run parallel work.
            if f.get() > 0.0 && spec.parallel_perf(n, r) <= 0.0 {
                continue;
            }
            let Ok(evaluation) = spec.evaluate(f, n, r, budgets) else {
                continue;
            };
            let Ok(breakdown) = energy_model.breakdown(spec, f, n, r) else {
                continue;
            };
            let candidate = OptimalDesign {
                evaluation,
                energy: breakdown.total(),
            };
            let better = match &best {
                None => true,
                Some(b) => match self.objective {
                    Objective::MaxSpeedup => {
                        candidate.evaluation.speedup > b.evaluation.speedup
                    }
                    Objective::MinEnergy => candidate.energy < b.energy,
                    Objective::MinEnergyDelay => {
                        candidate.energy * candidate.evaluation.speedup.time()
                            < b.energy * b.evaluation.speedup.time()
                    }
                },
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or_else(|| ModelError::Infeasible {
            reason: format!(
                "no feasible design for {} under {budgets} at {f}",
                spec.kind()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn paper_default_matches_section_six() {
        let opt = Optimizer::paper_default();
        assert_eq!(opt.r_max(), 16.0);
        assert_eq!(opt.r_step(), 1.0);
        assert_eq!(opt.objective(), Objective::MaxSpeedup);
        assert_eq!(opt.candidates().len(), 16);
    }

    #[test]
    fn candidates_cover_range() {
        let opt = Optimizer::new(1.0, 4.0, 0.5).unwrap();
        let c = opt.candidates();
        assert_eq!(c.first().copied(), Some(1.0));
        assert_eq!(c.last().copied(), Some(4.0));
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn serial_workload_prefers_biggest_core() {
        // With f = 0 the only thing that matters is perf(r): r = 16 wins
        // when power permits.
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 100.0, 100.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.0))
            .unwrap();
        assert_eq!(best.evaluation.r, 16.0);
    }

    #[test]
    fn perfectly_parallel_workload_prefers_smallest_core() {
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 1000.0, 1000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(1.0))
            .unwrap();
        assert_eq!(best.evaluation.r, 1.0);
    }

    #[test]
    fn optimum_is_at_least_any_feasible_point() {
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(75.0, 14.7, 441.0).unwrap();
        let spec = ChipSpec::heterogeneous(UCore::new(8.47, 1.27).unwrap());
        let best = opt.optimize(&spec, &budgets, f(0.99)).unwrap();
        for r in 1..=16 {
            let Ok(bounds) = BoundSet::compute(&spec, &budgets, r as f64) else {
                continue;
            };
            let n = bounds.n_max().max(r as f64);
            let Ok(s) = spec.speedup(f(0.99), n, r as f64) else {
                continue;
            };
            assert!(best.evaluation.speedup.get() + 1e-9 >= s.get(), "r = {r}");
        }
    }

    #[test]
    fn infeasible_when_power_rejects_all_r() {
        // P = 0.5: even r = 1 needs power 1 in the serial phase.
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 0.5, 100.0).unwrap();
        let err = opt
            .optimize(&ChipSpec::symmetric(), &budgets, f(0.5))
            .unwrap_err();
        assert!(matches!(err, ModelError::Infeasible { .. }));
    }

    #[test]
    fn min_energy_objective_prefers_small_core() {
        let opt = Optimizer::paper_default().with_objective(Objective::MinEnergy);
        let budgets = Budgets::new(64.0, 100.0, 1000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.5))
            .unwrap();
        // Serial energy grows with r, parallel energy is r-independent.
        assert_eq!(best.evaluation.r, 1.0);
    }

    #[test]
    fn min_energy_delay_balances_speed_and_energy() {
        let opt = Optimizer::paper_default().with_objective(Objective::MinEnergyDelay);
        let budgets = Budgets::new(64.0, 100.0, 1000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.5))
            .unwrap();
        // EDP favors some sequential performance at f = 0.5: bigger than
        // the pure-energy optimum.
        assert!(best.evaluation.r >= 1.0);
        let energy_best = opt
            .with_objective(Objective::MinEnergy)
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.5))
            .unwrap();
        assert!(best.evaluation.r >= energy_best.evaluation.r);
    }

    #[test]
    fn rejects_bad_sweep_parameters() {
        assert!(Optimizer::new(0.0, 16.0, 1.0).is_err());
        assert!(Optimizer::new(4.0, 2.0, 1.0).is_err());
        assert!(Optimizer::new(1.0, 16.0, 0.0).is_err());
    }

    #[test]
    fn power_limited_chip_reports_power_limiter() {
        use crate::bounds::Limiter;
        let opt = Optimizer::paper_default();
        // Plenty of area/bandwidth, tight power.
        let budgets = Budgets::new(298.0, 10.0, 10_000.0).unwrap();
        let best = opt
            .optimize(&ChipSpec::asymmetric_offload(), &budgets, f(0.99))
            .unwrap();
        assert_eq!(best.evaluation.limiter, Limiter::Power);
        assert!(best.evaluation.n < 298.0);
    }
}
