//! Iso-performance power reduction (the paper's §6.3 discussion).
//!
//! "If the goal is to achieve the same level of performance as a
//! baseline system with processors, a U-core can be used to speed up
//! parallel sections of an application while allowing the sequential
//! processor to slow down with a significant reduction in power."
//!
//! Given a baseline design's speedup, this module finds the
//! *cheapest-power* heterogeneous design that still meets it: the
//! sequential core shrinks (saving `r^(α/2)` superlinearly) while the
//! U-cores carry the parallel work.

use crate::bounds::BoundSet;
use crate::budget::Budgets;
use crate::chip::ChipSpec;
use crate::error::ModelError;
use crate::units::{ParallelFraction, Speedup};
use serde::{Deserialize, Serialize};

/// A design meeting a performance target at minimal peak power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsoPerformanceDesign {
    /// The achieved speedup (≥ the target).
    pub speedup: Speedup,
    /// Sequential-core size.
    pub r: f64,
    /// Total resources used.
    pub n: f64,
    /// Peak power across phases, in BCE units.
    pub peak_power: f64,
}

/// Peak power of a design across its two phases.
fn peak_power(spec: &ChipSpec, n: f64, r: f64, f: ParallelFraction) -> f64 {
    let serial = spec.serial_power(r);
    if f.get() > 0.0 {
        serial.max(spec.parallel_power(n, r))
    } else {
        serial
    }
}

/// Finds the minimum-peak-power design of `spec` that meets `target`
/// speedup on a workload with parallel fraction `f`, subject to
/// `budgets` (use generous budgets to explore unconstrained designs).
///
/// The search sweeps `r` on a fine grid and, for each `r`, uses the
/// smallest `n` that meets the target (power grows with `n`, so the
/// smallest feasible `n` is power-optimal for that `r`).
///
/// # Errors
///
/// Returns [`ModelError::Infeasible`] if no design within the budgets
/// meets the target.
pub fn min_power_for_target(
    spec: &ChipSpec,
    budgets: &Budgets,
    f: ParallelFraction,
    target: Speedup,
) -> Result<IsoPerformanceDesign, ModelError> {
    let mut best: Option<IsoPerformanceDesign> = None;
    let mut r = 0.25;
    while r <= 16.0 + 1e-9 {
        let Ok(bounds) = BoundSet::compute(spec, budgets, r) else {
            r += 0.25;
            continue;
        };
        let n_max = bounds.n_max();
        // Smallest n meeting the target: solve the speedup formula for
        // the parallel term, then verify.
        if let Some(n) = smallest_n_for_target(spec, f, r, target, n_max) {
            let speedup = spec.speedup(f, n, r)?;
            let power = peak_power(spec, n, r, f);
            if best.as_ref().is_none_or(|b| power < b.peak_power) {
                best = Some(IsoPerformanceDesign { speedup, r, n, peak_power: power });
            }
        }
        r += 0.25;
    }
    best.ok_or_else(|| ModelError::Infeasible {
        reason: format!("no design meets a {target} target under {budgets}"),
    })
}

/// The smallest `n ∈ [r, n_max]` for which the design meets the target,
/// found by bisection (speedup is monotone in `n`).
fn smallest_n_for_target(
    spec: &ChipSpec,
    f: ParallelFraction,
    r: f64,
    target: Speedup,
    n_max: f64,
) -> Option<f64> {
    let meets = |n: f64| {
        spec.speedup(f, n, r)
            .map(|s| s.get() + 1e-12 >= target.get())
            .unwrap_or(false)
    };
    if !meets(n_max) {
        return None;
    }
    let mut lo = r;
    let mut hi = n_max;
    if meets(lo) {
        return Some(lo);
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The §6.3 headline: how much power a heterogeneous chip saves while
/// matching a baseline design's performance.
///
/// Returns `(baseline_power, het_power, reduction_factor)`.
///
/// # Errors
///
/// Propagates infeasibility from either side.
pub fn power_reduction_vs_baseline(
    baseline: &ChipSpec,
    baseline_n: f64,
    baseline_r: f64,
    het: &ChipSpec,
    budgets: &Budgets,
    f: ParallelFraction,
) -> Result<(f64, f64, f64), ModelError> {
    let target = baseline.speedup(f, baseline_n, baseline_r)?;
    let base_power = peak_power(baseline, baseline_n, baseline_r, f);
    let design = min_power_for_target(het, budgets, f, target)?;
    Ok((base_power, design.peak_power, base_power / design.peak_power))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    fn generous() -> Budgets {
        Budgets::new(1e4, 1e4, 1e6).unwrap()
    }

    #[test]
    fn found_design_meets_target() {
        let het = ChipSpec::heterogeneous(UCore::new(10.0, 0.5).unwrap());
        let target = Speedup::new(8.0).unwrap();
        let d = min_power_for_target(&het, &generous(), f(0.99), target).unwrap();
        assert!(d.speedup.get() + 1e-9 >= 8.0);
        assert!(d.peak_power > 0.0);
    }

    #[test]
    fn efficient_ucore_cuts_power_vs_cmp_baseline() {
        // A 16-BCE asymmetric-offload CMP vs an ASIC-like u-core chip
        // matching its performance: the paper's power-saving story.
        let cmp = ChipSpec::asymmetric_offload();
        let het = ChipSpec::heterogeneous(UCore::new(27.4, 0.79).unwrap());
        let (base, saved, factor) =
            power_reduction_vs_baseline(&cmp, 16.0, 4.0, &het, &generous(), f(0.99))
                .unwrap();
        assert!(saved < base, "het {saved} should undercut cmp {base}");
        assert!(factor > 2.0, "reduction was only {factor}x");
    }

    #[test]
    fn unreachable_target_is_infeasible() {
        let het = ChipSpec::heterogeneous(UCore::new(2.0, 1.0).unwrap());
        let tight = Budgets::new(8.0, 8.0, 8.0).unwrap();
        let err = min_power_for_target(
            &het,
            &tight,
            f(0.9),
            Speedup::new(1000.0).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::Infeasible { .. }));
    }

    #[test]
    fn serial_workload_saves_by_shrinking_the_core() {
        // With f = 0, the minimum-power design matching a sqrt(4) = 2x
        // target is exactly r = 4 — no parallel resources needed.
        let het = ChipSpec::heterogeneous(UCore::new(100.0, 0.1).unwrap());
        let d = min_power_for_target(
            &het,
            &generous(),
            f(0.0),
            Speedup::new(2.0).unwrap(),
        )
        .unwrap();
        assert!((d.r - 4.0).abs() < 0.3, "r = {}", d.r);
        assert!((d.peak_power - d.r.powf(0.875)).abs() < 0.2);
    }

    #[test]
    fn higher_target_costs_more_power() {
        let het = ChipSpec::heterogeneous(UCore::new(10.0, 0.5).unwrap());
        let low = min_power_for_target(&het, &generous(), f(0.99), Speedup::new(4.0).unwrap())
            .unwrap();
        let high =
            min_power_for_target(&het, &generous(), f(0.99), Speedup::new(16.0).unwrap())
                .unwrap();
        assert!(high.peak_power > low.peak_power);
    }

    #[test]
    fn smallest_n_is_tight() {
        let het = ChipSpec::heterogeneous(UCore::new(10.0, 1.0).unwrap());
        let target = Speedup::new(9.9).unwrap();
        let d = min_power_for_target(&het, &generous(), f(1.0), target).unwrap();
        // At f = 1, speedup = mu (n - r): n - r ≈ 0.99.
        assert!((d.speedup.get() - 9.9).abs() < 0.01);
        assert!(d.n - d.r < 1.1);
    }
}
