//! Sequential-core performance and power laws.
//!
//! Hill and Marty use **Pollack's Law** — sequential performance grows with
//! the square root of the area invested (`perf_seq(r) = √r`) — as the
//! default relationship between a sequential core's size `r` (in BCE) and
//! its performance. Chung et al. add a **serial power law**: power grows
//! super-linearly with performance, `power = perf^α`, with α estimated at
//! 1.75 from Intel's energy-per-instruction trend data (Grochowski et al.).
//! Combining the two, a sequential core of area `r` consumes power
//! `(√r)^α = r^(α/2)`.

use crate::error::{ensure_positive, ModelError};
use serde::{Deserialize, Serialize};

/// The paper's default exponent relating sequential power to performance.
pub const DEFAULT_ALPHA: f64 = 1.75;

/// The exponent used by the paper's scenario 6 ("serial power") study.
pub const SCENARIO_ALPHA: f64 = 2.25;

/// A law mapping sequential-core area `r` (in BCE) to performance
/// (relative to one BCE).
///
/// The trait is sealed by construction: the model only ever consumes it via
/// the concrete [`PollackLaw`], but the trait allows experiments with other
/// exponents (see the `ablation_pollack` bench).
pub trait SequentialLaw {
    /// Performance of a sequential core built from `r` BCE of area.
    ///
    /// Implementations must be monotonically non-decreasing in `r` and
    /// satisfy `perf(1) = 1` (one BCE of area gives one BCE of
    /// performance).
    fn perf(&self, r: f64) -> f64;

    /// Inverse of [`perf`](Self::perf): the area needed for a target
    /// performance.
    fn area_for_perf(&self, perf: f64) -> f64;
}

/// Pollack's Law with a configurable exponent: `perf(r) = r^exponent`.
///
/// The classic rule of thumb uses `exponent = 0.5`.
///
/// ```
/// use ucore_core::{PollackLaw, SequentialLaw};
/// let law = PollackLaw::default();
/// assert_eq!(law.perf(4.0), 2.0);
/// assert_eq!(law.area_for_perf(2.0), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PollackLaw {
    exponent: f64,
}

impl PollackLaw {
    /// Creates a Pollack-style law `perf(r) = r^exponent`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] if the exponent is not positive
    /// and finite.
    pub fn new(exponent: f64) -> Result<Self, ModelError> {
        ensure_positive("pollack exponent", exponent)?;
        Ok(PollackLaw { exponent })
    }

    /// The exponent of this law.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl Default for PollackLaw {
    /// The canonical square-root law, `perf(r) = √r`.
    fn default() -> Self {
        PollackLaw { exponent: 0.5 }
    }
}

impl SequentialLaw for PollackLaw {
    fn perf(&self, r: f64) -> f64 {
        r.powf(self.exponent)
    }

    fn area_for_perf(&self, perf: f64) -> f64 {
        perf.powf(1.0 / self.exponent)
    }
}

/// The super-linear relationship between sequential performance and power:
/// `power(perf) = perf^α`.
///
/// Under Pollack's square-root law this means a sequential core of area `r`
/// consumes `r^(α/2)` BCE units of power.
///
/// ```
/// use ucore_core::SerialPowerLaw;
/// let law = SerialPowerLaw::paper_default();
/// // A core 4x the area of a BCE: perf 2, power 2^1.75 ≈ 3.36.
/// let p = law.power_of_area(4.0);
/// assert!((p - 4f64.powf(1.75 / 2.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SerialPowerLaw {
    alpha: f64,
}

impl SerialPowerLaw {
    /// Creates a power law with the given α.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] if `alpha` is not positive and
    /// finite.
    pub fn new(alpha: f64) -> Result<Self, ModelError> {
        ensure_positive("alpha", alpha)?;
        Ok(SerialPowerLaw { alpha })
    }

    /// The paper's default law (α = 1.75).
    pub fn paper_default() -> Self {
        SerialPowerLaw { alpha: DEFAULT_ALPHA }
    }

    /// The paper's scenario-6 law (α = 2.25), modeling a sequential core
    /// whose power grows faster with performance.
    pub fn scenario_six() -> Self {
        SerialPowerLaw { alpha: SCENARIO_ALPHA }
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Power consumed by a core delivering performance `perf` (BCE units).
    // ucore-lint: allow(raw-f64-api): perf here is the dimensionless BCE-normalized ratio the power law is defined over, not a measured quantity
    pub fn power_of_perf(&self, perf: f64) -> f64 {
        perf.powf(self.alpha)
    }

    /// Power consumed by a sequential core of area `r` BCE, assuming
    /// Pollack's square-root law: `r^(α/2)`.
    pub fn power_of_area(&self, r: f64) -> f64 {
        r.powf(self.alpha / 2.0)
    }

    /// The largest sequential-core area whose power fits within budget `P`:
    /// inverts the serial power bound `r^(α/2) ≤ P` to `r ≤ P^(2/α)`.
    pub fn max_area_for_power(&self, power_budget: f64) -> f64 {
        power_budget.powf(2.0 / self.alpha)
    }
}

impl Default for SerialPowerLaw {
    fn default() -> Self {
        SerialPowerLaw::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pollack_default_is_square_root() {
        let law = PollackLaw::default();
        assert_eq!(law.exponent(), 0.5);
        assert!((law.perf(16.0) - 4.0).abs() < 1e-12);
        assert!((law.perf(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pollack_inverse_round_trips() {
        let law = PollackLaw::new(0.4).unwrap();
        for &r in &[1.0, 2.0, 7.5, 100.0] {
            let p = law.perf(r);
            assert!((law.area_for_perf(p) - r).abs() < 1e-9, "r = {r}");
        }
    }

    #[test]
    fn pollack_rejects_bad_exponent() {
        assert!(PollackLaw::new(0.0).is_err());
        assert!(PollackLaw::new(-1.0).is_err());
        assert!(PollackLaw::new(f64::NAN).is_err());
    }

    #[test]
    fn serial_power_paper_default_alpha() {
        assert_eq!(SerialPowerLaw::paper_default().alpha(), 1.75);
        assert_eq!(SerialPowerLaw::scenario_six().alpha(), 2.25);
        assert_eq!(SerialPowerLaw::default(), SerialPowerLaw::paper_default());
    }

    #[test]
    fn power_of_area_matches_formula() {
        let law = SerialPowerLaw::paper_default();
        for &r in &[1.0f64, 2.0, 4.0, 9.0] {
            let expect = r.powf(0.875);
            assert!((law.power_of_area(r) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn bce_core_consumes_unit_power() {
        // By construction, a 1-BCE core delivers perf 1 at power 1.
        let law = SerialPowerLaw::paper_default();
        assert!((law.power_of_area(1.0) - 1.0).abs() < 1e-15);
        assert!((law.power_of_perf(1.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn max_area_inverts_power_of_area() {
        let law = SerialPowerLaw::paper_default();
        for &p in &[1.0, 2.0, 7.4, 100.0] {
            let r = law.max_area_for_power(p);
            assert!((law.power_of_area(r) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn higher_alpha_means_hungrier_core() {
        let mild = SerialPowerLaw::paper_default();
        let harsh = SerialPowerLaw::scenario_six();
        assert!(harsh.power_of_area(4.0) > mild.power_of_area(4.0));
        // ... and a smaller core for the same budget.
        assert!(harsh.max_area_for_power(10.0) < mild.max_area_for_power(10.0));
    }
}
