//! Mixed U-core chips (the paper's §6.3 "mixing and matching" prospect).
//!
//! The paper's projections give each heterogeneous chip a single U-core
//! type, but its discussion suggests fabricating *several* U-core fabrics
//! on one die — e.g. an MMM ASIC next to a GPU fabric for bandwidth-bound
//! FFTs — powering on whichever suits the running kernel. This module
//! models that: the parallel area `n − r` is partitioned among U-core
//! types, and the parallel work is split among kernels, each routed to its
//! fabric.

use crate::error::{ensure_positive, ModelError};
use crate::seq::{PollackLaw, SequentialLaw};
use crate::ucore::UCore;
use crate::units::{ParallelFraction, Speedup};
use serde::{Deserialize, Serialize};

/// One fabric in a mixed chip: a U-core type, the share of the parallel
/// area it occupies, and the share of parallel work routed to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UCorePartition {
    /// The U-core filling this region.
    pub ucore: UCore,
    /// Fraction of the parallel area `n − r` given to this fabric
    /// (all shares sum to 1).
    pub area_share: f64,
    /// Fraction of the parallel work executed on this fabric
    /// (all weights sum to 1).
    pub work_share: f64,
}

/// A chip whose parallel area is split among several U-core fabrics.
///
/// Only the fabric executing the current kernel is powered on, following
/// the paper's "powered on-demand for suitable tasks" scenario; the
/// others are dark silicon.
///
/// ```
/// use ucore_core::{MixedChip, ParallelFraction, UCore, UCorePartition};
/// let mmm_asic = UCore::new(27.4, 0.79)?;
/// let gpu = UCore::new(2.88, 0.63)?;
/// let chip = MixedChip::new(
///     19.0,
///     1.0,
///     vec![
///         UCorePartition { ucore: mmm_asic, area_share: 0.3, work_share: 0.5 },
///         UCorePartition { ucore: gpu, area_share: 0.7, work_share: 0.5 },
///     ],
/// )?;
/// let f = ParallelFraction::new(0.99)?;
/// assert!(chip.speedup(f)?.get() > 1.0);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedChip {
    n: f64,
    r: f64,
    partitions: Vec<UCorePartition>,
    law: PollackLaw,
}

impl MixedChip {
    /// Creates a mixed chip with total area `n`, sequential core `r`, and
    /// the given fabric partition.
    ///
    /// # Errors
    ///
    /// Returns an error if `n`/`r` are invalid, `r ≥ n`, the partition is
    /// empty, any share is non-positive, or the area/work shares do not
    /// each sum to 1 (within 1e-6).
    pub fn new(
        n: f64,
        r: f64,
        partitions: Vec<UCorePartition>,
    ) -> Result<Self, ModelError> {
        ensure_positive("n", n)?;
        ensure_positive("r", r)?;
        if r >= n {
            return Err(ModelError::SequentialExceedsTotal { r, n });
        }
        if partitions.is_empty() {
            return Err(ModelError::Infeasible {
                reason: "mixed chip needs at least one u-core partition".into(),
            });
        }
        let mut area_sum = 0.0;
        let mut work_sum = 0.0;
        for p in &partitions {
            ensure_positive("area share", p.area_share)?;
            ensure_positive("work share", p.work_share)?;
            area_sum += p.area_share;
            work_sum += p.work_share;
        }
        if (area_sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::InvalidPartition { share_sum: area_sum });
        }
        if (work_sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::InvalidPartition { share_sum: work_sum });
        }
        Ok(MixedChip {
            n,
            r,
            partitions,
            law: PollackLaw::default(),
        })
    }

    /// Total resources in BCE.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// Sequential-core size in BCE.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The fabric partition.
    pub fn partitions(&self) -> &[UCorePartition] {
        &self.partitions
    }

    /// Speedup over one BCE for a workload with parallel fraction `f`,
    /// where each fabric executes its `work_share` of the parallel time.
    ///
    /// `Speedup = 1 / ((1−f)/perf(r) + Σ_k f·w_k/(µ_k·a_k·(n−r)))`
    ///
    /// # Errors
    ///
    /// Currently infallible for a constructed chip, but returns `Result`
    /// for consistency with the rest of the API.
    pub fn speedup(&self, f: ParallelFraction) -> Result<Speedup, ModelError> {
        let serial_term = f.serial() / self.law.perf(self.r);
        let parallel_area = self.n - self.r;
        let parallel_term: f64 = if f.get() > 0.0 {
            self.partitions
                .iter()
                .map(|p| {
                    f.get() * p.work_share / (p.ucore.mu() * p.area_share * parallel_area)
                })
                .sum()
        } else {
            0.0
        };
        Speedup::new(1.0 / (serial_term + parallel_term))
    }

    /// Peak power across phases, in BCE units: the maximum of the serial
    /// core's power and each fabric's active power (only one fabric is on
    /// at a time).
    pub fn peak_power(&self, alpha: f64) -> f64 {
        let serial = self.law.perf(self.r).powf(alpha);
        let parallel_area = self.n - self.r;
        self.partitions
            .iter()
            .map(|p| p.ucore.phi() * p.area_share * parallel_area)
            .fold(serial, f64::max)
    }

    /// Splits the parallel area optimally among the fabrics for the given
    /// work shares: minimizing parallel time yields
    /// `a_k ∝ √(w_k / µ_k)` (Lagrange multiplier on `Σ a_k = 1`).
    ///
    /// Returns a copy of the chip with the optimal area shares.
    pub fn with_optimal_shares(&self) -> MixedChip {
        let weights: Vec<f64> = self
            .partitions
            .iter()
            .map(|p| (p.work_share / p.ucore.mu()).sqrt())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut chip = self.clone();
        for (p, w) in chip.partitions.iter_mut().zip(&weights) {
            p.area_share = w / total;
        }
        chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    fn part(mu: f64, phi: f64, area: f64, work: f64) -> UCorePartition {
        UCorePartition {
            ucore: UCore::new(mu, phi).unwrap(),
            area_share: area,
            work_share: work,
        }
    }

    #[test]
    fn single_partition_matches_heterogeneous() {
        let u = UCore::new(5.0, 0.5).unwrap();
        let chip = MixedChip::new(19.0, 1.0, vec![part(5.0, 0.5, 1.0, 1.0)]).unwrap();
        let het = crate::speedup::heterogeneous(
            f(0.99),
            19.0,
            1.0,
            &u,
            &PollackLaw::default(),
        )
        .unwrap();
        let mixed = chip.speedup(f(0.99)).unwrap();
        assert!((mixed.get() - het.get()).abs() < 1e-12);
    }

    #[test]
    fn shares_must_sum_to_one() {
        let bad_area = MixedChip::new(
            19.0,
            1.0,
            vec![part(5.0, 0.5, 0.3, 0.5), part(2.0, 1.0, 0.3, 0.5)],
        );
        assert!(matches!(bad_area, Err(ModelError::InvalidPartition { .. })));
        let bad_work = MixedChip::new(
            19.0,
            1.0,
            vec![part(5.0, 0.5, 0.5, 0.2), part(2.0, 1.0, 0.5, 0.2)],
        );
        assert!(bad_work.is_err());
    }

    #[test]
    fn empty_partition_rejected() {
        assert!(MixedChip::new(19.0, 1.0, vec![]).is_err());
        assert!(MixedChip::new(1.0, 1.0, vec![part(1.0, 1.0, 1.0, 1.0)]).is_err());
    }

    #[test]
    fn optimal_shares_beat_naive_split() {
        // One fast fabric, one slow; equal work. Optimal split should give
        // the slow fabric more area and strictly beat the 50/50 split.
        let naive = MixedChip::new(
            100.0,
            1.0,
            vec![part(100.0, 1.0, 0.5, 0.5), part(1.0, 1.0, 0.5, 0.5)],
        )
        .unwrap();
        let tuned = naive.with_optimal_shares();
        assert!(tuned.partitions()[1].area_share > 0.5);
        assert!(
            tuned.speedup(f(0.999)).unwrap().get()
                > naive.speedup(f(0.999)).unwrap().get()
        );
    }

    #[test]
    fn optimal_shares_closed_form() {
        // a_k ∝ sqrt(w_k / mu_k).
        let chip = MixedChip::new(
            10.0,
            1.0,
            vec![part(4.0, 1.0, 0.5, 0.5), part(1.0, 1.0, 0.5, 0.5)],
        )
        .unwrap()
        .with_optimal_shares();
        // sqrt(0.5/4) : sqrt(0.5/1) = 1 : 2.
        let a0 = chip.partitions()[0].area_share;
        let a1 = chip.partitions()[1].area_share;
        assert!((a1 / a0 - 2.0).abs() < 1e-9);
        assert!((a0 + a1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peak_power_takes_maximum_phase() {
        let chip = MixedChip::new(
            17.0,
            16.0, // big sequential core: serial phase dominates power
            vec![part(5.0, 0.1, 1.0, 1.0)],
        )
        .unwrap();
        let serial_power = 16f64.powf(0.875);
        assert!((chip.peak_power(1.75) - serial_power).abs() < 1e-9);

        let chip2 = MixedChip::new(101.0, 1.0, vec![part(1.0, 1.0, 1.0, 1.0)]).unwrap();
        // Parallel phase: 100 BCE-equivalent power beats the 1-BCE core.
        assert!((chip2.peak_power(1.75) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn serial_workload_ignores_fabrics() {
        let chip = MixedChip::new(19.0, 4.0, vec![part(100.0, 5.0, 1.0, 1.0)]).unwrap();
        assert!((chip.speedup(f(0.0)).unwrap().get() - 2.0).abs() < 1e-12);
    }
}
