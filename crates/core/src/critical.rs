//! Critical sections in Amdahl's Law (Eyerman & Eeckhout, ISCA 2010 —
//! the paper's related work \[50\]).
//!
//! Real parallel code is not "uniform, infinitely divisible and
//! perfectly scheduled": some of the parallel fraction executes inside
//! critical sections that serialize when they contend. Eyerman and
//! Eeckhout's probabilistic model splits the parallel fraction `f` into
//! a contended part and refines Amdahl's denominator:
//!
//! `time = (1−f) + f·(1−f_cs)/n + f_cs·f·(c_prob·f_cs·f + (1−c_prob·f_cs·f)/n)`
//!
//! where `f_cs` is the fraction of parallel work inside critical
//! sections and `c_prob` the contention probability. At `c_prob = 0`
//! the model collapses to Amdahl; at `c_prob = 1, f_cs = 1` the
//! "parallel" work fully serializes.
//!
//! This module applies the same refinement to the U-core machine: the
//! parallel fabric delivers `µ(n−r)` on contention-free work, while
//! contended critical sections execute at the *sequential* core's rate
//! (they are serial work, and the paper's §6.3 notes custom logic and
//! FPGAs can pipeline such irregular sections — modeled by an optional
//! critical-section accelerator factor).

use crate::error::{ensure_positive, ModelError};
use crate::seq::{PollackLaw, SequentialLaw};
use crate::ucore::UCore;
use crate::units::{ParallelFraction, Speedup};
use serde::{Deserialize, Serialize};

/// A workload with critical sections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalSectionWorkload {
    /// Amdahl parallel fraction `f`.
    pub f: ParallelFraction,
    /// Fraction of the parallel work inside critical sections,
    /// `f_cs ∈ [0, 1]`.
    pub f_cs: f64,
    /// Probability a critical-section entry contends, `∈ [0, 1]`.
    pub contention: f64,
}

impl CriticalSectionWorkload {
    /// Creates a critical-section workload description.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFraction`] if `f_cs` or `contention`
    /// leaves `[0, 1]`.
    pub fn new(
        f: ParallelFraction,
        f_cs: f64,
        contention: f64,
    ) -> Result<Self, ModelError> {
        for value in [f_cs, contention] {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(ModelError::InvalidFraction { value });
            }
        }
        Ok(CriticalSectionWorkload { f, f_cs, contention })
    }

    /// The fraction of total time that serializes due to contended
    /// critical sections: `f · f_cs · contention`.
    pub fn serialized_fraction(&self) -> f64 {
        self.f.get() * self.f_cs * self.contention
    }

    /// Speedup on a symmetric machine of `n` BCE cores (Eyerman &
    /// Eeckhout's base setting; cores are BCE-sized, `perf = 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] for `n ≤ 0`.
    pub fn speedup_symmetric(&self, n: f64) -> Result<Speedup, ModelError> {
        ensure_positive("n", n)?;
        let f = self.f.get();
        let serial = self.f.serial();
        let contended = self.serialized_fraction();
        let parallel = f - contended;
        Speedup::new(1.0 / (serial + contended + parallel / n))
    }

    /// Speedup on the paper's heterogeneous machine: a sequential core
    /// of size `r` runs serial work *and* contended critical sections
    /// (optionally sped up by `cs_accel ≥ 1`, modeling the §6.3
    /// observation that FPGAs/custom logic can pipeline irregular
    /// sections); the U-cores run the contention-free parallel work.
    ///
    /// # Errors
    ///
    /// Propagates `n`/`r` validation errors.
    pub fn speedup_heterogeneous(
        &self,
        n: f64,
        r: f64,
        ucore: &UCore,
        cs_accel: f64,
        law: &PollackLaw,
    ) -> Result<Speedup, ModelError> {
        ensure_positive("n", n)?;
        ensure_positive("r", r)?;
        ensure_positive("cs accel", cs_accel)?;
        if r > n {
            return Err(ModelError::SequentialExceedsTotal { r, n });
        }
        let contended = self.serialized_fraction();
        let parallel = self.f.get() - contended;
        if parallel > 0.0 && n - r <= 0.0 {
            return Err(ModelError::Infeasible {
                reason: format!("no u-core area left with r = n = {n}"),
            });
        }
        let seq_perf = law.perf(r);
        let mut time = self.f.serial() / seq_perf + contended / (seq_perf * cs_accel);
        if parallel > 0.0 {
            time += parallel / (ucore.mu() * (n - r));
        }
        Speedup::new(1.0 / time)
    }

    /// The asymptote of [`speedup_symmetric`](Self::speedup_symmetric)
    /// as `n → ∞`: contention caps scaling below Amdahl's `1/(1−f)`.
    pub fn scaling_ceiling(&self) -> f64 {
        1.0 / (self.f.serial() + self.serialized_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn no_contention_recovers_amdahl() {
        let w = CriticalSectionWorkload::new(f(0.9), 0.5, 0.0).unwrap();
        let s = w.speedup_symmetric(64.0).unwrap().get();
        let amdahl = crate::speedup::amdahl(f(0.9), 64.0).unwrap().get();
        assert!((s - amdahl).abs() < 1e-12);
    }

    #[test]
    fn full_contention_serializes_critical_sections() {
        let w = CriticalSectionWorkload::new(f(1.0), 1.0, 1.0).unwrap();
        // Everything is a contended critical section: no speedup at all.
        let s = w.speedup_symmetric(1024.0).unwrap().get();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_caps_scaling_below_amdahl() {
        let w = CriticalSectionWorkload::new(f(0.99), 0.2, 0.5).unwrap();
        let ceiling = w.scaling_ceiling();
        let amdahl_limit = 1.0 / 0.01;
        assert!(ceiling < amdahl_limit);
        // And huge machines approach the ceiling from below.
        let s = w.speedup_symmetric(1e9).unwrap().get();
        assert!((s - ceiling).abs() / ceiling < 1e-6);
        assert!(s < ceiling + 1e-9);
    }

    #[test]
    fn more_contention_hurts_monotonically() {
        let mut prev = f64::INFINITY;
        for c in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = CriticalSectionWorkload::new(f(0.95), 0.3, c).unwrap();
            let s = w.speedup_symmetric(256.0).unwrap().get();
            assert!(s <= prev + 1e-12, "contention {c}");
            prev = s;
        }
    }

    #[test]
    fn heterogeneous_without_critical_sections_matches_base_model() {
        let u = UCore::new(10.0, 0.5).unwrap();
        let law = PollackLaw::default();
        let w = CriticalSectionWorkload::new(f(0.99), 0.0, 1.0).unwrap();
        let with_cs = w
            .speedup_heterogeneous(19.0, 2.0, &u, 1.0, &law)
            .unwrap()
            .get();
        let base = crate::speedup::heterogeneous(f(0.99), 19.0, 2.0, &u, &law)
            .unwrap()
            .get();
        assert!((with_cs - base).abs() < 1e-12);
    }

    #[test]
    fn big_sequential_core_helps_contended_workloads() {
        // The Hill-Marty moral survives the extension: contended critical
        // sections run on the sequential core, so a contended workload
        // prefers a beefier one.
        let u = UCore::new(10.0, 0.5).unwrap();
        let law = PollackLaw::default();
        let contended = CriticalSectionWorkload::new(f(0.99), 0.5, 0.8).unwrap();
        let small_r = contended
            .speedup_heterogeneous(64.0, 1.0, &u, 1.0, &law)
            .unwrap()
            .get();
        let big_r = contended
            .speedup_heterogeneous(64.0, 16.0, &u, 1.0, &law)
            .unwrap()
            .get();
        assert!(big_r > small_r);
    }

    #[test]
    fn cs_accelerator_recovers_lost_speedup() {
        // Section 6.3's suggestion: pipeline irregular critical sections
        // on reconfigurable fabric.
        let u = UCore::new(10.0, 0.5).unwrap();
        let law = PollackLaw::default();
        let w = CriticalSectionWorkload::new(f(0.99), 0.5, 0.8).unwrap();
        let plain = w
            .speedup_heterogeneous(64.0, 4.0, &u, 1.0, &law)
            .unwrap()
            .get();
        let accelerated = w
            .speedup_heterogeneous(64.0, 4.0, &u, 8.0, &law)
            .unwrap()
            .get();
        assert!(accelerated > 1.5 * plain);
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        assert!(CriticalSectionWorkload::new(f(0.9), 1.5, 0.5).is_err());
        assert!(CriticalSectionWorkload::new(f(0.9), 0.5, -0.1).is_err());
        assert!(CriticalSectionWorkload::new(f(0.9), f64::NAN, 0.5).is_err());
        let w = CriticalSectionWorkload::new(f(0.9), 0.5, 0.5).unwrap();
        assert!(w.speedup_symmetric(0.0).is_err());
        let u = UCore::bce_equivalent();
        let law = PollackLaw::default();
        assert!(w.speedup_heterogeneous(4.0, 8.0, &u, 1.0, &law).is_err());
        assert!(w.speedup_heterogeneous(4.0, 4.0, &u, 1.0, &law).is_err());
    }
}
