//! Error types for model construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating the analytical model.
///
/// Every public constructor and evaluation function in this crate validates
/// its arguments and reports violations through this type rather than
/// panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parallel fraction `f` outside the interval `[0, 1]`.
    InvalidFraction {
        /// The rejected value.
        value: f64,
    },
    /// A quantity that must be strictly positive and finite was not.
    NonPositive {
        /// Name of the offending parameter (e.g. `"mu"`, `"area"`).
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A quantity that must be finite was NaN or infinite.
    NotFinite {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// The sequential-core allocation `r` exceeds the total resources `n`.
    SequentialExceedsTotal {
        /// Sequential-core size in BCE.
        r: f64,
        /// Total resources in BCE.
        n: f64,
    },
    /// No feasible design exists under the given budgets.
    ///
    /// For example, the serial power bound `r^(α/2) ≤ P` may reject even
    /// the smallest sequential core, or the budgets leave no room for any
    /// parallel resources.
    Infeasible {
        /// Human-readable explanation of which bound failed.
        reason: String,
    },
    /// A U-core partition's area shares do not form a valid partition.
    InvalidPartition {
        /// Sum of the shares that was expected to be 1.
        share_sum: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidFraction { value } => {
                write!(f, "parallel fraction {value} is outside [0, 1]")
            }
            ModelError::NonPositive { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            ModelError::NotFinite { what } => {
                write!(f, "{what} must be finite")
            }
            ModelError::SequentialExceedsTotal { r, n } => {
                write!(f, "sequential core size r = {r} exceeds total resources n = {n}")
            }
            ModelError::Infeasible { reason } => {
                write!(f, "no feasible design: {reason}")
            }
            ModelError::InvalidPartition { share_sum } => {
                write!(f, "u-core area shares sum to {share_sum}, expected 1")
            }
        }
    }
}

impl Error for ModelError {}

/// A coarse classification of model errors, used by callers that handle
/// whole classes uniformly (e.g. the sweep engine treats every
/// `Infeasibility` as an expected [`Outcome`], and everything else as a
/// validation failure at an ingress boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    /// The input failed validation: out of range, non-finite, or
    /// structurally inconsistent. Retrying with the same input cannot
    /// succeed.
    InvalidInput,
    /// The input was valid but no feasible design exists under it — an
    /// expected, informative outcome of tight budgets.
    Infeasibility,
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorCategory::InvalidInput => "invalid input",
            ErrorCategory::Infeasibility => "infeasibility",
        })
    }
}

impl ModelError {
    /// Which [`ErrorCategory`] this error belongs to.
    pub fn category(&self) -> ErrorCategory {
        match self {
            ModelError::Infeasible { .. } => ErrorCategory::Infeasibility,
            ModelError::InvalidFraction { .. }
            | ModelError::NonPositive { .. }
            | ModelError::NotFinite { .. }
            | ModelError::SequentialExceedsTotal { .. }
            | ModelError::InvalidPartition { .. } => ErrorCategory::InvalidInput,
        }
    }
}

/// Validates that `value` is strictly positive and finite.
pub(crate) fn ensure_positive(what: &'static str, value: f64) -> Result<f64, ModelError> {
    if !value.is_finite() {
        return Err(ModelError::NotFinite { what });
    }
    if value <= 0.0 {
        return Err(ModelError::NonPositive { what, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (ModelError::InvalidFraction { value: 1.5 }, "parallel fraction"),
            (
                ModelError::NonPositive { what: "mu", value: -1.0 },
                "mu must be positive",
            ),
            (ModelError::NotFinite { what: "phi" }, "phi must be finite"),
            (
                ModelError::SequentialExceedsTotal { r: 4.0, n: 2.0 },
                "exceeds total resources",
            ),
            (
                ModelError::Infeasible { reason: "serial power".into() },
                "no feasible design",
            ),
            (
                ModelError::InvalidPartition { share_sum: 0.5 },
                "shares sum to",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg:?}");
        }
    }

    #[test]
    fn ensure_positive_accepts_positive() {
        assert_eq!(ensure_positive("x", 2.5).unwrap(), 2.5);
    }

    #[test]
    fn ensure_positive_rejects_zero_negative_nan_inf() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -1.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
