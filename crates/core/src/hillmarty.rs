//! Validation against Hill and Marty's original results.
//!
//! Chung et al. build on *"Amdahl's Law in the Multicore Era"* (IEEE
//! Computer, 2008); before trusting the extensions, this module
//! reproduces the base paper's published observations, which double as
//! regression anchors for the speedup formulas:
//!
//! 1. symmetric chips want bigger cores as `f` falls;
//! 2. asymmetric chips dominate symmetric ones;
//! 3. dynamic chips dominate both;
//! 4. the worked numbers of their Figure 2 (e.g. `n = 256, f = 0.975`:
//!    best symmetric speedup ≈ 51.2 at `r = 7.1`, best asymmetric
//!    ≈ 125 at `r ≈ 41`, best dynamic ≈ 186 with `r = 256`).

use crate::error::ModelError;
use crate::seq::PollackLaw;
use crate::speedup::{asymmetric, dynamic, symmetric};
use crate::units::ParallelFraction;
use serde::{Deserialize, Serialize};

/// The best `(r, speedup)` of one Hill-Marty machine at a chip size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillMartyOptimum {
    /// The optimal sequential-core size.
    pub r: f64,
    /// The achieved speedup.
    pub speedup: f64,
}

/// One of Hill and Marty's three machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HillMartyMachine {
    /// `n/r` cores of size `r`.
    Symmetric,
    /// One `r`-core plus `n − r` BCEs, all active in parallel phases.
    Asymmetric,
    /// All `n` BCEs morph between one big core and `n` small ones.
    Dynamic,
}

/// Optimizes `r` for a Hill-Marty machine with *no* power or bandwidth
/// constraints — the original pure-area model — over a fine grid.
///
/// # Errors
///
/// Returns an error only for invalid `f`/`n` combinations (never for
/// `n ≥ 1`).
pub fn optimize(
    machine: HillMartyMachine,
    f: ParallelFraction,
    n: f64,
) -> Result<HillMartyOptimum, ModelError> {
    crate::error::ensure_positive("n", n)?;
    let law = PollackLaw::default();
    let mut best = HillMartyOptimum { r: 1.0, speedup: 0.0 };
    let steps = 4000usize;
    for i in 0..=steps {
        let r = 1.0 + (n - 1.0) * i as f64 / steps as f64;
        let s = match machine {
            HillMartyMachine::Symmetric => symmetric(f, n, r, &law),
            HillMartyMachine::Asymmetric => asymmetric(f, n, r, &law),
            HillMartyMachine::Dynamic => dynamic(f, n, r, &law),
        };
        if let Ok(s) = s {
            if s.get() > best.speedup {
                best = HillMartyOptimum { r, speedup: s.get() };
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    /// Hill & Marty, figure 2 discussion: "for n = 256 and f = 0.975,
    /// the best speedup [symmetric] is 51.2 using 36 cores of 7.1 BCEs
    /// each."
    #[test]
    fn published_symmetric_point() {
        let best = optimize(HillMartyMachine::Symmetric, f(0.975), 256.0).unwrap();
        assert!((best.speedup - 51.2).abs() < 0.5, "speedup {}", best.speedup);
        // Their 7.1-BCE figure assumes an integer number of cores; the
        // continuous optimum sits just below, on a very flat objective.
        assert!((6.0..8.0).contains(&best.r), "r {}", best.r);
    }

    /// "for f = 0.975 and n = 256, the best asymmetric speedup is
    /// 125.0."
    #[test]
    fn published_asymmetric_point() {
        let best = optimize(HillMartyMachine::Asymmetric, f(0.975), 256.0).unwrap();
        assert!((best.speedup - 125.0).abs() < 1.5, "speedup {}", best.speedup);
        // The optimum sits at a fat sequential core (~66 BCEs), far from
        // either extreme.
        assert!((40.0..100.0).contains(&best.r), "r {}", best.r);
    }

    /// "for f = 0.975 and n = 256, dynamic multicore chips can reach a
    /// speedup of 186.5."
    #[test]
    fn published_dynamic_point() {
        let best = optimize(HillMartyMachine::Dynamic, f(0.975), 256.0).unwrap();
        assert!((best.speedup - 186.5).abs() < 2.0, "speedup {}", best.speedup);
        // Dynamic serial phase wants all resources.
        assert!(best.r > 250.0);
    }

    /// "speedup_symmetric ... for f = 0.5 is maximized with one core of
    /// 256 BCEs" — low parallelism wants the biggest core.
    #[test]
    fn symmetric_low_f_wants_one_big_core() {
        let best = optimize(HillMartyMachine::Symmetric, f(0.5), 256.0).unwrap();
        assert!(best.r > 200.0, "r = {}", best.r);
    }

    /// f = 0.999 wants many small cores.
    #[test]
    fn symmetric_high_f_wants_small_cores() {
        let best = optimize(HillMartyMachine::Symmetric, f(0.999), 256.0).unwrap();
        assert!(best.r < 4.0, "r = {}", best.r);
    }

    /// The dominance chain the original paper establishes.
    #[test]
    fn dynamic_beats_asymmetric_beats_symmetric() {
        for &fv in &[0.5, 0.9, 0.975, 0.99, 0.999] {
            for &n in &[16.0, 64.0, 256.0, 1024.0] {
                let sym = optimize(HillMartyMachine::Symmetric, f(fv), n).unwrap();
                let asym = optimize(HillMartyMachine::Asymmetric, f(fv), n).unwrap();
                let dyn_ = optimize(HillMartyMachine::Dynamic, f(fv), n).unwrap();
                assert!(asym.speedup + 1e-6 >= sym.speedup, "f={fv} n={n}");
                assert!(dyn_.speedup + 1e-6 >= asym.speedup, "f={fv} n={n}");
            }
        }
    }

    /// Hill & Marty's "costly" corollary: doubling chip resources less
    /// than doubles symmetric speedup at imperfect f.
    #[test]
    fn symmetric_scaling_is_sublinear() {
        let s256 = optimize(HillMartyMachine::Symmetric, f(0.99), 256.0)
            .unwrap()
            .speedup;
        let s512 = optimize(HillMartyMachine::Symmetric, f(0.99), 512.0)
            .unwrap()
            .speedup;
        assert!(s512 < 2.0 * s256);
        assert!(s512 > s256);
    }

    #[test]
    fn rejects_bad_n() {
        assert!(optimize(HillMartyMachine::Symmetric, f(0.5), 0.0).is_err());
        assert!(optimize(HillMartyMachine::Symmetric, f(0.5), f64::NAN).is_err());
    }
}
