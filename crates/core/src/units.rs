//! Validated scalar quantities used throughout the model.
//!
//! The model works in *BCE units*: performance relative to one Base Core
//! Equivalent, power relative to the active power of one BCE, bandwidth
//! relative to the workload's compulsory bandwidth on one BCE. The newtypes
//! here keep the dimensionally distinct quantities from being mixed up and
//! enforce the domain restrictions (`f ∈ [0, 1]`, speedups positive).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The fraction of execution time that can be parallelized, `f ∈ [0, 1]`.
///
/// In Amdahl's formulation this is the fraction of the *original*
/// single-core execution time spent in code that the parallel resources
/// (BCE cores or U-cores) can speed up.
///
/// ```
/// use ucore_core::ParallelFraction;
/// let f = ParallelFraction::new(0.99)?;
/// assert_eq!(f.get(), 0.99);
/// assert!((f.serial() - 0.01).abs() < 1e-12);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ParallelFraction(f64);

impl ParallelFraction {
    /// A fully serial workload (`f = 0`).
    pub const SERIAL: ParallelFraction = ParallelFraction(0.0);
    /// A perfectly parallel workload (`f = 1`).
    pub const PERFECT: ParallelFraction = ParallelFraction(1.0);

    /// Creates a parallel fraction.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFraction`] unless `0 ≤ f ≤ 1`.
    pub fn new(f: f64) -> Result<Self, ModelError> {
        if f.is_finite() && (0.0..=1.0).contains(&f) {
            Ok(ParallelFraction(f))
        } else {
            Err(ModelError::InvalidFraction { value: f })
        }
    }

    /// The parallel fraction as a plain `f64`.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The serial fraction, `1 − f`.
    pub fn serial(self) -> f64 {
        1.0 - self.0
    }

    /// The set of `f` values the paper sweeps in its projection figures.
    pub fn paper_sweep() -> Vec<ParallelFraction> {
        [0.5, 0.9, 0.99, 0.999]
            .iter()
            .map(|&f| ParallelFraction(f))
            .collect()
    }
}

impl fmt::Display for ParallelFraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f={:.3}", self.0)
    }
}

impl TryFrom<f64> for ParallelFraction {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        ParallelFraction::new(value)
    }
}

/// A speedup relative to a single BCE core; always positive and finite.
///
/// ```
/// use ucore_core::Speedup;
/// let s = Speedup::new(4.0)?;
/// assert!(s > Speedup::UNIT);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Speedup(f64);

impl Speedup {
    /// The speedup of a single BCE core over itself.
    pub const UNIT: Speedup = Speedup(1.0);

    /// Creates a speedup value.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] unless the value is positive
    /// and finite.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        crate::error::ensure_positive("speedup", value).map(Speedup)
    }

    /// The speedup as a plain `f64`.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The execution time this speedup implies, relative to one BCE (`1/s`).
    pub fn time(self) -> f64 {
        1.0 / self.0
    }
}

impl fmt::Display for Speedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}x", self.0)
    }
}

impl TryFrom<f64> for Speedup {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Speedup::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_accepts_bounds() {
        assert_eq!(ParallelFraction::new(0.0).unwrap(), ParallelFraction::SERIAL);
        assert_eq!(ParallelFraction::new(1.0).unwrap(), ParallelFraction::PERFECT);
        assert_eq!(ParallelFraction::new(0.5).unwrap().get(), 0.5);
    }

    #[test]
    fn fraction_rejects_out_of_range() {
        assert!(ParallelFraction::new(-0.1).is_err());
        assert!(ParallelFraction::new(1.1).is_err());
        assert!(ParallelFraction::new(f64::NAN).is_err());
        assert!(ParallelFraction::new(f64::INFINITY).is_err());
    }

    #[test]
    fn fraction_serial_complements() {
        let f = ParallelFraction::new(0.9).unwrap();
        assert!((f.get() + f.serial() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn paper_sweep_matches_figures() {
        let sweep = ParallelFraction::paper_sweep();
        let values: Vec<f64> = sweep.iter().map(|f| f.get()).collect();
        assert_eq!(values, vec![0.5, 0.9, 0.99, 0.999]);
    }

    #[test]
    fn speedup_rejects_non_positive() {
        assert!(Speedup::new(0.0).is_err());
        assert!(Speedup::new(-3.0).is_err());
        assert!(Speedup::new(f64::NAN).is_err());
    }

    #[test]
    fn speedup_time_is_reciprocal() {
        let s = Speedup::new(8.0).unwrap();
        assert!((s.time() - 0.125).abs() < 1e-15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ParallelFraction::new(0.999).unwrap().to_string(), "f=0.999");
        assert_eq!(Speedup::new(2.0).unwrap().to_string(), "2.000x");
    }

    #[test]
    fn try_from_round_trips() {
        let f = ParallelFraction::try_from(0.25).unwrap();
        assert_eq!(f.get(), 0.25);
        let s = Speedup::try_from(2.5).unwrap();
        assert_eq!(s.get(), 2.5);
    }

    #[test]
    fn serde_round_trip() {
        let f = ParallelFraction::new(0.9).unwrap();
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(json, "0.9");
        let back: ParallelFraction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
