//! The speedup formulas: Amdahl's Law and its multicore extensions.
//!
//! All formulas report speedup relative to the performance of a single BCE
//! core, take the parallel fraction `f`, the total resources `n` (BCE of
//! area), and the resources dedicated to the sequential core `r`, and
//! assume parallel work is uniform, infinitely divisible and perfectly
//! scheduled.
//!
//! | Model | Parallel-phase performance | Serial-phase performance |
//! |---|---|---|
//! | symmetric | `(n/r)·perf(r)` | `perf(r)` |
//! | asymmetric | `perf(r) + (n−r)` | `perf(r)` |
//! | asymmetric-offload | `n − r` (big core powered off) | `perf(r)` |
//! | dynamic | `n` | `perf(r)` |
//! | heterogeneous | `µ·(n−r)` | `perf(r)` |

use crate::error::ModelError;
use crate::seq::{PollackLaw, SequentialLaw};
use crate::ucore::UCore;
use crate::units::{ParallelFraction, Speedup};

/// Validates the common `(n, r)` preconditions shared by all multicore
/// formulas: positive finite, and `r ≤ n`.
fn validate_n_r(n: f64, r: f64) -> Result<(), ModelError> {
    crate::error::ensure_positive("n", n)?;
    crate::error::ensure_positive("r", r)?;
    if r > n {
        return Err(ModelError::SequentialExceedsTotal { r, n });
    }
    Ok(())
}

/// Classic Amdahl's Law: fraction `f` of the work is sped up by factor `s`.
///
/// `Speedup = 1 / (f/s + (1 − f))`
///
/// ```
/// use ucore_core::{amdahl, ParallelFraction};
/// let f = ParallelFraction::new(0.5)?;
/// // Half the program infinitely accelerated: 2x total.
/// let s = amdahl(f, 1e18)?;
/// assert!((s.get() - 2.0).abs() < 1e-9);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
///
/// # Errors
///
/// Returns [`ModelError::NonPositive`] if `s` is not positive and finite.
pub fn amdahl(f: ParallelFraction, s: f64) -> Result<Speedup, ModelError> {
    crate::error::ensure_positive("s", s)?;
    Speedup::new(1.0 / (f.get() / s + f.serial()))
}

/// Hill-Marty symmetric multicore: `n/r` identical cores of size `r`.
///
/// `Speedup = 1 / ((1−f)/perf(r) + f·r/(n·perf(r)))`
///
/// # Errors
///
/// Returns an error if `n` or `r` is invalid or `r > n`.
pub fn symmetric(
    f: ParallelFraction,
    n: f64,
    r: f64,
    law: &PollackLaw,
) -> Result<Speedup, ModelError> {
    validate_n_r(n, r)?;
    let perf = law.perf(r);
    let denom = f.serial() / perf + f.get() * r / (n * perf);
    Speedup::new(1.0 / denom)
}

/// Hill-Marty asymmetric multicore: one big core of size `r` plus `n − r`
/// BCE cores; during parallel sections *all* cores contribute.
///
/// `Speedup = 1 / ((1−f)/perf(r) + f/(perf(r) + n − r))`
///
/// # Errors
///
/// Returns an error if `n` or `r` is invalid or `r > n`.
pub fn asymmetric(
    f: ParallelFraction,
    n: f64,
    r: f64,
    law: &PollackLaw,
) -> Result<Speedup, ModelError> {
    validate_n_r(n, r)?;
    let perf = law.perf(r);
    let denom = f.serial() / perf + f.get() / (perf + n - r);
    Speedup::new(1.0 / denom)
}

/// The paper's **asymmetric-offload** variant: the power-hungry sequential
/// core is powered off during parallel sections, so only the `n − r` BCE
/// cores contribute then.
///
/// `Speedup = 1 / ((1−f)/perf(r) + f/(n − r))`
///
/// This is the CMP baseline used in all the paper's projections ("AsymCMP").
///
/// # Errors
///
/// Returns an error if `n` or `r` is invalid, `r > n`, or `r = n` with
/// `f > 0` (no parallel resources at all would give zero parallel
/// performance).
pub fn asymmetric_offload(
    f: ParallelFraction,
    n: f64,
    r: f64,
    law: &PollackLaw,
) -> Result<Speedup, ModelError> {
    validate_n_r(n, r)?;
    let parallel_perf = n - r;
    if f.get() > 0.0 && parallel_perf <= 0.0 {
        return Err(ModelError::Infeasible {
            reason: format!("asymmetric-offload with r = n = {n} has no parallel resources"),
        });
    }
    let perf = law.perf(r);
    let denom = if f.get() > 0.0 {
        f.serial() / perf + f.get() / parallel_perf
    } else {
        f.serial() / perf
    };
    Speedup::new(1.0 / denom)
}

/// Hill-Marty dynamic multicore: all `n` resources act as one fast core in
/// serial sections (performance `perf(r)` with `r` the portion usable
/// sequentially) and as `n` BCE cores in parallel sections.
///
/// `Speedup = 1 / ((1−f)/perf(r) + f/n)`
///
/// The paper omits this machine from its plots because no measurable 2010
/// technology implements it, but includes the observation that power or
/// bandwidth budgets capture the same effect; it is provided here for
/// completeness and cross-checking.
///
/// # Errors
///
/// Returns an error if `n` or `r` is invalid or `r > n`.
pub fn dynamic(
    f: ParallelFraction,
    n: f64,
    r: f64,
    law: &PollackLaw,
) -> Result<Speedup, ModelError> {
    validate_n_r(n, r)?;
    let perf = law.perf(r);
    let denom = f.serial() / perf + f.get() / n;
    Speedup::new(1.0 / denom)
}

/// The paper's heterogeneous model: a sequential core of size `r` plus
/// `n − r` BCE of U-cores with relative performance `µ`.
///
/// `Speedup = 1 / ((1−f)/perf(r) + f/(µ·(n − r)))`
///
/// The conventional core does not contribute during parallel sections.
///
/// ```
/// use ucore_core::{heterogeneous, ParallelFraction, PollackLaw, UCore};
/// let f = ParallelFraction::new(0.99)?;
/// let asic = UCore::new(27.4, 0.79)?;
/// let law = PollackLaw::default();
/// let het = heterogeneous(f, 19.0, 4.0, &asic, &law)?;
/// // Much faster than the same chip with plain BCE cores.
/// let cmp = ucore_core::asymmetric_offload(f, 19.0, 4.0, &law)?;
/// assert!(het.get() > cmp.get());
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
///
/// # Errors
///
/// Returns an error if `n` or `r` is invalid, `r > n`, or `r = n` with
/// `f > 0`.
pub fn heterogeneous(
    f: ParallelFraction,
    n: f64,
    r: f64,
    ucore: &UCore,
    law: &PollackLaw,
) -> Result<Speedup, ModelError> {
    validate_n_r(n, r)?;
    let parallel_perf = ucore.mu() * (n - r);
    if f.get() > 0.0 && parallel_perf <= 0.0 {
        return Err(ModelError::Infeasible {
            reason: format!("heterogeneous with r = n = {n} has no u-core area"),
        });
    }
    let perf = law.perf(r);
    let denom = if f.get() > 0.0 {
        f.serial() / perf + f.get() / parallel_perf
    } else {
        f.serial() / perf
    };
    Speedup::new(1.0 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    fn law() -> PollackLaw {
        PollackLaw::default()
    }

    #[test]
    fn amdahl_limits() {
        // No parallelism: no speedup regardless of s.
        assert!((amdahl(f(0.0), 100.0).unwrap().get() - 1.0).abs() < 1e-12);
        // Perfect parallelism: speedup = s.
        assert!((amdahl(f(1.0), 100.0).unwrap().get() - 100.0).abs() < 1e-9);
        // f = 0.9, s -> inf: limit 10.
        assert!((amdahl(f(0.9), 1e15).unwrap().get() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn amdahl_rejects_bad_s() {
        assert!(amdahl(f(0.5), 0.0).is_err());
        assert!(amdahl(f(0.5), -2.0).is_err());
    }

    #[test]
    fn symmetric_single_bce_is_unit() {
        let s = symmetric(f(0.5), 1.0, 1.0, &law()).unwrap();
        assert!((s.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hill_marty_symmetric_published_point() {
        // Hill & Marty's worked example: n = 256, r = 1, f = 0.999
        // gives speedup = 1/((0.001)/1 + 0.999/256) ≈ 204.
        let s = symmetric(f(0.999), 256.0, 1.0, &law()).unwrap();
        assert!((s.get() - 204.0).abs() < 1.0, "got {}", s.get());
    }

    #[test]
    fn hill_marty_asymmetric_beats_symmetric_at_moderate_f() {
        // One of Hill & Marty's key results: asymmetric tops symmetric.
        let n = 256.0;
        for &fv in &[0.5, 0.9, 0.975] {
            let best_sym = (1..=256)
                .map(|r| symmetric(f(fv), n, r as f64, &law()).unwrap().get())
                .fold(f64::MIN, f64::max);
            let best_asym = (1..=256)
                .map(|r| asymmetric(f(fv), n, r as f64, &law()).unwrap().get())
                .fold(f64::MIN, f64::max);
            assert!(
                best_asym >= best_sym,
                "f = {fv}: asym {best_asym} < sym {best_sym}"
            );
        }
    }

    #[test]
    fn dynamic_dominates_asymmetric() {
        let n = 64.0;
        for &fv in &[0.5, 0.9, 0.99] {
            for r in 1..=16 {
                let d = dynamic(f(fv), n, r as f64, &law()).unwrap().get();
                let a = asymmetric(f(fv), n, r as f64, &law()).unwrap().get();
                assert!(d + 1e-9 >= a, "f = {fv}, r = {r}: dynamic {d} < asym {a}");
            }
        }
    }

    #[test]
    fn offload_below_asymmetric_for_same_design() {
        // Powering off the big core during parallel sections loses its
        // contribution, so offload <= asymmetric pointwise.
        let n = 32.0;
        for r in 1..=16 {
            let a = asymmetric(f(0.9), n, r as f64, &law()).unwrap().get();
            let o = asymmetric_offload(f(0.9), n, r as f64, &law()).unwrap().get();
            assert!(o <= a + 1e-12);
        }
    }

    #[test]
    fn heterogeneous_with_unit_ucore_equals_offload() {
        let u = UCore::bce_equivalent();
        for &fv in &[0.0, 0.5, 0.9, 0.999] {
            for r in 1..8 {
                let h = heterogeneous(f(fv), 16.0, r as f64, &u, &law())
                    .unwrap()
                    .get();
                let o = asymmetric_offload(f(fv), 16.0, r as f64, &law())
                    .unwrap()
                    .get();
                assert!((h - o).abs() < 1e-12, "f = {fv}, r = {r}");
            }
        }
    }

    #[test]
    fn heterogeneous_parallel_perf_scales_with_mu() {
        // At f = 1 the speedup is exactly µ(n − r).
        let u = UCore::new(10.0, 1.0).unwrap();
        let s = heterogeneous(f(1.0), 21.0, 1.0, &u, &law()).unwrap();
        assert!((s.get() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn serial_only_workload_depends_only_on_r() {
        let u = UCore::new(100.0, 0.1).unwrap();
        let s = heterogeneous(f(0.0), 64.0, 4.0, &u, &law()).unwrap();
        assert!((s.get() - 2.0).abs() < 1e-12); // sqrt(4)
    }

    #[test]
    fn r_equal_n_rejected_when_parallel_work_exists() {
        assert!(asymmetric_offload(f(0.5), 4.0, 4.0, &law()).is_err());
        let u = UCore::bce_equivalent();
        assert!(heterogeneous(f(0.5), 4.0, 4.0, &u, &law()).is_err());
        // ... but fine for a fully serial workload.
        assert!(asymmetric_offload(f(0.0), 4.0, 4.0, &law()).is_ok());
    }

    #[test]
    fn r_greater_than_n_rejected() {
        let u = UCore::bce_equivalent();
        assert!(symmetric(f(0.5), 4.0, 8.0, &law()).is_err());
        assert!(asymmetric(f(0.5), 4.0, 8.0, &law()).is_err());
        assert!(dynamic(f(0.5), 4.0, 8.0, &law()).is_err());
        assert!(heterogeneous(f(0.5), 4.0, 8.0, &u, &law()).is_err());
    }

    #[test]
    fn more_parallelism_never_hurts() {
        let u = UCore::new(3.41, 0.74).unwrap();
        let mut prev = 0.0;
        for &fv in &[0.0, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let s = heterogeneous(f(fv), 19.0, 2.0, &u, &law()).unwrap().get();
            assert!(s >= prev, "speedup should rise with f");
            prev = s;
        }
    }
}
