//! U-core characterization: the `(µ, φ)` design space.
//!
//! A **U-core** is an unconventional computing core — custom logic (ASIC),
//! an FPGA fabric, or a GPGPU — modeled abstractly: one BCE of area filled
//! with a given U-core type executes parallel code at `µ` times the
//! performance of a BCE core while consuming `φ` times its power.

use crate::error::{ensure_positive, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relative performance and power of a BCE-sized U-core.
///
/// * `µ` (mu): performance relative to a BCE core (`µ > 1` ⇒ accelerator).
/// * `φ` (phi): active power relative to a BCE core (`φ < 1` ⇒ power saver).
///
/// ```
/// use ucore_core::UCore;
/// // Table 5: GTX285 running MMM.
/// let gtx285_mmm = UCore::new(3.41, 0.74)?;
/// assert!(gtx285_mmm.mu() > 1.0);
/// assert!(gtx285_mmm.energy_efficiency_gain() > 1.0);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UCore {
    mu: f64,
    phi: f64,
}

/// A qualitative classification of where a U-core sits in the `(µ, φ)`
/// design space, following the discussion in Section 3.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UCoreClass {
    /// `µ > 1, φ ≥ 1`: faster but at least as power-hungry as a BCE.
    Accelerator,
    /// `µ > 1, φ < 1`: faster *and* lower power — wins on both axes.
    EfficientAccelerator,
    /// `µ ≤ 1, φ < 1`: same or lower performance at lower power.
    PowerSaver,
    /// `µ ≤ 1, φ ≥ 1`: dominated by a plain BCE core in this workload.
    Dominated,
}

impl UCore {
    /// Creates a U-core with relative performance `mu` and relative power
    /// `phi`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] unless both parameters are
    /// positive and finite.
    // ucore-lint: allow(raw-f64-api): UCore is the validated ingress boundary where raw Table-5 calibration values become typed (mu, phi) state
    pub fn new(mu: f64, phi: f64) -> Result<Self, ModelError> {
        ensure_positive("mu", mu)?;
        ensure_positive("phi", phi)?;
        Ok(UCore { mu, phi })
    }

    /// A U-core indistinguishable from a BCE core (`µ = φ = 1`).
    ///
    /// With this U-core the heterogeneous model degenerates exactly to the
    /// asymmetric-offload model, which is useful for cross-checking.
    pub fn bce_equivalent() -> Self {
        UCore { mu: 1.0, phi: 1.0 }
    }

    /// Relative performance per BCE of area.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Relative active power per BCE of area.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Energy-efficiency gain over a BCE core: `µ/φ`.
    ///
    /// This is the factor by which the U-core reduces the energy of the
    /// parallel work it executes (performance up by µ, power up by φ).
    pub fn energy_efficiency_gain(&self) -> f64 {
        self.mu / self.phi
    }

    /// Where this U-core sits in the `(µ, φ)` design space.
    pub fn class(&self) -> UCoreClass {
        match (self.mu > 1.0, self.phi < 1.0) {
            (true, false) => UCoreClass::Accelerator,
            (true, true) => UCoreClass::EfficientAccelerator,
            (false, true) => UCoreClass::PowerSaver,
            (false, false) => UCoreClass::Dominated,
        }
    }

    /// Bandwidth consumed by one BCE-sized U-core, in compulsory-bandwidth
    /// units.
    ///
    /// The paper assumes bandwidth scales linearly with performance, so a
    /// U-core running `µ` times faster consumes `µ` units.
    pub fn bandwidth_per_bce(&self) -> f64 {
        self.mu
    }
}

impl fmt::Display for UCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u-core(mu={:.3}, phi={:.3})", self.mu, self.phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(UCore::new(0.0, 1.0).is_err());
        assert!(UCore::new(1.0, 0.0).is_err());
        assert!(UCore::new(-1.0, 1.0).is_err());
        assert!(UCore::new(1.0, f64::NAN).is_err());
        assert!(UCore::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn bce_equivalent_is_unit() {
        let u = UCore::bce_equivalent();
        assert_eq!(u.mu(), 1.0);
        assert_eq!(u.phi(), 1.0);
        assert_eq!(u.energy_efficiency_gain(), 1.0);
    }

    #[test]
    fn classification_covers_quadrants() {
        assert_eq!(UCore::new(2.0, 1.5).unwrap().class(), UCoreClass::Accelerator);
        assert_eq!(
            UCore::new(2.0, 0.5).unwrap().class(),
            UCoreClass::EfficientAccelerator
        );
        assert_eq!(UCore::new(0.5, 0.5).unwrap().class(), UCoreClass::PowerSaver);
        assert_eq!(UCore::new(0.5, 1.5).unwrap().class(), UCoreClass::Dominated);
        // The boundary µ = φ = 1 counts as neither faster nor lower-power.
        assert_eq!(UCore::bce_equivalent().class(), UCoreClass::Dominated);
    }

    #[test]
    fn paper_table5_examples_classify_sensibly() {
        // ASIC on Black-Scholes: enormous speedup, high power density.
        let asic_bs = UCore::new(482.0, 4.75).unwrap();
        assert_eq!(asic_bs.class(), UCoreClass::Accelerator);
        assert!(asic_bs.energy_efficiency_gain() > 100.0);

        // LX760 FPGA on MMM: slower than a BCE but far lower power.
        let fpga_mmm = UCore::new(0.75, 0.31).unwrap();
        assert_eq!(fpga_mmm.class(), UCoreClass::PowerSaver);
    }

    #[test]
    fn bandwidth_scales_with_mu() {
        let u = UCore::new(3.41, 0.74).unwrap();
        assert_eq!(u.bandwidth_per_bce(), 3.41);
    }

    #[test]
    fn display_is_informative() {
        let u = UCore::new(27.4, 0.79).unwrap();
        assert_eq!(u.to_string(), "u-core(mu=27.400, phi=0.790)");
    }
}
