//! Table 1: how area, power and bandwidth bound `n` and `r`.
//!
//! For a fixed sequential-core size `r`, each resource gives a maximum
//! usable `n` ("the maximum number of BCE resources that usefully
//! contribute to overall speedup"):
//!
//! | Bound | Symmetric | Asym-offload | Heterogeneous |
//! |---|---|---|---|
//! | area | `n ≤ A` | `n ≤ A` | `n ≤ A` |
//! | parallel power | `n ≤ P·r^(1−α/2)` | `n ≤ P + r` | `n ≤ P/φ + r` |
//! | serial power | `r^(α/2) ≤ P` | `r^(α/2) ≤ P` | `r^(α/2) ≤ P` |
//! | parallel bandwidth | `n ≤ B·√r` | `n ≤ B + r` | `n ≤ B/µ + r` |
//! | serial bandwidth | `r ≤ B²` | `r ≤ B²` | `r ≤ B²` |
//!
//! (The table generalizes to arbitrary Pollack exponents; the entries above
//! show the square-root case. Bounds for the original asymmetric and the
//! dynamic machines follow from the same phase power/bandwidth expressions.)

use crate::budget::Budgets;
use crate::seq::SequentialLaw;
use crate::chip::{ChipKind, ChipSpec};
use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resource that determines how far a design can scale.
///
/// Matches the visual encoding of the paper's projection figures: points
/// joined by *dashed* lines are power-limited, by *solid* lines
/// bandwidth-limited, and unconnected points are area-limited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Limiter {
    /// The area budget `A` binds first (the chip is "full").
    Area,
    /// The parallel-phase power budget binds first (dashed lines).
    Power,
    /// The parallel-phase bandwidth budget binds first (solid lines).
    Bandwidth,
}

impl fmt::Display for Limiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Limiter::Area => "area",
            Limiter::Power => "power",
            Limiter::Bandwidth => "bandwidth",
        })
    }
}

/// Why a `(spec, budgets, r)` combination is infeasible, as a plain
/// enum — the allocation-free companion to the rendered
/// [`ModelError::Infeasible`] diagnostics, for hot loops like
/// [`crate::Optimizer`]'s sweep that probe many candidates and discard
/// most of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Infeasibility {
    /// `r` is not a positive finite number.
    InvalidR,
    /// `r^(α/2) > P`: the sequential core alone exceeds the power budget.
    SerialPower,
    /// `perf(r)` generates more traffic than `B` in the serial phase.
    SerialBandwidth,
    /// The parallel-phase bounds leave `n_max < r`.
    NoParallelRoom,
}

impl Infeasibility {
    /// True when every *larger* `r` is provably infeasible for the same
    /// reason: the serial bounds compare `r` against caps
    /// (`r_max_power`, `r_max_bandwidth`) that do not depend on `r`, so
    /// once one of them rejects a candidate an increasing sweep can stop.
    pub fn is_monotone_in_r(&self) -> bool {
        matches!(self, Infeasibility::SerialPower | Infeasibility::SerialBandwidth)
    }
}

/// One of the five constraint rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// `n ≤ A`.
    Area,
    /// Parallel-phase power bound on `n`.
    ParallelPower,
    /// Serial-phase power bound on `r`.
    SerialPower,
    /// Parallel-phase bandwidth bound on `n`.
    ParallelBandwidth,
    /// Serial-phase bandwidth bound on `r`.
    SerialBandwidth,
}

/// The resolved bounds for a given `(spec, budgets, r)`.
///
/// ```
/// use ucore_core::{BoundSet, Budgets, ChipSpec, Limiter};
/// let spec = ChipSpec::asymmetric_offload();
/// let budgets = Budgets::new(19.0, 7.4, 1000.0)?;
/// let bounds = BoundSet::compute(&spec, &budgets, 2.0)?;
/// // Power, not area, limits this CMP: P + r = 9.4 < A = 19.
/// assert_eq!(bounds.limiter(), Limiter::Power);
/// assert!((bounds.n_max() - 9.4).abs() < 1e-9);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundSet {
    n_area: f64,
    n_power: f64,
    n_bandwidth: f64,
    r_max_power: f64,
    r_max_bandwidth: f64,
    r: f64,
}

impl BoundSet {
    /// Computes every Table 1 bound for a sequential-core size `r`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] if the serial phase itself
    /// violates a bound (`r^(α/2) > P` or `perf(r) > B`), or if the
    /// parallel-phase bounds leave no usable resources (`n_max < r`).
    pub fn compute(spec: &ChipSpec, budgets: &Budgets, r: f64) -> Result<Self, ModelError> {
        crate::error::ensure_positive("r", r)?;
        Self::compute_quiet(spec, budgets, r).map_err(|why| {
            let p = budgets.power();
            let b = budgets.bandwidth();
            match why {
                Infeasibility::InvalidR => ModelError::Infeasible {
                    reason: format!("r = {r} is not a positive finite number"),
                },
                Infeasibility::SerialPower => ModelError::Infeasible {
                    reason: format!(
                        "serial power bound violated: r^(alpha/2) = {:.3} > P = {:.3}",
                        spec.power_law().power_of_area(r),
                        p
                    ),
                },
                Infeasibility::SerialBandwidth => ModelError::Infeasible {
                    reason: format!(
                        "serial bandwidth bound violated: traffic = {:.3} > B = {:.3}",
                        spec.serial_bandwidth(r),
                        b
                    ),
                },
                Infeasibility::NoParallelRoom => ModelError::Infeasible {
                    reason: format!(
                        "parallel-phase bounds leave n_max = {:.3} below r = {r}",
                        Self::unchecked(spec, budgets, r).n_max()
                    ),
                },
            }
        })
    }

    /// [`Self::compute`] without the rendered diagnostics: infeasibility
    /// comes back as a plain [`Infeasibility`] enum, so probing an
    /// infeasible candidate allocates nothing. The feasibility checks and
    /// their order are identical to [`Self::compute`].
    ///
    /// # Errors
    ///
    /// Returns the [`Infeasibility`] kind instead of a formatted
    /// [`ModelError`].
    pub fn compute_quiet(
        spec: &ChipSpec,
        budgets: &Budgets,
        r: f64,
    ) -> Result<Self, Infeasibility> {
        if !(r.is_finite() && r > 0.0) {
            return Err(Infeasibility::InvalidR);
        }
        let bounds = Self::unchecked(spec, budgets, r);
        if r > bounds.r_max_power + 1e-9 {
            return Err(Infeasibility::SerialPower);
        }
        if r > bounds.r_max_bandwidth + 1e-9 {
            return Err(Infeasibility::SerialBandwidth);
        }
        if bounds.n_max() < r - 1e-9 {
            return Err(Infeasibility::NoParallelRoom);
        }
        Ok(bounds)
    }

    /// Evaluates every Table 1 bound expression without feasibility
    /// checks. All the expressions are well-defined for any positive `r`.
    fn unchecked(spec: &ChipSpec, budgets: &Budgets, r: f64) -> Self {
        let law = spec.law();
        let power_law = spec.power_law();
        let p = budgets.power();
        let b = budgets.bandwidth();

        // Serial-phase caps: the sequential core alone must fit.
        let r_max_power = power_law.max_area_for_power(p);
        // Serial bandwidth: perf(r)^e <= B  =>  perf(r) <= B^(1/e).
        let r_max_bandwidth = law.area_for_perf(spec.max_perf_for_bandwidth(b));

        let seq_power = power_law.power_of_perf(law.perf(r));
        let seq_perf = law.perf(r);

        // Parallel-phase power bound on n.
        let n_power = match spec.kind() {
            ChipKind::Symmetric => p * r / seq_power,
            ChipKind::Asymmetric => p - seq_power + r,
            ChipKind::AsymmetricOffload => p + r,
            ChipKind::Dynamic => p,
            ChipKind::Heterogeneous(u) => p / u.phi() + r,
        };

        // Parallel-phase bandwidth bound on n: the budget caps parallel
        // *performance* at B^(1/e); each machine maps that performance
        // cap back to an n (parallel performance is affine in n).
        let perf_cap = spec.max_perf_for_bandwidth(b);
        let n_bandwidth = match spec.kind() {
            ChipKind::Symmetric => perf_cap * r / seq_perf,
            ChipKind::Asymmetric => perf_cap - seq_perf + r,
            ChipKind::AsymmetricOffload => perf_cap + r,
            ChipKind::Dynamic => perf_cap,
            ChipKind::Heterogeneous(u) => perf_cap / u.mu() + r,
        };

        BoundSet {
            n_area: budgets.area(),
            n_power,
            n_bandwidth,
            r_max_power,
            r_max_bandwidth,
            r,
        }
    }

    /// The area bound on `n` (`= A`).
    pub fn n_area(&self) -> f64 {
        self.n_area
    }

    /// The parallel-power bound on `n`.
    pub fn n_power(&self) -> f64 {
        self.n_power
    }

    /// The parallel-bandwidth bound on `n`.
    pub fn n_bandwidth(&self) -> f64 {
        self.n_bandwidth
    }

    /// The largest `r` the serial power bound allows.
    pub fn r_max_power(&self) -> f64 {
        self.r_max_power
    }

    /// The largest `r` the serial bandwidth bound allows.
    pub fn r_max_bandwidth(&self) -> f64 {
        self.r_max_bandwidth
    }

    /// The usable `n`: the minimum of the three bounds.
    pub fn n_max(&self) -> f64 {
        self.n_area.min(self.n_power).min(self.n_bandwidth)
    }

    /// Which resource produces [`n_max`](Self::n_max).
    ///
    /// Ties resolve in the order bandwidth, power, area, mirroring the
    /// paper's presentation (a design that exactly exhausts bandwidth and
    /// area is drawn as bandwidth-limited).
    pub fn limiter(&self) -> Limiter {
        let n_max = self.n_max();
        if self.n_bandwidth <= n_max + 1e-12 {
            Limiter::Bandwidth
        } else if self.n_power <= n_max + 1e-12 {
            Limiter::Power
        } else {
            Limiter::Area
        }
    }

    /// The bound value for a specific Table 1 row.
    pub fn bound(&self, constraint: Constraint) -> f64 {
        match constraint {
            Constraint::Area => self.n_area,
            Constraint::ParallelPower => self.n_power,
            Constraint::SerialPower => self.r_max_power,
            Constraint::ParallelBandwidth => self.n_bandwidth,
            Constraint::SerialBandwidth => self.r_max_bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn budgets(a: f64, p: f64, b: f64) -> Budgets {
        Budgets::new(a, p, b).unwrap()
    }

    #[test]
    fn table1_symmetric_formulas() {
        let spec = ChipSpec::symmetric();
        let r = 4.0;
        let bs = BoundSet::compute(&spec, &budgets(100.0, 10.0, 20.0), r).unwrap();
        // n <= P * r^(1 - alpha/2) = 10 * 4^(0.125)
        let expect_power = 10.0 * 4f64.powf(1.0 - 0.875);
        assert!((bs.n_power() - expect_power).abs() < 1e-9);
        // n <= B * sqrt(r) = 20 * 2
        assert!((bs.n_bandwidth() - 40.0).abs() < 1e-9);
        assert_eq!(bs.n_area(), 100.0);
    }

    #[test]
    fn table1_asym_offload_formulas() {
        let spec = ChipSpec::asymmetric_offload();
        let bs = BoundSet::compute(&spec, &budgets(100.0, 10.0, 20.0), 4.0).unwrap();
        assert!((bs.n_power() - 14.0).abs() < 1e-9); // P + r
        assert!((bs.n_bandwidth() - 24.0).abs() < 1e-9); // B + r
    }

    #[test]
    fn table1_heterogeneous_formulas() {
        let u = UCore::new(5.0, 0.5).unwrap();
        let spec = ChipSpec::heterogeneous(u);
        let bs = BoundSet::compute(&spec, &budgets(100.0, 10.0, 20.0), 4.0).unwrap();
        assert!((bs.n_power() - 24.0).abs() < 1e-9); // P/phi + r = 20 + 4
        assert!((bs.n_bandwidth() - 8.0).abs() < 1e-9); // B/mu + r = 4 + 4
        // High-mu u-cores drown in bandwidth: the limiter is bandwidth.
        assert_eq!(bs.limiter(), Limiter::Bandwidth);
    }

    #[test]
    fn serial_bounds_r_max() {
        let spec = ChipSpec::symmetric();
        let bs = BoundSet::compute(&spec, &budgets(100.0, 10.0, 3.0), 1.0).unwrap();
        // r <= P^(2/alpha) = 10^(2/1.75)
        assert!((bs.r_max_power() - 10f64.powf(2.0 / 1.75)).abs() < 1e-9);
        // r <= B^2 = 9
        assert!((bs.r_max_bandwidth() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn serial_power_violation_is_infeasible() {
        let spec = ChipSpec::symmetric();
        // r = 16 needs 16^0.875 ≈ 11.3 > P = 10.
        let err = BoundSet::compute(&spec, &budgets(100.0, 10.0, 100.0), 16.0).unwrap_err();
        assert!(matches!(err, ModelError::Infeasible { .. }));
        assert!(err.to_string().contains("serial power"));
    }

    #[test]
    fn serial_bandwidth_violation_is_infeasible() {
        let spec = ChipSpec::symmetric();
        // perf(16) = 4 > B = 3.
        let err = BoundSet::compute(&spec, &budgets(100.0, 100.0, 3.0), 16.0).unwrap_err();
        assert!(err.to_string().contains("serial bandwidth"));
    }

    #[test]
    fn lower_phi_relaxes_power_bound() {
        let frugal = ChipSpec::heterogeneous(UCore::new(2.0, 0.25).unwrap());
        let hungry = ChipSpec::heterogeneous(UCore::new(2.0, 1.0).unwrap());
        let b = budgets(1000.0, 10.0, 1e6);
        let n_frugal = BoundSet::compute(&frugal, &b, 1.0).unwrap().n_power();
        let n_hungry = BoundSet::compute(&hungry, &b, 1.0).unwrap().n_power();
        assert!(n_frugal > n_hungry);
    }

    #[test]
    fn higher_mu_tightens_bandwidth_bound() {
        let fast = ChipSpec::heterogeneous(UCore::new(100.0, 1.0).unwrap());
        let slow = ChipSpec::heterogeneous(UCore::new(2.0, 1.0).unwrap());
        let b = budgets(1000.0, 1e6, 50.0);
        let n_fast = BoundSet::compute(&fast, &b, 1.0).unwrap().n_bandwidth();
        let n_slow = BoundSet::compute(&slow, &b, 1.0).unwrap().n_bandwidth();
        assert!(n_fast < n_slow);
    }

    #[test]
    fn limiter_classification() {
        let spec = ChipSpec::asymmetric_offload();
        assert_eq!(
            BoundSet::compute(&spec, &budgets(5.0, 100.0, 100.0), 1.0)
                .unwrap()
                .limiter(),
            Limiter::Area
        );
        assert_eq!(
            BoundSet::compute(&spec, &budgets(100.0, 5.0, 100.0), 1.0)
                .unwrap()
                .limiter(),
            Limiter::Power
        );
        assert_eq!(
            BoundSet::compute(&spec, &budgets(100.0, 100.0, 5.0), 1.0)
                .unwrap()
                .limiter(),
            Limiter::Bandwidth
        );
    }

    #[test]
    fn dynamic_bounds_use_all_resources() {
        let spec = ChipSpec::dynamic();
        let bs = BoundSet::compute(&spec, &budgets(100.0, 10.0, 20.0), 4.0).unwrap();
        assert!((bs.n_power() - 10.0).abs() < 1e-9);
        assert!((bs.n_bandwidth() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_bounds_subtract_big_core() {
        let spec = ChipSpec::asymmetric();
        let r = 4.0;
        let bs = BoundSet::compute(&spec, &budgets(100.0, 10.0, 20.0), r).unwrap();
        let seq_power = 4f64.powf(0.875);
        assert!((bs.n_power() - (10.0 - seq_power + r)).abs() < 1e-9);
        assert!((bs.n_bandwidth() - (20.0 - 2.0 + r)).abs() < 1e-9);
    }

    #[test]
    fn bound_accessor_matches_rows() {
        let spec = ChipSpec::symmetric();
        let bs = BoundSet::compute(&spec, &budgets(7.0, 10.0, 3.0), 1.0).unwrap();
        assert_eq!(bs.bound(Constraint::Area), 7.0);
        assert_eq!(bs.bound(Constraint::ParallelPower), bs.n_power());
        assert_eq!(bs.bound(Constraint::SerialPower), bs.r_max_power());
        assert_eq!(bs.bound(Constraint::ParallelBandwidth), bs.n_bandwidth());
        assert_eq!(bs.bound(Constraint::SerialBandwidth), bs.r_max_bandwidth());
    }

    #[test]
    fn quiet_variant_agrees_with_compute() {
        let specs = [
            ChipSpec::symmetric(),
            ChipSpec::asymmetric(),
            ChipSpec::asymmetric_offload(),
            ChipSpec::dynamic(),
            ChipSpec::heterogeneous(UCore::new(5.0, 0.5).unwrap()),
        ];
        for spec in &specs {
            for b in [budgets(100.0, 10.0, 20.0), budgets(5.0, 0.9, 1.5)] {
                for r in [0.5, 1.0, 4.0, 16.0, 64.0] {
                    let loud = BoundSet::compute(spec, &b, r);
                    let quiet = BoundSet::compute_quiet(spec, &b, r);
                    match (loud, quiet) {
                        (Ok(l), Ok(q)) => assert_eq!(l, q, "{} r={r}", spec.kind()),
                        (Err(_), Err(_)) => {}
                        (l, q) => panic!("disagree for {} r={r}: {l:?} vs {q:?}", spec.kind()),
                    }
                }
            }
        }
    }

    #[test]
    fn quiet_serial_violations_are_monotone() {
        let spec = ChipSpec::symmetric();
        let why = BoundSet::compute_quiet(&spec, &budgets(100.0, 10.0, 100.0), 16.0)
            .unwrap_err();
        assert_eq!(why, Infeasibility::SerialPower);
        assert!(why.is_monotone_in_r());
        let why = BoundSet::compute_quiet(&spec, &budgets(100.0, 100.0, 3.0), 16.0)
            .unwrap_err();
        assert_eq!(why, Infeasibility::SerialBandwidth);
        assert!(why.is_monotone_in_r());
        // Area below r: serial caps pass but the chip cannot even hold
        // the sequential core plus usable parallel resources.
        let why = BoundSet::compute_quiet(&spec, &budgets(2.0, 100.0, 100.0), 4.0)
            .unwrap_err();
        assert_eq!(why, Infeasibility::NoParallelRoom);
        assert!(!why.is_monotone_in_r());
        assert_eq!(
            BoundSet::compute_quiet(&spec, &budgets(1.0, 1.0, 1.0), f64::NAN),
            Err(Infeasibility::InvalidR)
        );
    }

    #[test]
    fn infeasible_when_bounds_below_r() {
        // Heterogeneous with tiny bandwidth: n_bandwidth = B/mu + r can
        // stay above r, so use symmetric with a bandwidth smaller than
        // what even the sequential core's parallel phase needs.
        let spec = ChipSpec::symmetric();
        // r = 4: n_bw = B*sqrt(r)/... = 1.0*2 = 2 < r = 4 -> infeasible.
        let err = BoundSet::compute(&spec, &budgets(100.0, 100.0, 1.0), 4.0);
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod bandwidth_law_tests {
    use super::*;
    use crate::chip::ChipSpec;
    use crate::ucore::UCore;

    #[test]
    fn sublinear_traffic_relaxes_the_bandwidth_bound() {
        // With e = 0.5, traffic grows as sqrt(perf): the same budget
        // admits far more parallel performance.
        let linear = ChipSpec::heterogeneous(UCore::new(10.0, 1.0).unwrap());
        let sublinear = linear.with_bandwidth_exponent(0.5);
        let budgets = Budgets::new(1000.0, 1e6, 20.0).unwrap();
        let n_linear = BoundSet::compute(&linear, &budgets, 1.0)
            .unwrap()
            .n_bandwidth();
        let n_sub = BoundSet::compute(&sublinear, &budgets, 1.0)
            .unwrap()
            .n_bandwidth();
        // perf caps: 20 vs 400 => n - r caps: 2 vs 40.
        assert!((n_linear - 3.0).abs() < 1e-9);
        assert!((n_sub - 41.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_one_is_the_paper_model() {
        let spec = ChipSpec::asymmetric_offload();
        assert_eq!(spec.bandwidth_exponent(), 1.0);
        let explicit = spec.with_bandwidth_exponent(1.0);
        let budgets = Budgets::new(100.0, 100.0, 20.0).unwrap();
        let a = BoundSet::compute(&spec, &budgets, 4.0).unwrap();
        let b = BoundSet::compute(&explicit, &budgets, 4.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn traffic_accessor_matches_exponent() {
        let spec = ChipSpec::asymmetric_offload().with_bandwidth_exponent(0.5);
        // Parallel perf 16 => traffic 4.
        assert!((spec.parallel_bandwidth(17.0, 1.0) - 4.0).abs() < 1e-12);
        assert!((spec.serial_bandwidth(16.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth exponent")]
    fn invalid_exponent_panics_at_configuration() {
        let _ = ChipSpec::symmetric().with_bandwidth_exponent(0.0);
    }

    #[test]
    fn serial_bandwidth_bound_uses_the_law() {
        // e = 0.5, B = 3: perf(r) <= 9  =>  r <= 81.
        let spec = ChipSpec::symmetric().with_bandwidth_exponent(0.5);
        let budgets = Budgets::new(1000.0, 1e6, 3.0).unwrap();
        let bs = BoundSet::compute(&spec, &budgets, 1.0).unwrap();
        assert!((bs.r_max_bandwidth() - 81.0).abs() < 1e-9);
    }
}
