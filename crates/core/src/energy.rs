//! Total-energy model (Figure 10).
//!
//! Energy is power integrated over time. With execution time measured
//! relative to one BCE running the whole workload (time 1) and power in
//! BCE active-power units, the energy of one BCE running the workload is
//! exactly 1 — the paper's normalization baseline (at 40 nm).
//!
//! For a design `(n, r)` on a workload with parallel fraction `f`:
//!
//! * serial phase: time `(1−f)/perf(r)` at power `r^(α/2)`;
//! * parallel phase: time `f/perf_par(n, r)` at power `power_par(n, r)`;
//! * unused cores are powered off entirely (no static power), per the
//!   paper's assumption;
//! * everything scales by the technology node's relative power per
//!   transistor (`1×` at 40 nm down to `0.25×` at 11 nm) — the "circuit
//!   improvements" credited for part of the energy decrease across
//!   generations.

use crate::chip::ChipSpec;
use crate::seq::SequentialLaw;
use crate::error::{ensure_positive, ModelError};
use crate::units::ParallelFraction;
use serde::{Deserialize, Serialize};

/// Energy accounting for one workload execution on a design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy of the serial phase (BCE-energy units).
    pub serial: f64,
    /// Energy of the parallel phase (BCE-energy units).
    pub parallel: f64,
    /// Execution time relative to one BCE (the reciprocal of speedup).
    pub time: f64,
}

impl EnergyBreakdown {
    /// Total energy, serial + parallel.
    pub fn total(&self) -> f64 {
        self.serial + self.parallel
    }

    /// Energy-delay product, `total × time`.
    pub fn energy_delay(&self) -> f64 {
        self.total() * self.time
    }
}

/// Computes workload energy for designs at a given technology node.
///
/// ```
/// use ucore_core::{ChipSpec, EnergyModel, ParallelFraction};
/// let model = EnergyModel::at_reference_node();
/// let f = ParallelFraction::new(0.0)?;
/// // A single BCE core (r = n = 1) running a serial workload uses
/// // exactly the normalization energy.
/// let e = model.breakdown(&ChipSpec::symmetric(), f, 1.0, 1.0)?;
/// assert!((e.total() - 1.0).abs() < 1e-12);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    power_scale: f64,
}

impl EnergyModel {
    /// Creates an energy model for a node with the given relative power
    /// per transistor (1.0 at the 40 nm reference node).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] if `power_scale` is not
    /// positive and finite.
    pub fn new(power_scale: f64) -> Result<Self, ModelError> {
        ensure_positive("power scale", power_scale)?;
        Ok(EnergyModel { power_scale })
    }

    /// The reference-node model (40 nm, scale 1.0).
    pub fn at_reference_node() -> Self {
        EnergyModel { power_scale: 1.0 }
    }

    /// The relative power per transistor at this node.
    pub fn power_scale(&self) -> f64 {
        self.power_scale
    }

    /// Energy consumed by design `(n, r)` running a workload with parallel
    /// fraction `f`, normalized to one BCE at the reference node.
    ///
    /// # Errors
    ///
    /// Propagates `(n, r)` validation errors; a design with no parallel
    /// resources is rejected when `f > 0`.
    pub fn breakdown(
        &self,
        spec: &ChipSpec,
        f: ParallelFraction,
        n: f64,
        r: f64,
    ) -> Result<EnergyBreakdown, ModelError> {
        // Reuse the speedup path for validation and timing.
        let speedup = spec.speedup(f, n, r)?;
        let serial_time = f.serial() / spec.law().perf(r);
        let parallel_time = if f.get() > 0.0 {
            f.get() / spec.parallel_perf(n, r)
        } else {
            0.0
        };
        let serial = self.power_scale * spec.serial_power(r) * serial_time;
        let parallel = if parallel_time > 0.0 {
            self.power_scale * spec.parallel_power(n, r) * parallel_time
        } else {
            0.0
        };
        Ok(EnergyBreakdown {
            serial,
            parallel,
            time: speedup.time(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn bce_baseline_energy_is_one() {
        let m = EnergyModel::at_reference_node();
        for &fv in &[0.0, 0.5, 1.0] {
            let e = m
                .breakdown(&ChipSpec::asymmetric_offload(), f(fv), 2.0, 1.0)
                .unwrap();
            // r = 1 core: serial at perf 1/power 1; one parallel BCE at
            // perf 1/power 1 -> total = (1-f) + f = 1.
            assert!((e.total() - 1.0).abs() < 1e-12, "f = {fv}");
        }
    }

    #[test]
    fn node_scaling_multiplies_energy() {
        let at40 = EnergyModel::at_reference_node();
        let at11 = EnergyModel::new(0.25).unwrap();
        let spec = ChipSpec::symmetric();
        let e40 = at40.breakdown(&spec, f(0.9), 16.0, 4.0).unwrap().total();
        let e11 = at11.breakdown(&spec, f(0.9), 16.0, 4.0).unwrap().total();
        assert!((e11 - 0.25 * e40).abs() < 1e-12);
    }

    #[test]
    fn efficient_ucore_cuts_parallel_energy() {
        let m = EnergyModel::at_reference_node();
        let asic = ChipSpec::heterogeneous(UCore::new(27.4, 0.79).unwrap());
        let cmp = ChipSpec::asymmetric_offload();
        let e_asic = m.breakdown(&asic, f(0.99), 19.0, 2.0).unwrap();
        let e_cmp = m.breakdown(&cmp, f(0.99), 19.0, 2.0).unwrap();
        assert!(e_asic.parallel < e_cmp.parallel);
        assert!(e_asic.total() < e_cmp.total());
    }

    #[test]
    fn serial_energy_grows_with_r() {
        // E_serial = (1-f) * r^(alpha/2) / sqrt(r) = (1-f) * r^((alpha-1)/2).
        let m = EnergyModel::at_reference_node();
        let spec = ChipSpec::asymmetric_offload();
        let e1 = m.breakdown(&spec, f(0.5), 20.0, 1.0).unwrap().serial;
        let e4 = m.breakdown(&spec, f(0.5), 20.0, 4.0).unwrap().serial;
        assert!(e4 > e1);
        let expect = 0.5 * 4f64.powf((1.75 - 1.0) / 2.0);
        assert!((e4 - expect).abs() < 1e-12);
    }

    #[test]
    fn parallel_energy_independent_of_n_for_linear_fabrics() {
        // Both power and performance scale linearly with n - r, so the
        // parallel-phase energy does not depend on how many u-cores run.
        let m = EnergyModel::at_reference_node();
        let spec = ChipSpec::heterogeneous(UCore::new(5.0, 0.5).unwrap());
        let e_small = m.breakdown(&spec, f(0.9), 4.0, 1.0).unwrap().parallel;
        let e_large = m.breakdown(&spec, f(0.9), 400.0, 1.0).unwrap().parallel;
        assert!((e_small - e_large).abs() < 1e-12);
    }

    #[test]
    fn parallel_energy_equals_f_phi_over_mu() {
        // For the heterogeneous machine: E_par = f * phi / mu.
        let m = EnergyModel::at_reference_node();
        let u = UCore::new(8.0, 0.4).unwrap();
        let spec = ChipSpec::heterogeneous(u);
        let e = m.breakdown(&spec, f(0.9), 10.0, 1.0).unwrap();
        assert!((e.parallel - 0.9 * 0.4 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn energy_delay_product() {
        let b = EnergyBreakdown { serial: 0.25, parallel: 0.25, time: 0.1 };
        assert!((b.energy_delay() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn rejects_invalid_scale() {
        assert!(EnergyModel::new(0.0).is_err());
        assert!(EnergyModel::new(f64::NAN).is_err());
    }
}
