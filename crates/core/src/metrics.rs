//! Derived figures of merit: performance per watt and energy-delay product.
//!
//! Woo and Lee's extension of Amdahl's Law argues for judging many-core
//! designs by `perf/W` and related metrics rather than raw speedup; these
//! helpers make those comparisons convenient on top of the model's
//! evaluations.

use crate::chip::ChipSpec;
use crate::error::ModelError;
use crate::units::ParallelFraction;

/// Average performance per watt of design `(n, r)` over a whole workload
/// execution, in BCE-performance per BCE-power.
///
/// Computed as (work done) / (energy consumed) = speedup / energy, which
/// equals the time-weighted average of phase `perf/W` ratios.
///
/// ```
/// use ucore_core::{perf_per_watt, ChipSpec, ParallelFraction, UCore};
/// let f = ParallelFraction::new(0.99)?;
/// let asic = ChipSpec::heterogeneous(UCore::new(27.4, 0.79)?);
/// let cmp = ChipSpec::asymmetric_offload();
/// let ppw_asic = perf_per_watt(&asic, f, 19.0, 1.0)?;
/// let ppw_cmp = perf_per_watt(&cmp, f, 19.0, 1.0)?;
/// assert!(ppw_asic > ppw_cmp);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
///
/// # Errors
///
/// Propagates validation errors from the underlying model.
pub fn perf_per_watt(
    spec: &ChipSpec,
    f: ParallelFraction,
    n: f64,
    r: f64,
) -> Result<f64, ModelError> {
    let energy = crate::energy::EnergyModel::at_reference_node()
        .breakdown(spec, f, n, r)?
        .total();
    let speedup = spec.speedup(f, n, r)?;
    Ok(speedup.get() / energy)
}

/// Energy-delay product of design `(n, r)`: total energy times execution
/// time, both normalized to one BCE.
///
/// Lower is better; one BCE scores exactly 1.
///
/// # Errors
///
/// Propagates validation errors from the underlying model.
pub fn energy_delay_product(
    spec: &ChipSpec,
    f: ParallelFraction,
    n: f64,
    r: f64,
) -> Result<f64, ModelError> {
    let breakdown =
        crate::energy::EnergyModel::at_reference_node().breakdown(spec, f, n, r)?;
    Ok(breakdown.energy_delay())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn bce_scores_unity_on_both_metrics() {
        let spec = ChipSpec::asymmetric_offload();
        // (n, r) = (2, 1) with one parallel BCE behaves like a BCE overall.
        let ppw = perf_per_watt(&spec, f(0.5), 2.0, 1.0).unwrap();
        assert!((ppw - 1.0).abs() < 1e-12);
        let edp = energy_delay_product(&spec, f(0.5), 2.0, 1.0).unwrap();
        assert!((edp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficient_ucore_improves_perf_per_watt() {
        let u = UCore::new(10.0, 0.5).unwrap();
        let het = ChipSpec::heterogeneous(u);
        let cmp = ChipSpec::asymmetric_offload();
        let ppw_het = perf_per_watt(&het, f(0.99), 16.0, 1.0).unwrap();
        let ppw_cmp = perf_per_watt(&cmp, f(0.99), 16.0, 1.0).unwrap();
        assert!(ppw_het > ppw_cmp);
    }

    #[test]
    fn edp_rewards_speed_even_at_equal_energy() {
        // Two asymmetric-offload designs with different n: same parallel
        // energy, but the bigger one is faster, so lower EDP.
        let spec = ChipSpec::asymmetric_offload();
        let edp_small = energy_delay_product(&spec, f(0.9), 4.0, 1.0).unwrap();
        let edp_large = energy_delay_product(&spec, f(0.9), 64.0, 1.0).unwrap();
        assert!(edp_large < edp_small);
    }

    #[test]
    fn metrics_propagate_validation_errors() {
        let spec = ChipSpec::asymmetric_offload();
        assert!(perf_per_watt(&spec, f(0.5), 1.0, 2.0).is_err());
        assert!(energy_delay_product(&spec, f(0.5), 1.0, 2.0).is_err());
    }
}
