//! # ucore-core — Amdahl's Law for single-chip heterogeneous multicores
//!
//! This crate implements the analytical model of Chung, Milder, Hoe and Mai,
//! *"Single-Chip Heterogeneous Computing: Does the Future Include Custom
//! Logic, FPGAs, and GPGPUs?"* (MICRO 2010), which extends the multicore
//! model of Hill and Marty (*"Amdahl's Law in the Multicore Era"*) with:
//!
//! * **power budgets** — a sequential core of area `r` BCE (Base Core
//!   Equivalents) delivers `perf_seq(r) = √r` (Pollack's Law) and consumes
//!   `r^(α/2)` BCE units of power (α ≈ 1.75);
//! * **bandwidth budgets** — off-chip bandwidth consumption scales linearly
//!   with delivered performance, in units of the workload's *compulsory*
//!   bandwidth;
//! * **U-cores** — unconventional cores (custom logic, FPGAs, GPGPUs)
//!   characterized by a relative performance `µ` and relative power `φ`
//!   per BCE of area.
//!
//! The central question the model answers: given area, power and bandwidth
//! budgets `(A, P, B)` and a workload with parallel fraction `f`, what
//! speedup (relative to one BCE) can a symmetric, asymmetric,
//! asymmetric-offload, dynamic, or heterogeneous chip achieve, and which
//! resource limits it?
//!
//! ## Quick example
//!
//! ```
//! use ucore_core::{Budgets, ChipSpec, Optimizer, ParallelFraction, UCore};
//!
//! # fn main() -> Result<(), ucore_core::ModelError> {
//! // An ASIC-like U-core: 27.4x the performance of a BCE per unit area,
//! // at 0.79x the power.
//! let asic = UCore::new(27.4, 0.79)?;
//!
//! // A chip with 19 BCE of area, 7.4 BCE of power, lots of bandwidth.
//! let budgets = Budgets::new(19.0, 7.4, 1000.0)?;
//!
//! // Find the best sequential-core size for a 99%-parallel workload.
//! let f = ParallelFraction::new(0.99)?;
//! let opt = Optimizer::paper_default();
//! let best = opt.optimize(&ChipSpec::heterogeneous(asic), &budgets, f)?;
//! assert!(best.evaluation.speedup.get() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! All speedups are relative to the performance of a single BCE core, all
//! power values are relative to the active power of a BCE core, and all
//! bandwidth values are relative to the compulsory bandwidth of the
//! workload running on one BCE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The model crate is panic-free by contract: every fallible path returns
// a typed ModelError. Keep it that way.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod budget;
pub mod cache;
pub mod chip;
pub mod critical;
pub mod energy;
pub mod error;
pub mod gustafson;
pub mod hillmarty;
pub mod metrics;
pub mod mix;
pub mod optimize;
pub mod portfolio;
pub mod powersave;
pub mod profile;
pub mod segments;
pub mod seq;
pub mod speedup;
pub mod ucore;
pub mod units;

pub use bounds::{BoundSet, Constraint, Infeasibility, Limiter};
pub use budget::Budgets;
pub use cache::{CacheStats, EvalCache, EvalKey, F64Key};
pub use chip::{ChipSpec, DesignPoint, Evaluation};
pub use critical::CriticalSectionWorkload;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::{ErrorCategory, ModelError};
pub use gustafson::scaled_speedup;
pub use metrics::{energy_delay_product, perf_per_watt};
pub use mix::{MixedChip, UCorePartition};
pub use optimize::{Objective, OptimalDesign, Optimizer};
pub use portfolio::{Allocation, PortfolioChip};
pub use powersave::{min_power_for_target, IsoPerformanceDesign};
pub use profile::{ParallelismProfile, Phase, ProfileOptimum};
pub use segments::{Segment, SegmentedWorkload, WEIGHT_SUM_TOLERANCE};
pub use seq::{PollackLaw, SequentialLaw, SerialPowerLaw, DEFAULT_ALPHA, SCENARIO_ALPHA};
pub use speedup::{
    amdahl, asymmetric, asymmetric_offload, dynamic, heterogeneous, symmetric,
};
pub use ucore::{UCore, UCoreClass};
pub use units::{ParallelFraction, Speedup};
