//! Chip resource budgets: area, power and off-chip bandwidth.

use crate::error::{ensure_positive, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three budgets that bound a design, all in BCE units:
///
/// * **area** `A` — total chip resources, in BCE of area;
/// * **power** `P` — power available in either phase, relative to the
///   active power of one BCE;
/// * **bandwidth** `B` — off-chip bandwidth, relative to the compulsory
///   bandwidth of the workload on one BCE.
///
/// Note that `B` is workload-specific: the same physical chip has a
/// different `B` for FFT than for MMM because the compulsory bandwidth
/// differs.
///
/// ```
/// use ucore_core::Budgets;
/// let b = Budgets::new(19.0, 7.4, 339.0)?;
/// assert_eq!(b.area(), 19.0);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budgets {
    area: f64,
    power: f64,
    bandwidth: f64,
}

impl Budgets {
    /// Creates a budget triple `(A, P, B)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] unless all three are positive
    /// and finite.
    // ucore-lint: allow(raw-f64-api): Budgets is itself the validated ingress boundary where raw (A, P, B) readings become typed model state
    pub fn new(area: f64, power: f64, bandwidth: f64) -> Result<Self, ModelError> {
        ensure_positive("area", area)?;
        ensure_positive("power", power)?;
        ensure_positive("bandwidth", bandwidth)?;
        Ok(Budgets { area, power, bandwidth })
    }

    /// A budget with effectively unbounded power and bandwidth, isolating
    /// the pure area-constrained (original Hill-Marty) behavior.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] if `area` is not positive.
    // ucore-lint: allow(raw-f64-api): validated ingress boundary, same contract as `Budgets::new`
    pub fn area_only(area: f64) -> Result<Self, ModelError> {
        Budgets::new(area, f64::MAX / 4.0, f64::MAX / 4.0)
    }

    /// Total area budget `A`, in BCE.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Power budget `P`, in BCE active-power units.
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Bandwidth budget `B`, in compulsory-bandwidth units.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Returns a copy with a different area budget.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] if `area` is not positive.
    // ucore-lint: allow(raw-f64-api): validated ingress boundary, same contract as `Budgets::new`
    pub fn with_area(&self, area: f64) -> Result<Self, ModelError> {
        Budgets::new(area, self.power, self.bandwidth)
    }

    /// Returns a copy with a different power budget.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] if `power` is not positive.
    // ucore-lint: allow(raw-f64-api): validated ingress boundary, same contract as `Budgets::new`
    pub fn with_power(&self, power: f64) -> Result<Self, ModelError> {
        Budgets::new(self.area, power, self.bandwidth)
    }

    /// Returns a copy with a different bandwidth budget.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] if `bandwidth` is not positive.
    // ucore-lint: allow(raw-f64-api): validated ingress boundary, same contract as `Budgets::new`
    pub fn with_bandwidth(&self, bandwidth: f64) -> Result<Self, ModelError> {
        Budgets::new(self.area, self.power, bandwidth)
    }
}

impl fmt::Display for Budgets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budgets(A={:.1} BCE, P={:.1} BCE, B={:.1} BCE)",
            self.area, self.power, self.bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_positive_budgets() {
        assert!(Budgets::new(0.0, 1.0, 1.0).is_err());
        assert!(Budgets::new(1.0, -1.0, 1.0).is_err());
        assert!(Budgets::new(1.0, 1.0, 0.0).is_err());
        assert!(Budgets::new(f64::NAN, 1.0, 1.0).is_err());
    }

    #[test]
    fn accessors_return_inputs() {
        let b = Budgets::new(19.0, 7.4, 339.0).unwrap();
        assert_eq!(b.area(), 19.0);
        assert_eq!(b.power(), 7.4);
        assert_eq!(b.bandwidth(), 339.0);
    }

    #[test]
    fn with_methods_replace_one_field() {
        let b = Budgets::new(10.0, 10.0, 10.0).unwrap();
        assert_eq!(b.with_area(5.0).unwrap().area(), 5.0);
        assert_eq!(b.with_area(5.0).unwrap().power(), 10.0);
        assert_eq!(b.with_power(2.0).unwrap().power(), 2.0);
        assert_eq!(b.with_bandwidth(99.0).unwrap().bandwidth(), 99.0);
        assert!(b.with_area(-1.0).is_err());
    }

    #[test]
    fn area_only_is_effectively_unconstrained_elsewhere() {
        let b = Budgets::area_only(42.0).unwrap();
        assert_eq!(b.area(), 42.0);
        assert!(b.power() > 1e300);
        assert!(b.bandwidth() > 1e300);
    }

    #[test]
    fn display_mentions_all_budgets() {
        let b = Budgets::new(19.0, 7.4, 339.0).unwrap();
        let s = b.to_string();
        assert!(s.contains("A=19.0"));
        assert!(s.contains("P=7.4"));
        assert!(s.contains("B=339.0"));
    }
}
