//! Gustafson's scaled-speedup extension.
//!
//! Amdahl's Law fixes the problem size; Gustafson ("Reevaluating Amdahl's
//! Law") instead fixes the execution *time* and lets the parallel part of
//! the problem grow with the machine. The paper cites this model in its
//! related work as one of the proposed extensions; it is provided here so
//! users can contrast fixed-size and scaled-size projections.

use crate::error::{ensure_positive, ModelError};
use crate::units::{ParallelFraction, Speedup};

/// Gustafson's scaled speedup: with `f` the parallel fraction of the
/// *scaled* workload's execution time on the parallel machine and `s` the
/// parallel-phase performance, the work completed relative to a serial
/// machine is
///
/// `Scaled speedup = (1 − f) + f·s`
///
/// ```
/// use ucore_core::{scaled_speedup, ParallelFraction};
/// let f = ParallelFraction::new(0.9)?;
/// let s = scaled_speedup(f, 100.0)?;
/// assert!((s.get() - 90.1).abs() < 1e-9);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
///
/// # Errors
///
/// Returns [`ModelError::NonPositive`] if `s` is not positive and finite.
pub fn scaled_speedup(f: ParallelFraction, s: f64) -> Result<Speedup, ModelError> {
    ensure_positive("s", s)?;
    Speedup::new(f.serial() + f.get() * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::amdahl;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn serial_workload_sees_no_gain() {
        let s = scaled_speedup(f(0.0), 1000.0).unwrap();
        assert!((s.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_parallelism_scales_linearly() {
        let s = scaled_speedup(f(1.0), 64.0).unwrap();
        assert!((s.get() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn gustafson_dominates_amdahl_for_large_s() {
        // Scaled speedup grows without bound; Amdahl saturates at
        // 1/(1 - f).
        for &fv in &[0.5, 0.9, 0.99] {
            let g = scaled_speedup(f(fv), 1000.0).unwrap().get();
            let a = amdahl(f(fv), 1000.0).unwrap().get();
            assert!(g > a, "f = {fv}");
        }
    }

    #[test]
    fn agree_at_unit_acceleration() {
        for &fv in &[0.0, 0.3, 1.0] {
            let g = scaled_speedup(f(fv), 1.0).unwrap().get();
            let a = amdahl(f(fv), 1.0).unwrap().get();
            assert!((g - a).abs() < 1e-12);
            assert!((g - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_s() {
        assert!(scaled_speedup(f(0.5), 0.0).is_err());
        assert!(scaled_speedup(f(0.5), f64::NAN).is_err());
    }
}
