//! Accelerator portfolios: one area budget shared by kernel-specific
//! U-cores, allocated by a closed-form KKT rule and cross-checked by an
//! exhaustive grid oracle.
//!
//! A [`PortfolioChip`] is a sequential core of size `r` plus `n − r` BCE
//! of accelerator area serving a [`SegmentedWorkload`]. Execution is
//! time-multiplexed — segments run one at a time, each on its own
//! accelerator — so total execution time relative to one BCE is
//!
//! `T(a) = w_serial / perf(r) + Σ_k w_k / (µ_k · a_k)`
//!
//! minimized over the areas `a_k` subject to `Σ a_k ≤ n − r` and the
//! optional per-segment caps `a_k ≤ c_k`. The objective is separable
//! and convex in each `a_k`, so the KKT conditions give the interior
//! solution in closed form — `a_k ∝ √(w_k / µ_k)` — and a cap that
//! binds stays bound as the remaining area shrinks, which makes the
//! clamp-and-redistribute loop in [`PortfolioChip::allocate`] exact
//! (it is the waterfilling active-set method, not a heuristic; DESIGN.md
//! §19 carries the derivation).
//!
//! Mirroring the `optimize`/`optimize_exhaustive` pattern, the analytic
//! allocator is paired with [`PortfolioChip::allocate_exhaustive`]: an
//! enumerative oracle over all integer compositions of a grid. The
//! tolerance policy (also §19): the analytic objective is optimal over
//! a superset of the grid, so `allocate()` can never score below the
//! oracle; and the grid optimum is within factor `(k + 1)/G` of the
//! analytic one, so the two are asserted to agree within that band by
//! `tests/portfolio_equiv.rs`. When the KKT point lies exactly on the
//! grid, the oracle returns its bit pattern.

use crate::error::ModelError;
use crate::segments::SegmentedWorkload;
use crate::seq::{PollackLaw, SequentialLaw};
use crate::units::Speedup;
use serde::{Deserialize, Serialize};

/// A base multicore plus a portfolio of kernel-specific U-cores sharing
/// the parallel area `n − r`.
///
/// ```
/// use ucore_core::{PortfolioChip, Segment, SegmentedWorkload, UCore};
/// let mmm = Segment::new(0.45, UCore::new(27.4, 0.79)?)?;
/// let fft = Segment::new(0.45, UCore::new(489.0, 4.96)?)?;
/// let w = SegmentedWorkload::new(0.1, vec![mmm, fft])?;
/// let chip = PortfolioChip::new(40.0, 4.0, w)?;
/// let alloc = chip.allocate()?;
/// assert!((alloc.areas.iter().sum::<f64>() - 36.0).abs() < 1e-9);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioChip {
    n: f64,
    r: f64,
    workload: SegmentedWorkload,
    law: PollackLaw,
}

/// The result of an area allocation: per-segment areas (construction
/// order, zero for zero-weight segments) and the resulting speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Accelerator area per segment, in BCE.
    pub areas: Vec<f64>,
    /// The chip's speedup under these areas.
    pub speedup: Speedup,
}

impl PortfolioChip {
    /// A portfolio chip with `n` BCE total, `r` of them sequential, and
    /// the default Pollack sequential law.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` or `r` is not positive and finite, or
    /// [`ModelError::SequentialExceedsTotal`] when `r > n`.
    pub fn new(n: f64, r: f64, workload: SegmentedWorkload) -> Result<Self, ModelError> {
        crate::error::ensure_positive("n", n)?;
        crate::error::ensure_positive("r", r)?;
        if r > n {
            return Err(ModelError::SequentialExceedsTotal { r, n });
        }
        Ok(PortfolioChip { n, r, workload, law: PollackLaw::default() })
    }

    /// A copy with a custom sequential performance law.
    pub fn with_law(mut self, law: PollackLaw) -> Self {
        self.law = law;
        self
    }

    /// The accelerator area budget `n − r`.
    pub fn parallel_area(&self) -> f64 {
        self.n - self.r
    }

    /// The workload this chip serves.
    pub fn workload(&self) -> &SegmentedWorkload {
        &self.workload
    }

    /// The speedup under explicit per-segment areas (the objective both
    /// allocators optimize). Zero-weight segments ignore their area;
    /// positive-weight segments with no area make the chip infeasible.
    ///
    /// The one-segment case evaluates `w_serial/perf(r) + w/(µ·a)` with
    /// the exact operation order of [`crate::heterogeneous`], so handing
    /// it the full parallel area reproduces that function bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] when a positive-weight segment
    /// has `a_k ≤ 0`, and [`ModelError::InvalidPartition`] when `areas`
    /// has the wrong length.
    pub fn speedup_for(&self, areas: &[f64]) -> Result<Speedup, ModelError> {
        let segments = self.workload.segments();
        if areas.len() != segments.len() {
            return Err(ModelError::InvalidPartition { share_sum: areas.len() as f64 });
        }
        let mut denom = self.workload.serial_weight() / self.law.perf(self.r);
        for (segment, &area) in segments.iter().zip(areas) {
            if segment.weight() > 0.0 {
                let parallel_perf = segment.ucore().mu() * area;
                if parallel_perf <= 0.0 {
                    return Err(ModelError::Infeasible {
                        reason: format!(
                            "portfolio segment with weight {} has no accelerator area",
                            segment.weight()
                        ),
                    });
                }
                denom += segment.weight() / parallel_perf;
            }
        }
        Speedup::new(1.0 / denom)
    }

    /// The closed-form KKT allocation: area proportional to
    /// `√(w_k / µ_k)` over the segments whose cap is not binding, with
    /// binding caps clamped and the freed area redistributed until the
    /// active set is stable (at most `k` rounds).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] when the workload has
    /// accelerated weight but `r = n` leaves no accelerator area.
    pub fn allocate(&self) -> Result<Allocation, ModelError> {
        let segments = self.workload.segments();
        let mut areas = vec![0.0; segments.len()];
        let accelerated: Vec<usize> = (0..segments.len())
            .filter(|&k| segments[k].weight() > 0.0)
            .collect();
        if accelerated.is_empty() {
            let speedup = self.speedup_for(&areas)?;
            return Ok(Allocation { areas, speedup });
        }
        let budget = self.parallel_area();
        if budget <= 0.0 {
            return Err(ModelError::Infeasible {
                reason: format!("portfolio with r = n = {} has no u-core area", self.n),
            });
        }

        // Waterfilling active-set loop: start with every accelerated
        // segment free, clamp the segments whose interior share exceeds
        // their cap, and re-split the remaining area over the rest. A
        // clamped cap can only become *more* binding as the remaining
        // area shrinks, so each round only moves segments out of the
        // free set and the loop terminates in at most k rounds.
        let mut free = accelerated;
        let mut remaining = budget;
        loop {
            let z: f64 = free
                .iter()
                .map(|&k| (segments[k].weight() / segments[k].ucore().mu()).sqrt())
                .sum();
            let mut clamped = Vec::new();
            for &k in &free {
                let share = (segments[k].weight() / segments[k].ucore().mu()).sqrt() / z;
                let interior = remaining * share;
                areas[k] = match segments[k].max_area() {
                    Some(cap) if interior > cap => {
                        clamped.push(k);
                        cap
                    }
                    _ => interior,
                };
            }
            if clamped.is_empty() {
                break;
            }
            remaining -= clamped.iter().map(|&k| areas[k]).sum::<f64>();
            free.retain(|k| !clamped.contains(k));
            if free.is_empty() || remaining <= 0.0 {
                break;
            }
        }
        let speedup = self.speedup_for(&areas)?;
        Ok(Allocation { areas, speedup })
    }

    /// The exhaustive reference: enumerate every composition of `grid`
    /// equal area units among the positive-weight segments (each getting
    /// at least one unit, caps respected) and keep the first-wins
    /// strict-`>` argmax — the same tie policy as
    /// [`crate::Optimizer::optimize_exhaustive`].
    ///
    /// This is deliberately verbatim: no pruning, no reuse of the
    /// analytic solution. Kept public as the reference implementation
    /// the differential suite compares [`Self::allocate`] against.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] for a zero grid and
    /// [`ModelError::Infeasible`] when no composition is feasible (no
    /// accelerator area, or caps too tight for the grid).
    pub fn allocate_exhaustive(&self, grid: u32) -> Result<Allocation, ModelError> {
        if grid == 0 {
            return Err(ModelError::NonPositive { what: "allocation grid", value: 0.0 });
        }
        let segments = self.workload.segments();
        let accelerated: Vec<usize> = (0..segments.len())
            .filter(|&k| segments[k].weight() > 0.0)
            .collect();
        let mut areas = vec![0.0; segments.len()];
        if accelerated.is_empty() {
            let speedup = self.speedup_for(&areas)?;
            return Ok(Allocation { areas, speedup });
        }
        let budget = self.parallel_area();
        if budget <= 0.0 {
            return Err(ModelError::Infeasible {
                reason: format!("portfolio with r = n = {} has no u-core area", self.n),
            });
        }
        let mut best: Option<Allocation> = None;
        let mut units = vec![0u32; accelerated.len()];
        self.scan_compositions(grid, grid, 0, &accelerated, &mut units, &mut areas, &mut best);
        best.ok_or_else(|| ModelError::Infeasible {
            reason: format!(
                "no feasible {grid}-unit composition of {budget} BCE across {} segments",
                accelerated.len()
            ),
        })
    }

    /// Recursive enumeration of the compositions behind
    /// [`Self::allocate_exhaustive`]: segment `depth` takes `1..=left`
    /// units (the last segment takes the rest), reserving one unit for
    /// every deeper segment. Full compositions translate to areas
    /// `budget · units_k / grid`, drop out if any cap is violated, and
    /// compete under the first-wins strict-`>` argmax.
    #[allow(clippy::too_many_arguments)]
    fn scan_compositions(
        &self,
        grid: u32,
        left: u32,
        depth: usize,
        accelerated: &[usize],
        units: &mut [u32],
        areas: &mut [f64],
        best: &mut Option<Allocation>,
    ) {
        let segments = self.workload.segments();
        let budget = self.parallel_area();
        if depth + 1 == accelerated.len() {
            units[depth] = left;
            for (&idx, &u) in accelerated.iter().zip(units.iter()) {
                areas[idx] = budget * (f64::from(u) / f64::from(grid));
            }
            if accelerated
                .iter()
                .any(|&idx| matches!(segments[idx].max_area(), Some(cap) if areas[idx] > cap))
            {
                return;
            }
            if let Ok(speedup) = self.speedup_for(areas) {
                let better = match best {
                    Some(b) => speedup.get() > b.speedup.get(),
                    None => true,
                };
                if better {
                    *best = Some(Allocation { areas: areas.to_vec(), speedup });
                }
            }
            return;
        }
        // Leave at least one unit for each remaining segment.
        let reserve = (accelerated.len() - depth - 1) as u32;
        for take in 1..=left.saturating_sub(reserve) {
            units[depth] = take;
            self.scan_compositions(grid, left - take, depth + 1, accelerated, units, areas, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::Segment;
    use crate::ucore::UCore;

    fn seg(w: f64, mu: f64, phi: f64) -> Segment {
        Segment::new(w, UCore::new(mu, phi).unwrap()).unwrap()
    }

    fn chip(n: f64, r: f64, segments: Vec<Segment>) -> PortfolioChip {
        let parallel: f64 = segments.iter().map(Segment::weight).sum();
        let workload = SegmentedWorkload::new(1.0 - parallel, segments).unwrap();
        PortfolioChip::new(n, r, workload).unwrap()
    }

    #[test]
    fn interior_allocation_follows_the_sqrt_rule() {
        // w/mu = 0.5/4 and 0.5/1: shares 1:2 (the mix.rs closed form).
        let c = chip(13.0, 1.0, vec![seg(0.5, 4.0, 1.0), seg(0.5, 1.0, 1.0)]);
        let alloc = c.allocate().unwrap();
        assert!((alloc.areas[0] - 4.0).abs() < 1e-12, "{:?}", alloc.areas);
        assert!((alloc.areas[1] - 8.0).abs() < 1e-12, "{:?}", alloc.areas);
    }

    #[test]
    fn binding_cap_is_clamped_and_area_redistributed() {
        let capped = seg(0.5, 4.0, 1.0).with_max_area(2.0).unwrap();
        let c = chip(13.0, 1.0, vec![capped, seg(0.5, 1.0, 1.0)]);
        let alloc = c.allocate().unwrap();
        assert_eq!(alloc.areas[0], 2.0);
        assert!((alloc.areas[1] - 10.0).abs() < 1e-12);
        // The clamped solution can't beat the unclamped one.
        let free = chip(13.0, 1.0, vec![seg(0.5, 4.0, 1.0), seg(0.5, 1.0, 1.0)]);
        assert!(alloc.speedup.get() <= free.allocate().unwrap().speedup.get());
    }

    #[test]
    fn zero_weight_segments_get_no_area() {
        let c = chip(13.0, 1.0, vec![seg(0.0, 4.0, 1.0), seg(0.9, 1.0, 1.0)]);
        let alloc = c.allocate().unwrap();
        assert_eq!(alloc.areas[0], 0.0);
        assert!((alloc.areas[1] - 12.0).abs() < 1e-12);
        let oracle = c.allocate_exhaustive(16).unwrap();
        assert_eq!(oracle.areas[0], 0.0);
        assert_eq!(oracle.areas[1], 12.0);
    }

    #[test]
    fn no_parallel_area_is_infeasible() {
        let c = chip(4.0, 4.0, vec![seg(0.9, 4.0, 1.0)]);
        assert!(matches!(c.allocate(), Err(ModelError::Infeasible { .. })));
        assert!(matches!(c.allocate_exhaustive(8), Err(ModelError::Infeasible { .. })));
    }

    #[test]
    fn all_serial_workload_runs_on_the_sequential_core() {
        let c = chip(4.0, 4.0, vec![seg(0.0, 4.0, 1.0)]);
        let alloc = c.allocate().unwrap();
        assert_eq!(alloc.areas, vec![0.0]);
        assert!((alloc.speedup.get() - 2.0).abs() < 1e-12); // perf(4) = 2
    }

    #[test]
    fn exhaustive_rejects_zero_grid_and_impossible_grids() {
        let c = chip(13.0, 1.0, vec![seg(0.5, 4.0, 1.0), seg(0.5, 1.0, 1.0)]);
        assert!(matches!(
            c.allocate_exhaustive(0),
            Err(ModelError::NonPositive { .. })
        ));
        // Fewer units than positive-weight segments: nothing to enumerate.
        assert!(matches!(
            c.allocate_exhaustive(1),
            Err(ModelError::Infeasible { .. })
        ));
    }

    #[test]
    fn speedup_for_checks_length_and_starved_segments() {
        let c = chip(13.0, 1.0, vec![seg(0.5, 4.0, 1.0), seg(0.5, 1.0, 1.0)]);
        assert!(c.speedup_for(&[1.0]).is_err());
        assert!(matches!(
            c.speedup_for(&[12.0, 0.0]),
            Err(ModelError::Infeasible { .. })
        ));
    }

    #[test]
    fn constructor_validates_geometry() {
        let w = SegmentedWorkload::new(0.5, vec![seg(0.5, 4.0, 1.0)]).unwrap();
        assert!(PortfolioChip::new(f64::NAN, 1.0, w.clone()).is_err());
        assert!(PortfolioChip::new(4.0, -1.0, w.clone()).is_err());
        assert!(matches!(
            PortfolioChip::new(4.0, 8.0, w),
            Err(ModelError::SequentialExceedsTotal { .. })
        ));
    }
}
