//! Memoized design-point evaluation.
//!
//! An [`Optimizer::optimize`] call is a pure function of its inputs — the
//! sweep parameters, the chip organization and its laws, the budgets, and
//! the parallel fraction — so its result can be memoized. The projection
//! figures and §6.2 scenarios re-evaluate many identical points (the same
//! `(design, node, f)` triple appears in several figures, and the
//! design-space maps revisit grid cells during bisection), which makes a
//! process-wide cache worthwhile.
//!
//! The cache key is [`EvalKey`], built from the *canonicalized bit
//! patterns* of every `f64` input via [`F64Key`]. Canonicalization maps
//! `-0.0` to `0.0` and every NaN to one canonical NaN so that inputs that
//! compare equal (or are equally poisonous) hash equally; otherwise keys
//! are exact — two budgets that differ in the last ulp are distinct
//! design points, never aliased.
//!
//! [`EvalCache`] stores full `Result` values: infeasible points are
//! memoized too, which matters because the projection sweeps probe many
//! infeasible `(design, node)` cells under the tight §6.2 budgets.

use crate::budget::Budgets;
use crate::chip::{ChipKind, ChipSpec};
use crate::error::ModelError;
use crate::optimize::{Objective, OptimalDesign, Optimizer};
use crate::units::ParallelFraction;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use ucore_obs::{Counter, Gauge};

/// An `f64` reduced to hashable canonical bits.
///
/// `f64` is neither `Eq` nor `Hash`; this newtype makes model inputs
/// (budgets, fractions, law exponents) usable as `HashMap` keys by
/// canonicalizing the bit pattern: `-0.0` becomes `+0.0` and every NaN
/// becomes the canonical quiet NaN. All other values keep their exact
/// bits, so distinct finite inputs are never conflated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct F64Key(u64);

impl F64Key {
    /// The canonical key for `x`.
    pub fn new(x: f64) -> Self {
        // Exact-bits intent, so the comparison is on bits too: -0.0
        // collapses onto +0.0 (whose bit pattern is 0), and every NaN
        // payload collapses onto the canonical quiet NaN.
        let bits = x.to_bits();
        if bits == (-0.0f64).to_bits() {
            F64Key(0)
        } else if x.is_nan() {
            F64Key(f64::NAN.to_bits())
        } else {
            F64Key(bits)
        }
    }

    /// The canonicalized bit pattern.
    pub fn bits(&self) -> u64 {
        self.0
    }
}

impl From<f64> for F64Key {
    fn from(x: f64) -> Self {
        F64Key::new(x)
    }
}

impl From<ParallelFraction> for F64Key {
    fn from(f: ParallelFraction) -> Self {
        F64Key::new(f.get())
    }
}

impl From<&Budgets> for [F64Key; 3] {
    fn from(b: &Budgets) -> Self {
        [F64Key::new(b.area()), F64Key::new(b.power()), F64Key::new(b.bandwidth())]
    }
}

/// The complete identity of one `optimize` call: everything the result
/// depends on, in canonical-bits form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    // Optimizer sweep parameters.
    r_min: F64Key,
    r_max: F64Key,
    r_step: F64Key,
    objective: Objective,
    // Chip organization: discriminant plus the U-core's (µ, φ) when
    // heterogeneous (zero otherwise — the discriminant disambiguates).
    kind: u8,
    mu: F64Key,
    phi: F64Key,
    // Laws.
    pollack_exponent: F64Key,
    alpha: F64Key,
    bw_exponent: F64Key,
    // Budgets and workload.
    budgets: [F64Key; 3],
    f: F64Key,
}

impl EvalKey {
    /// Builds the key for `optimizer.optimize(spec, budgets, f)`.
    pub fn new(
        optimizer: &Optimizer,
        spec: &ChipSpec,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Self {
        let (kind, mu, phi) = match spec.kind() {
            ChipKind::Symmetric => (0, 0.0, 0.0),
            ChipKind::Asymmetric => (1, 0.0, 0.0),
            ChipKind::AsymmetricOffload => (2, 0.0, 0.0),
            ChipKind::Dynamic => (3, 0.0, 0.0),
            ChipKind::Heterogeneous(u) => (4, u.mu(), u.phi()),
        };
        EvalKey {
            r_min: optimizer.r_min().into(),
            r_max: optimizer.r_max().into(),
            r_step: optimizer.r_step().into(),
            objective: optimizer.objective(),
            kind,
            mu: mu.into(),
            phi: phi.into(),
            pollack_exponent: spec.law().exponent().into(),
            alpha: spec.power_law().alpha().into(),
            bw_exponent: spec.bandwidth_exponent().into(),
            budgets: budgets.into(),
            f: f.into(),
        }
    }
}

/// Counters describing a cache's activity so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the optimizer (equals evaluations performed).
    pub misses: u64,
    /// Distinct design points currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A thread-safe memo table for [`Optimizer::optimize`] results.
///
/// Both feasible and infeasible outcomes are stored. Reads take a shared
/// lock; the first evaluation of a point runs *outside* any lock (the
/// optimizer sweep is the expensive part) and then takes the exclusive
/// lock only to insert, so concurrent sweeps scale.
///
/// Activity counters are [`ucore_obs`] instruments. A private cache
/// ([`EvalCache::new`]) carries detached instruments, so tests keep
/// exact per-instance stats; the [`EvalCache::global`] cache registers
/// its instruments in the process-wide metrics registry as
/// `cache.hits`, `cache.misses`, `cache.lookups`, and the
/// `cache.entries` gauge, making `repro --stats` a rendered view of the
/// registry.
#[derive(Debug)]
pub struct EvalCache {
    map: RwLock<HashMap<EvalKey, Result<OptimalDesign, ModelError>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    lookups: Arc<Counter>,
    entries: Arc<Gauge>,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache {
            map: RwLock::new(HashMap::new()),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            lookups: Arc::new(Counter::new()),
            entries: Arc::new(Gauge::new()),
        }
    }
}

impl EvalCache {
    /// An empty cache with detached (unregistered) instruments.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// The process-wide cache shared by the projection figures and
    /// scenarios (and anything else that opts in). Its counters are
    /// registered in the global metrics registry under `cache.*`.
    pub fn global() -> &'static Arc<EvalCache> {
        static GLOBAL: OnceLock<Arc<EvalCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let registry = ucore_obs::registry();
            Arc::new(EvalCache {
                map: RwLock::new(HashMap::new()),
                hits: registry.counter("cache.hits"),
                misses: registry.counter("cache.misses"),
                lookups: registry.counter("cache.lookups"),
                entries: registry.gauge("cache.entries"),
            })
        })
    }

    /// Memoized [`Optimizer::optimize`]: returns the cached result for
    /// this exact `(optimizer, spec, budgets, f)` point, evaluating and
    /// storing it on first sight.
    ///
    /// # Errors
    ///
    /// Exactly the errors `Optimizer::optimize` returns for these inputs
    /// (cached like successes).
    pub fn optimize(
        &self,
        optimizer: &Optimizer,
        spec: &ChipSpec,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Result<OptimalDesign, ModelError> {
        let key = EvalKey::new(optimizer, spec, budgets, f);
        if let Some(cached) = self.map.read().get(&key) {
            self.hits.inc();
            self.lookups.inc();
            return cached.clone();
        }
        let result = optimizer.optimize(spec, budgets, f);
        self.misses.inc();
        self.lookups.inc();
        // A racing thread may have inserted the same key meanwhile; both
        // computed the same pure function, so either value is correct.
        let mut map = self.map.write();
        map.insert(key, result.clone());
        // Published under the write lock, so the gauge settles on the
        // final map size.
        self.entries.set(map.len() as f64);
        drop(map);
        result
    }

    /// Activity counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.map.read().len(),
        }
    }

    /// Drops all stored entries (counters keep accumulating).
    pub fn clear(&self) {
        let mut map = self.map.write();
        map.clear();
        self.entries.set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn f64key_canonicalizes_zero_and_nan() {
        assert_eq!(F64Key::new(0.0), F64Key::new(-0.0));
        assert_eq!(F64Key::new(f64::NAN), F64Key::new(-f64::NAN));
        assert_ne!(F64Key::new(1.0), F64Key::new(1.0 + f64::EPSILON));
    }

    #[test]
    fn f64key_unifies_every_nan_payload() {
        // Regression for the bits-based rewrite: every NaN bit pattern —
        // quiet or signaling, any payload, either sign — must collapse to
        // the one canonical NaN key, while non-NaN patterns stay exact.
        for bits in [0x7ff8_0000_dead_beefu64, 0x7ff0_0000_0000_0001, 0xfff8_1234_5678_9abc] {
            let nan = f64::from_bits(bits);
            assert!(nan.is_nan());
            assert_eq!(F64Key::new(nan), F64Key::new(f64::NAN), "payload {bits:#x}");
        }
        // -0.0 folds into +0.0 yet stays distinct from the smallest
        // subnormal one bit away.
        assert_eq!(F64Key::new(-0.0), F64Key::new(0.0));
        assert_ne!(F64Key::new(0.0), F64Key::new(f64::from_bits(1)));
    }

    #[test]
    fn cached_result_matches_direct_call() {
        let cache = EvalCache::new();
        let opt = Optimizer::paper_default();
        let spec = ChipSpec::heterogeneous(UCore::new(27.4, 0.79).unwrap());
        let budgets = Budgets::new(111.0, 29.0, 85.0).unwrap();
        let direct = opt.optimize(&spec, &budgets, f(0.99)).unwrap();
        let first = cache.optimize(&opt, &spec, &budgets, f(0.99)).unwrap();
        let second = cache.optimize(&opt, &spec, &budgets, f(0.99)).unwrap();
        assert_eq!(direct, first);
        assert_eq!(direct, second);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infeasible_outcomes_are_cached_too() {
        let cache = EvalCache::new();
        let opt = Optimizer::paper_default();
        let spec = ChipSpec::symmetric();
        // Power 0.5 rejects even r = 1 in the serial phase.
        let budgets = Budgets::new(64.0, 0.5, 100.0).unwrap();
        assert!(cache.optimize(&opt, &spec, &budgets, f(0.5)).is_err());
        assert!(cache.optimize(&opt, &spec, &budgets, f(0.5)).is_err());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_points_get_distinct_entries() {
        let cache = EvalCache::new();
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 100.0, 100.0).unwrap();
        for spec in [ChipSpec::symmetric(), ChipSpec::asymmetric_offload()] {
            for fv in [0.5, 0.9, 0.99] {
                cache.optimize(&opt, &spec, &budgets, f(fv)).unwrap();
            }
        }
        assert_eq!(cache.stats().entries, 6);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        // Counters survive a clear.
        assert_eq!(cache.stats().misses, 6);
    }

    #[test]
    fn key_distinguishes_ucores_and_laws() {
        let opt = Optimizer::paper_default();
        let budgets = Budgets::new(64.0, 100.0, 100.0).unwrap();
        let a = ChipSpec::heterogeneous(UCore::new(10.0, 0.5).unwrap());
        let b = ChipSpec::heterogeneous(UCore::new(10.0, 0.6).unwrap());
        assert_ne!(
            EvalKey::new(&opt, &a, &budgets, f(0.9)),
            EvalKey::new(&opt, &b, &budgets, f(0.9))
        );
        let c = a.with_bandwidth_exponent(0.8);
        assert_ne!(
            EvalKey::new(&opt, &a, &budgets, f(0.9)),
            EvalKey::new(&opt, &c, &budgets, f(0.9))
        );
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = EvalCache::new();
        let opt = Optimizer::paper_default();
        let spec = ChipSpec::asymmetric_offload();
        let budgets = Budgets::new(111.0, 29.0, 85.0).unwrap();
        let baseline = opt.optimize(&spec, &budgets, f(0.9)).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let got = cache.optimize(&opt, &spec, &budgets, f(0.9)).unwrap();
                        assert_eq!(got, baseline);
                    }
                });
            }
        });
        assert_eq!(cache.stats().lookups(), 200);
        assert_eq!(cache.stats().entries, 1);
    }
}
