//! Varying-parallelism profiles — the paper's first future-work item.
//!
//! "Models in the future should attempt to incorporate varying degrees
//! of parallelism in an application, in order to capture how 'suitable'
//! certain types of U-cores might be under a given parallelism profile."
//!
//! A [`ParallelismProfile`] describes an application as a mixture of
//! phases, each with its own parallel fraction and share of the original
//! execution time. Total speedup follows from per-phase speedups by
//! time-weighted harmonic composition: if phase `i` holds fraction `w_i`
//! of the baseline time and is sped up by `s_i`, the new time is
//! `Σ w_i / s_i`.
//!
//! A structural consequence worth knowing: because the modeled execution
//! time of a *fixed* design is linear in `f`, its profile speedup equals
//! its speedup at the profile's **mean** `f`. The profile machinery pays
//! off when phases run on different fabrics ([`crate::mix::MixedChip`])
//! or when designs are compared/re-optimized per profile — not for a
//! single fixed design.

use crate::budget::Budgets;
use crate::chip::ChipSpec;
use crate::error::ModelError;
use crate::optimize::Optimizer;
use crate::units::{ParallelFraction, Speedup};
use serde::{Deserialize, Serialize};

/// One phase of an application: a parallel fraction and the share of
/// baseline execution time spent in it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The phase's parallel fraction.
    pub f: ParallelFraction,
    /// Share of baseline (single-BCE) execution time, `Σ = 1`.
    pub weight: f64,
}

/// A mixture of phases with different degrees of parallelism.
///
/// ```
/// use ucore_core::{ParallelismProfile, ParallelFraction};
/// let profile = ParallelismProfile::new(vec![
///     (ParallelFraction::new(0.999)?, 0.6),
///     (ParallelFraction::new(0.5)?, 0.4),
/// ])?;
/// assert!((profile.mean_f() - 0.7994).abs() < 1e-9);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismProfile {
    phases: Vec<Phase>,
}

impl ParallelismProfile {
    /// Creates a profile from `(f, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPartition`] unless the weights are
    /// positive and sum to 1 (within 1e-6), or
    /// [`ModelError::Infeasible`] for an empty profile.
    pub fn new(phases: Vec<(ParallelFraction, f64)>) -> Result<Self, ModelError> {
        if phases.is_empty() {
            return Err(ModelError::Infeasible {
                reason: "a parallelism profile needs at least one phase".into(),
            });
        }
        let mut sum = 0.0;
        for &(_, w) in &phases {
            crate::error::ensure_positive("phase weight", w)?;
            sum += w;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::InvalidPartition { share_sum: sum });
        }
        Ok(ParallelismProfile {
            phases: phases
                .into_iter()
                .map(|(f, weight)| Phase { f, weight })
                .collect(),
        })
    }

    /// A single-phase profile — the classic fixed-`f` model.
    pub fn uniform(f: ParallelFraction) -> Self {
        ParallelismProfile { phases: vec![Phase { f, weight: 1.0 }] }
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The time-weighted mean parallel fraction.
    pub fn mean_f(&self) -> f64 {
        self.phases.iter().map(|p| p.weight * p.f.get()).sum()
    }

    /// Speedup of a fixed design `(n, r)` under this profile.
    ///
    /// # Errors
    ///
    /// Propagates per-phase model errors.
    pub fn speedup(&self, spec: &ChipSpec, n: f64, r: f64) -> Result<Speedup, ModelError> {
        let mut new_time = 0.0;
        for phase in &self.phases {
            let s = spec.speedup(phase.f, n, r)?;
            new_time += phase.weight / s.get();
        }
        Speedup::new(1.0 / new_time)
    }

    /// The best design for this profile under budgets: sweeps `r` like
    /// the paper's optimizer, but scores whole-profile speedup.
    ///
    /// The sized `n` must satisfy every phase's bounds simultaneously
    /// (the chip is built once), so the tightest phase governs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] if no swept `r` is feasible.
    pub fn optimize(
        &self,
        spec: &ChipSpec,
        budgets: &Budgets,
        optimizer: &Optimizer,
    ) -> Result<ProfileOptimum, ModelError> {
        let mut best: Option<ProfileOptimum> = None;
        for r in optimizer.candidates() {
            let Ok(bounds) = crate::bounds::BoundSet::compute(spec, budgets, r) else {
                continue;
            };
            let n = bounds.n_max().max(r);
            let Ok(speedup) = self.speedup(spec, n, r) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| speedup > b.speedup) {
                best = Some(ProfileOptimum { speedup, n, r, limiter: bounds.limiter() });
            }
        }
        best.ok_or_else(|| ModelError::Infeasible {
            reason: format!("no feasible design for the profile under {budgets}"),
        })
    }
}

/// The best design found for a profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileOptimum {
    /// Whole-profile speedup.
    pub speedup: Speedup,
    /// Total resources used.
    pub n: f64,
    /// Sequential-core size.
    pub r: f64,
    /// The binding resource at the optimum's `r`.
    pub limiter: crate::bounds::Limiter,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucore::UCore;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn uniform_profile_matches_plain_speedup() {
        let spec = ChipSpec::heterogeneous(UCore::new(5.0, 0.5).unwrap());
        let profile = ParallelismProfile::uniform(f(0.9));
        let via_profile = profile.speedup(&spec, 19.0, 2.0).unwrap();
        let direct = spec.speedup(f(0.9), 19.0, 2.0).unwrap();
        assert!((via_profile.get() - direct.get()).abs() < 1e-12);
    }

    #[test]
    fn weights_must_sum_to_one() {
        assert!(ParallelismProfile::new(vec![(f(0.9), 0.5), (f(0.5), 0.4)]).is_err());
        assert!(ParallelismProfile::new(vec![]).is_err());
        assert!(ParallelismProfile::new(vec![(f(0.9), -1.0), (f(0.5), 2.0)]).is_err());
    }

    #[test]
    fn mixture_is_harmonic_not_arithmetic() {
        // A profile half serial-ish, half highly parallel, is dominated
        // by its slow phase — the mixture speedup is far below the
        // arithmetic mean of phase speedups.
        let spec = ChipSpec::heterogeneous(UCore::new(100.0, 1.0).unwrap());
        let profile =
            ParallelismProfile::new(vec![(f(0.0), 0.5), (f(1.0), 0.5)]).unwrap();
        let s = profile.speedup(&spec, 100.0, 4.0).unwrap().get();
        let slow = spec.speedup(f(0.0), 100.0, 4.0).unwrap().get();
        let fast = spec.speedup(f(1.0), 100.0, 4.0).unwrap().get();
        assert!(s < (slow + fast) / 8.0, "s = {s}, phases = {slow}/{fast}");
        // And bounded by twice the slow phase (it holds half the time).
        assert!(s <= 2.0 * slow + 1e-9);
    }

    #[test]
    fn profile_optimum_balances_phases() {
        // With a serial phase in the mix, the best r is larger than the
        // pure-parallel optimum (r = 1).
        let spec = ChipSpec::heterogeneous(UCore::new(10.0, 1.0).unwrap());
        let budgets = Budgets::new(64.0, 1000.0, 1e6).unwrap();
        let opt = Optimizer::paper_default();
        let mixed = ParallelismProfile::new(vec![(f(0.5), 0.5), (f(0.999), 0.5)])
            .unwrap()
            .optimize(&spec, &budgets, &opt)
            .unwrap();
        let pure = ParallelismProfile::uniform(f(0.999))
            .optimize(&spec, &budgets, &opt)
            .unwrap();
        assert!(mixed.r >= pure.r);
    }

    #[test]
    fn mean_f_is_weighted() {
        let p = ParallelismProfile::new(vec![(f(1.0), 0.25), (f(0.0), 0.75)]).unwrap();
        assert!((p.mean_f() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fixed_design_profile_equals_mean_f() {
        // Because the modeled execution time is *linear* in f, a fixed
        // design's profile speedup collapses exactly to the mean-f
        // speedup. (Profiles earn their keep with per-phase fabrics —
        // see `MixedChip` — or per-phase design re-optimization.)
        let spec = ChipSpec::heterogeneous(UCore::new(20.0, 1.0).unwrap());
        let profile =
            ParallelismProfile::new(vec![(f(0.5), 0.5), (f(1.0), 0.5)]).unwrap();
        let mixture = profile.speedup(&spec, 64.0, 4.0).unwrap().get();
        let averaged = spec
            .speedup(ParallelFraction::new(profile.mean_f()).unwrap(), 64.0, 4.0)
            .unwrap()
            .get();
        assert!((averaged - mixture).abs() < 1e-9 * averaged);
    }

    #[test]
    fn infeasible_budgets_reported() {
        let spec = ChipSpec::symmetric();
        let budgets = Budgets::new(64.0, 0.5, 1e6).unwrap(); // P < 1 BCE
        let opt = Optimizer::paper_default();
        let err = ParallelismProfile::uniform(f(0.9))
            .optimize(&spec, &budgets, &opt)
            .unwrap_err();
        assert!(matches!(err, ModelError::Infeasible { .. }));
    }
}
