//! Chip organizations and concrete design points.
//!
//! A [`ChipSpec`] names one of the paper's machine models (Figure 1 plus
//! the dynamic model); a [`DesignPoint`] pins down the resource split
//! `(n, r)`; evaluating a design against budgets yields an [`Evaluation`]
//! with the achieved speedup and the binding constraint.

use crate::bounds::{BoundSet, Limiter};
use crate::budget::Budgets;
use crate::error::ModelError;
use crate::seq::{SequentialLaw, PollackLaw, SerialPowerLaw};
use crate::speedup;
use crate::ucore::UCore;
use crate::units::{ParallelFraction, Speedup};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The machine organizations considered by the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChipKind {
    /// `n/r` identical cores of size `r` (Figure 1a).
    Symmetric,
    /// One core of size `r` plus `n − r` BCE cores, all active in parallel
    /// sections (Hill-Marty's original asymmetric machine).
    Asymmetric,
    /// Asymmetric with the big core powered off during parallel sections —
    /// the paper's CMP baseline ("AsymCMP").
    AsymmetricOffload,
    /// Hypothetical machine that uses all `n` resources in both phases
    /// (Hill-Marty's dynamic model; not plotted in the paper).
    Dynamic,
    /// One sequential core of size `r` plus `n − r` BCE of U-cores
    /// (Figure 1c).
    Heterogeneous(UCore),
}

impl ChipKind {
    /// A short identifier matching the labels in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ChipKind::Symmetric => "SymCMP",
            ChipKind::Asymmetric => "Asym",
            ChipKind::AsymmetricOffload => "AsymCMP",
            ChipKind::Dynamic => "Dynamic",
            ChipKind::Heterogeneous(_) => "HET",
        }
    }
}

impl fmt::Display for ChipKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipKind::Heterogeneous(u) => write!(f, "HET({u})"),
            other => f.write_str(other.label()),
        }
    }
}

/// A machine organization together with the laws governing its sequential
/// core.
///
/// ```
/// use ucore_core::{ChipSpec, UCore};
/// let spec = ChipSpec::heterogeneous(UCore::new(3.41, 0.74)?);
/// assert_eq!(spec.kind().label(), "HET");
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    kind: ChipKind,
    law: PollackLaw,
    power_law: SerialPowerLaw,
    #[serde(default = "default_bw_exponent")]
    bw_exponent: f64,
}

fn default_bw_exponent() -> f64 {
    1.0
}

impl ChipSpec {
    /// Creates a spec with explicit performance and power laws.
    pub fn new(kind: ChipKind, law: PollackLaw, power_law: SerialPowerLaw) -> Self {
        ChipSpec { kind, law, power_law, bw_exponent: 1.0 }
    }

    /// A symmetric multicore with the paper's default laws.
    pub fn symmetric() -> Self {
        Self::new(ChipKind::Symmetric, PollackLaw::default(), SerialPowerLaw::paper_default())
    }

    /// Hill-Marty's asymmetric multicore with the paper's default laws.
    pub fn asymmetric() -> Self {
        Self::new(ChipKind::Asymmetric, PollackLaw::default(), SerialPowerLaw::paper_default())
    }

    /// The paper's asymmetric-offload CMP baseline.
    pub fn asymmetric_offload() -> Self {
        Self::new(
            ChipKind::AsymmetricOffload,
            PollackLaw::default(),
            SerialPowerLaw::paper_default(),
        )
    }

    /// The dynamic machine model.
    pub fn dynamic() -> Self {
        Self::new(ChipKind::Dynamic, PollackLaw::default(), SerialPowerLaw::paper_default())
    }

    /// A heterogeneous chip built around the given U-core.
    pub fn heterogeneous(ucore: UCore) -> Self {
        Self::new(
            ChipKind::Heterogeneous(ucore),
            PollackLaw::default(),
            SerialPowerLaw::paper_default(),
        )
    }

    /// The machine organization.
    pub fn kind(&self) -> &ChipKind {
        &self.kind
    }

    /// The sequential performance law.
    pub fn law(&self) -> &PollackLaw {
        &self.law
    }

    /// The serial power law.
    pub fn power_law(&self) -> &SerialPowerLaw {
        &self.power_law
    }

    /// Returns a copy using a different serial power law (e.g. the
    /// scenario-6 α = 2.25 study).
    pub fn with_power_law(&self, power_law: SerialPowerLaw) -> Self {
        ChipSpec { power_law, ..*self }
    }

    /// Returns a copy using a different sequential performance law.
    pub fn with_law(&self, law: PollackLaw) -> Self {
        ChipSpec { law, ..*self }
    }

    /// Returns a copy using a different bandwidth-scaling exponent:
    /// off-chip traffic is modeled as `perf^e`. The paper assumes
    /// `e = 1` ("bandwidth scales linearly with respect to BCE
    /// performance"); `e < 1` models designs whose caches absorb a
    /// growing share of traffic as they scale (the `ablation_bw_scaling`
    /// study).
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is not positive and finite (a configuration
    /// error, caught at construction).
    pub fn with_bandwidth_exponent(&self, exponent: f64) -> Self {
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "bandwidth exponent must be positive and finite"
        );
        ChipSpec { bw_exponent: exponent, ..*self }
    }

    /// The bandwidth-scaling exponent (1.0 = the paper's linear model).
    pub fn bandwidth_exponent(&self) -> f64 {
        self.bw_exponent
    }

    /// The largest parallel-phase *performance* a bandwidth budget `b`
    /// admits: inverts `perf^e <= b`.
    pub(crate) fn max_perf_for_bandwidth(&self, b: f64) -> f64 {
        b.powf(1.0 / self.bw_exponent)
    }

    /// Speedup of the design `(n, r)` on a workload with parallel fraction
    /// `f`, ignoring budgets.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the underlying formula (invalid
    /// `n`/`r`, `r > n`, or no parallel resources for `f > 0`).
    pub fn speedup(
        &self,
        f: ParallelFraction,
        n: f64,
        r: f64,
    ) -> Result<Speedup, ModelError> {
        match &self.kind {
            ChipKind::Symmetric => speedup::symmetric(f, n, r, &self.law),
            ChipKind::Asymmetric => speedup::asymmetric(f, n, r, &self.law),
            ChipKind::AsymmetricOffload => speedup::asymmetric_offload(f, n, r, &self.law),
            ChipKind::Dynamic => speedup::dynamic(f, n, r, &self.law),
            ChipKind::Heterogeneous(u) => speedup::heterogeneous(f, n, r, u, &self.law),
        }
    }

    /// Performance delivered during the parallel phase by the design
    /// `(n, r)`, in BCE units.
    pub fn parallel_perf(&self, n: f64, r: f64) -> f64 {
        match &self.kind {
            ChipKind::Symmetric => (n / r) * self.law.perf(r),
            ChipKind::Asymmetric => self.law.perf(r) + (n - r),
            ChipKind::AsymmetricOffload => n - r,
            ChipKind::Dynamic => n,
            ChipKind::Heterogeneous(u) => u.mu() * (n - r),
        }
    }

    /// Power drawn during the parallel phase by the design `(n, r)`, in
    /// BCE active-power units.
    pub fn parallel_power(&self, n: f64, r: f64) -> f64 {
        let seq_power = self.power_law.power_of_perf(self.law.perf(r));
        match &self.kind {
            ChipKind::Symmetric => (n / r) * seq_power,
            ChipKind::Asymmetric => seq_power + (n - r),
            ChipKind::AsymmetricOffload => n - r,
            ChipKind::Dynamic => n,
            ChipKind::Heterogeneous(u) => u.phi() * (n - r),
        }
    }

    /// Power drawn during the serial phase: the sequential core alone.
    pub fn serial_power(&self, r: f64) -> f64 {
        self.power_law.power_of_perf(self.law.perf(r))
    }

    /// Off-chip bandwidth consumed during the parallel phase, in
    /// compulsory-bandwidth units (bandwidth scales linearly with
    /// delivered performance).
    pub fn parallel_bandwidth(&self, n: f64, r: f64) -> f64 {
        self.parallel_perf(n, r).powf(self.bw_exponent)
    }

    /// Off-chip bandwidth consumed during the serial phase.
    pub fn serial_bandwidth(&self, r: f64) -> f64 {
        self.law.perf(r).powf(self.bw_exponent)
    }

    /// Evaluates the design `(n, r)` under `budgets`, checking feasibility
    /// and reporting the achieved speedup and the binding constraint.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] if the serial phase violates its
    /// power or bandwidth bound or if the requested `n` exceeds what the
    /// budgets permit; propagates formula validation errors otherwise.
    pub fn evaluate(
        &self,
        f: ParallelFraction,
        n: f64,
        r: f64,
        budgets: &Budgets,
    ) -> Result<Evaluation, ModelError> {
        let bounds = BoundSet::compute(self, budgets, r)?;
        if n > bounds.n_max() + 1e-9 {
            return Err(ModelError::Infeasible {
                reason: format!(
                    "n = {n} exceeds the {} bound of {:.3}",
                    bounds.limiter(),
                    bounds.n_max()
                ),
            });
        }
        let speedup = self.speedup(f, n, r)?;
        Ok(Evaluation {
            speedup,
            limiter: bounds.limiter(),
            n,
            r,
            serial_power: self.serial_power(r),
            parallel_power: self.parallel_power(n, r),
            parallel_bandwidth: self.parallel_bandwidth(n, r),
        })
    }
}

/// A fully specified design: a chip organization plus its `(n, r)` split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The machine organization and laws.
    pub spec: ChipSpec,
    /// Total resources in BCE of area.
    pub n: f64,
    /// Resources dedicated to the sequential core, in BCE.
    pub r: f64,
}

impl DesignPoint {
    /// Creates a design point after validating `n` and `r`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < r ≤ n` and both are finite.
    pub fn new(spec: ChipSpec, n: f64, r: f64) -> Result<Self, ModelError> {
        crate::error::ensure_positive("n", n)?;
        crate::error::ensure_positive("r", r)?;
        if r > n {
            return Err(ModelError::SequentialExceedsTotal { r, n });
        }
        Ok(DesignPoint { spec, n, r })
    }

    /// The area devoted to parallel resources, `n − r`.
    pub fn parallel_area(&self) -> f64 {
        self.n - self.r
    }
}

/// The outcome of evaluating a design under budgets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Achieved speedup relative to one BCE.
    pub speedup: Speedup,
    /// Which resource bound the usable `n` first (the paper's
    /// dashed-vs-solid line distinction).
    pub limiter: Limiter,
    /// Total resources used, in BCE.
    pub n: f64,
    /// Sequential-core size, in BCE.
    pub r: f64,
    /// Power drawn in the serial phase (BCE units).
    pub serial_power: f64,
    /// Power drawn in the parallel phase (BCE units).
    pub parallel_power: f64,
    /// Bandwidth drawn in the parallel phase (compulsory units).
    pub parallel_bandwidth: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(ChipSpec::symmetric().kind().label(), "SymCMP");
        assert_eq!(ChipSpec::asymmetric_offload().kind().label(), "AsymCMP");
        let u = UCore::bce_equivalent();
        assert_eq!(ChipSpec::heterogeneous(u).kind().label(), "HET");
    }

    #[test]
    fn parallel_perf_formulas() {
        let n = 16.0;
        let r = 4.0;
        assert!((ChipSpec::symmetric().parallel_perf(n, r) - 8.0).abs() < 1e-12); // (16/4)*2
        assert!((ChipSpec::asymmetric().parallel_perf(n, r) - 14.0).abs() < 1e-12); // 2 + 12
        assert!(
            (ChipSpec::asymmetric_offload().parallel_perf(n, r) - 12.0).abs() < 1e-12
        );
        assert!((ChipSpec::dynamic().parallel_perf(n, r) - 16.0).abs() < 1e-12);
        let u = UCore::new(10.0, 0.5).unwrap();
        assert!(
            (ChipSpec::heterogeneous(u).parallel_perf(n, r) - 120.0).abs() < 1e-12
        );
    }

    #[test]
    fn parallel_power_formulas() {
        let n = 16.0;
        let r = 4.0;
        let seq_power = 4f64.powf(0.875); // r^(alpha/2)
        assert!(
            (ChipSpec::symmetric().parallel_power(n, r) - 4.0 * seq_power).abs() < 1e-12
        );
        assert!(
            (ChipSpec::asymmetric().parallel_power(n, r) - (seq_power + 12.0)).abs()
                < 1e-12
        );
        assert!(
            (ChipSpec::asymmetric_offload().parallel_power(n, r) - 12.0).abs() < 1e-12
        );
        let u = UCore::new(10.0, 0.5).unwrap();
        assert!(
            (ChipSpec::heterogeneous(u).parallel_power(n, r) - 6.0).abs() < 1e-12
        );
    }

    #[test]
    fn serial_power_is_r_to_alpha_over_two() {
        let spec = ChipSpec::symmetric();
        assert!((spec.serial_power(2.0) - 2f64.powf(0.875)).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_tracks_performance() {
        let u = UCore::new(5.0, 1.0).unwrap();
        let spec = ChipSpec::heterogeneous(u);
        assert_eq!(spec.parallel_bandwidth(11.0, 1.0), spec.parallel_perf(11.0, 1.0));
        assert!((spec.serial_bandwidth(4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_rejects_overbudget_n() {
        let spec = ChipSpec::asymmetric_offload();
        let budgets = Budgets::new(8.0, 100.0, 100.0).unwrap();
        let err = spec.evaluate(f(0.9), 16.0, 1.0, &budgets).unwrap_err();
        assert!(matches!(err, ModelError::Infeasible { .. }));
    }

    #[test]
    fn evaluate_reports_speedup_and_limiter() {
        let spec = ChipSpec::asymmetric_offload();
        let budgets = Budgets::new(8.0, 100.0, 100.0).unwrap();
        let eval = spec.evaluate(f(0.9), 8.0, 1.0, &budgets).unwrap();
        assert!(eval.speedup.get() > 1.0);
        assert_eq!(eval.limiter, Limiter::Area);
    }

    #[test]
    fn design_point_validation() {
        let spec = ChipSpec::symmetric();
        assert!(DesignPoint::new(spec, 4.0, 8.0).is_err());
        let d = DesignPoint::new(spec, 8.0, 2.0).unwrap();
        assert_eq!(d.parallel_area(), 6.0);
    }

    #[test]
    fn display_shows_ucore_parameters() {
        let u = UCore::new(27.4, 0.79).unwrap();
        let s = ChipKind::Heterogeneous(u).to_string();
        assert!(s.contains("27.4"));
        assert!(s.contains("0.79"));
    }
}
