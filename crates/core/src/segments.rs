//! n-segment workloads: the Multi-Amdahl generalization of the paper's
//! single `(serial, parallel)` split.
//!
//! The paper models a program as one serial fraction `1 − f` and one
//! parallel fraction `f` accelerated by a single U-core type (§3–§4).
//! Multi-Amdahl (Zidenberg, Keslassy and Weiser; see PAPERS.md) instead
//! describes the program as `k` execution *segments*: segment `k` takes
//! a fraction `w_k` of the baseline execution time and is accelerated by
//! a device with its own `(µ_k, φ_k)` law — the same per-kernel U-core
//! parameters Table 5 calibrates. A [`SegmentedWorkload`] is that
//! description; [`crate::portfolio`] turns it into a chip by allocating
//! accelerator area across the segments.
//!
//! The weights are fractions of *baseline* (single-BCE) execution time,
//! so `serial_weight + Σ w_k = 1` exactly as `1 − f` and `f` do in the
//! two-phase model. A [`SegmentedWorkload`] with one segment is the
//! paper's model verbatim: [`crate::portfolio::PortfolioChip::allocate`]
//! on it reproduces [`crate::heterogeneous`] bit for bit (the
//! differential suite in `tests/portfolio_equiv.rs` pins this).

use crate::error::ModelError;
use crate::ucore::UCore;
use crate::units::ParallelFraction;
use serde::{Deserialize, Serialize};

/// How far `serial_weight + Σ w_k` may drift from 1 before the workload
/// is rejected (same tolerance as [`crate::MixedChip`]'s share check).
pub const WEIGHT_SUM_TOLERANCE: f64 = 1e-6;

/// One execution segment: a fraction of baseline execution time plus the
/// U-core law of the device that accelerates it.
///
/// ```
/// use ucore_core::{Segment, UCore};
/// let asic = UCore::new(27.4, 0.79)?;
/// let seg = Segment::new(0.5, asic)?;
/// assert_eq!(seg.weight(), 0.5);
/// # Ok::<(), ucore_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    weight: f64,
    ucore: UCore,
    max_area: Option<f64>,
}

impl Segment {
    /// A segment taking fraction `weight` of baseline execution time,
    /// accelerated by `ucore`. A zero weight is legal (the segment is
    /// absent from this program; its accelerator gets no area).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFinite`] for NaN/±∞ weights and
    /// [`ModelError::NonPositive`] for negative ones.
    pub fn new(weight: f64, ucore: UCore) -> Result<Self, ModelError> {
        if !weight.is_finite() {
            return Err(ModelError::NotFinite { what: "segment weight" });
        }
        if weight < 0.0 {
            return Err(ModelError::NonPositive { what: "segment weight", value: weight });
        }
        Ok(Segment { weight, ucore, max_area: None })
    }

    /// A copy with an upper bound on the accelerator area this segment
    /// may receive (in BCE). The portfolio allocator uses this to model
    /// per-accelerator power limits: only one accelerator is powered at
    /// a time, so segment `k` is capped at `P_parallel / φ_k`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `max_area` is positive and finite.
    pub fn with_max_area(mut self, max_area: f64) -> Result<Self, ModelError> {
        crate::error::ensure_positive("segment area cap", max_area)?;
        self.max_area = Some(max_area);
        Ok(self)
    }

    /// The fraction of baseline execution time this segment takes.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The U-core law of the accelerator this segment runs on.
    pub fn ucore(&self) -> UCore {
        self.ucore
    }

    /// The area cap, if one was set via [`Self::with_max_area`].
    pub fn max_area(&self) -> Option<f64> {
        self.max_area
    }
}

/// A program as a serial weight plus `k` accelerated segments, with
/// `serial_weight + Σ w_k = 1` (within [`WEIGHT_SUM_TOLERANCE`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentedWorkload {
    serial_weight: f64,
    segments: Vec<Segment>,
}

impl SegmentedWorkload {
    /// A workload from its serial weight and segments.
    ///
    /// ```
    /// use ucore_core::{Segment, SegmentedWorkload, UCore};
    /// let mmm = Segment::new(0.6, UCore::new(27.4, 0.79)?)?;
    /// let fft = Segment::new(0.3, UCore::new(489.0, 4.96)?)?;
    /// let w = SegmentedWorkload::new(0.1, vec![mmm, fft])?;
    /// assert_eq!(w.segments().len(), 2);
    /// # Ok::<(), ucore_core::ModelError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFinite`]/[`ModelError::NonPositive`] for
    /// a poisoned serial weight, [`ModelError::Infeasible`] for an empty
    /// segment list, and [`ModelError::InvalidPartition`] when the
    /// weights do not sum to 1.
    pub fn new(serial_weight: f64, segments: Vec<Segment>) -> Result<Self, ModelError> {
        if !serial_weight.is_finite() {
            return Err(ModelError::NotFinite { what: "serial weight" });
        }
        if serial_weight < 0.0 {
            return Err(ModelError::NonPositive { what: "serial weight", value: serial_weight });
        }
        if segments.is_empty() {
            return Err(ModelError::Infeasible {
                reason: "segmented workload needs at least one segment".into(),
            });
        }
        let share_sum = serial_weight + segments.iter().map(Segment::weight).sum::<f64>();
        if (share_sum - 1.0).abs() > WEIGHT_SUM_TOLERANCE {
            return Err(ModelError::InvalidPartition { share_sum });
        }
        Ok(SegmentedWorkload { serial_weight, segments })
    }

    /// The paper's two-phase model as a one-segment workload: serial
    /// weight `1 − f`, one segment of weight `f` on `ucore`. The
    /// portfolio allocator on this workload reduces bit-exactly to
    /// [`crate::heterogeneous`].
    pub fn from_fraction(f: ParallelFraction, ucore: UCore) -> Self {
        SegmentedWorkload {
            serial_weight: f.serial(),
            segments: vec![Segment { weight: f.get(), ucore, max_area: None }],
        }
    }

    /// The serial weight `1 − Σ w_k`.
    pub fn serial_weight(&self) -> f64 {
        self.serial_weight
    }

    /// The accelerated segments, in construction order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The total accelerated weight `Σ w_k`.
    pub fn parallel_weight(&self) -> f64 {
        self.segments.iter().map(Segment::weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ucore() -> UCore {
        UCore::new(27.4, 0.79).unwrap()
    }

    #[test]
    fn segment_accepts_zero_weight_and_rejects_poison() {
        assert!(Segment::new(0.0, ucore()).is_ok());
        assert!(Segment::new(f64::NAN, ucore()).is_err());
        assert!(Segment::new(f64::INFINITY, ucore()).is_err());
        assert!(Segment::new(-0.1, ucore()).is_err());
    }

    #[test]
    fn area_cap_must_be_positive() {
        let seg = Segment::new(0.5, ucore()).unwrap();
        assert!(seg.with_max_area(2.0).is_ok());
        assert!(seg.with_max_area(0.0).is_err());
        assert!(seg.with_max_area(f64::NAN).is_err());
        assert_eq!(seg.max_area(), None);
        assert_eq!(seg.with_max_area(2.0).unwrap().max_area(), Some(2.0));
    }

    #[test]
    fn workload_enforces_unit_weight_sum() {
        let seg = |w| Segment::new(w, ucore()).unwrap();
        assert!(SegmentedWorkload::new(0.2, vec![seg(0.5), seg(0.3)]).is_ok());
        let err = SegmentedWorkload::new(0.2, vec![seg(0.5)]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidPartition { .. }));
    }

    #[test]
    fn workload_rejects_empty_segments_and_poisoned_serial() {
        assert!(matches!(
            SegmentedWorkload::new(1.0, vec![]).unwrap_err(),
            ModelError::Infeasible { .. }
        ));
        let seg = Segment::new(1.0, ucore()).unwrap();
        assert!(SegmentedWorkload::new(f64::NAN, vec![seg]).is_err());
        assert!(SegmentedWorkload::new(-0.5, vec![seg]).is_err());
    }

    #[test]
    fn from_fraction_mirrors_the_two_phase_split() {
        let f = ParallelFraction::new(0.99).unwrap();
        let w = SegmentedWorkload::from_fraction(f, ucore());
        assert_eq!(w.serial_weight(), f.serial());
        assert_eq!(w.segments().len(), 1);
        assert_eq!(w.segments()[0].weight(), f.get());
    }

    #[test]
    fn parallel_weight_sums_segments() {
        let seg = |w| Segment::new(w, ucore()).unwrap();
        let w = SegmentedWorkload::new(0.25, vec![seg(0.5), seg(0.25)]).unwrap();
        assert!((w.parallel_weight() - 0.75).abs() < 1e-15);
    }
}
