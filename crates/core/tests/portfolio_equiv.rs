//! Differential tests: the closed-form KKT allocator
//! [`PortfolioChip::allocate`] against the exhaustive grid oracle
//! [`PortfolioChip::allocate_exhaustive`], plus the degenerate-case pins
//! the tentpole issue demands.
//!
//! Tolerance policy (documented here and in DESIGN.md §19): the analytic
//! allocator optimizes over a *superset* of the grid, so its speedup may
//! never fall below the oracle's (checked to 1e-9 relative, pure f64
//! noise). In the other direction, rounding the KKT point onto a
//! `G`-unit grid costs at most a factor `k/G` of speedup (each of the
//! `k` active segments keeps at least `(G−k)/G` of its optimal area), so
//! the oracle must score at least `S* · (1 − (k+1)/G)` — `k/G` from the
//! rounding argument plus `1/G` of slack for f64 noise. When the KKT
//! point lies exactly on the grid, the comparison tightens to exact f64
//! bits on both the argmax areas and the objective.

use proptest::prelude::*;
use ucore_core::{
    heterogeneous, MixedChip, ModelError, ParallelFraction, PollackLaw, PortfolioChip,
    Segment, SegmentedWorkload, UCore, UCorePartition,
};

/// Grid sizes keeping the oracle's composition count (`C(G−1, k−1)`)
/// test-sized at every segment count.
fn grid_for(active: usize) -> u32 {
    match active {
        0 | 1 => 64,
        2 => 128,
        3 => 64,
        4 => 48,
        5 => 32,
        _ => 24,
    }
}

/// Builds a chip from raw proptest draws: weights are normalized to sum
/// to 1 with the serial share, and `zero_mask` knocks out segments to
/// exercise the zero-weight path.
fn build_chip(
    n: f64,
    r: f64,
    raw_weights: &[f64],
    raw_serial: f64,
    mus: &[f64],
    zero_mask: u8,
) -> PortfolioChip {
    let masked: Vec<f64> = raw_weights
        .iter()
        .enumerate()
        .map(|(k, &w)| if zero_mask & (1 << k) != 0 { 0.0 } else { w })
        .collect();
    let total: f64 = raw_serial + masked.iter().sum::<f64>();
    let segments: Vec<Segment> = masked
        .iter()
        .zip(mus)
        .map(|(&w, &mu)| Segment::new(w / total, UCore::new(mu, 1.0).unwrap()).unwrap())
        .collect();
    let workload = SegmentedWorkload::new(raw_serial / total, segments).unwrap();
    PortfolioChip::new(n, r, workload).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The load-bearing property: over random segment counts, weights,
    /// area budgets and device efficiency tables, the analytic allocator
    /// and the grid oracle agree within the documented band — and the
    /// analytic side never loses.
    #[test]
    fn allocate_matches_exhaustive_within_documented_tolerance(
        k in 1..=6usize,
        raw_weights in prop::collection::vec(0.05..1.0f64, 6),
        raw_serial in 0.01..1.0f64,
        mus in prop::collection::vec(0.5..60.0f64, 6),
        r in 1.0..4.0f64,
        extra_area in 4.0..60.0f64,
        zero_mask in 0u8..8,
    ) {
        let n = r + extra_area;
        let chip = build_chip(n, r, &raw_weights[..k], raw_serial, &mus[..k], zero_mask);
        let active = chip
            .workload()
            .segments()
            .iter()
            .filter(|s| s.weight() > 0.0)
            .count();
        let grid = grid_for(active);
        let analytic = chip.allocate().unwrap();
        let oracle = chip.allocate_exhaustive(grid).unwrap();

        // Internal consistency: the reported speedup is the objective of
        // the reported areas, and the areas spend exactly the budget.
        let replay = chip.speedup_for(&analytic.areas).unwrap();
        prop_assert_eq!(replay.get().to_bits(), analytic.speedup.get().to_bits());
        if active > 0 {
            let spent: f64 = analytic.areas.iter().sum();
            prop_assert!((spent - chip.parallel_area()).abs() < 1e-9 * chip.parallel_area());
        }

        // One side of the band: the continuous optimum dominates every
        // grid point.
        let s_star = analytic.speedup.get();
        let s_grid = oracle.speedup.get();
        prop_assert!(
            s_grid <= s_star * (1.0 + 1e-9),
            "oracle beat the analytic optimum: {s_grid} > {s_star}"
        );
        // The other side: the grid resolves the optimum to k/G.
        let band = 1.0 - (active as f64 + 1.0) / f64::from(grid);
        prop_assert!(
            s_grid >= s_star * band,
            "grid fell out of the band: {s_grid} < {s_star} * {band} (k = {active}, G = {grid})"
        );
    }

    /// KKT conditions verified directly on the analytic allocation:
    /// marginal speedup gain per area, `w_k/(µ_k·a_k²)`, is equal across
    /// uncapped segments (stationarity) and no smaller on capped ones
    /// (complementary slackness — a capped accelerator wants more area).
    #[test]
    fn kkt_conditions_hold_with_binding_caps(
        raw_weights in prop::collection::vec(0.05..1.0f64, 4),
        raw_serial in 0.01..1.0f64,
        mus in prop::collection::vec(0.5..60.0f64, 4),
        caps in prop::collection::vec(0.5..8.0f64, 4),
        r in 1.0..4.0f64,
        extra_area in 8.0..60.0f64,
    ) {
        let n = r + extra_area;
        let total: f64 = raw_serial + raw_weights.iter().sum::<f64>();
        let segments: Vec<Segment> = raw_weights
            .iter()
            .zip(&mus)
            .zip(&caps)
            .map(|((&w, &mu), &cap)| {
                Segment::new(w / total, UCore::new(mu, 1.0).unwrap())
                    .unwrap()
                    .with_max_area(cap)
                    .unwrap()
            })
            .collect();
        let workload = SegmentedWorkload::new(raw_serial / total, segments).unwrap();
        let chip = PortfolioChip::new(n, r, workload.clone()).unwrap();
        let alloc = chip.allocate().unwrap();

        // Feasibility: caps respected, budget not exceeded.
        for (seg, &a) in workload.segments().iter().zip(&alloc.areas) {
            prop_assert!(a <= seg.max_area().unwrap() * (1.0 + 1e-12));
        }
        let spent: f64 = alloc.areas.iter().sum();
        prop_assert!(spent <= chip.parallel_area() * (1.0 + 1e-12));

        // Stationarity across the free set; capped marginals dominate.
        let marginal = |seg: &Segment, a: f64| seg.weight() / (seg.ucore().mu() * a * a);
        let free: Vec<f64> = workload
            .segments()
            .iter()
            .zip(&alloc.areas)
            .filter(|(seg, &a)| a < seg.max_area().unwrap() * (1.0 - 1e-9))
            .map(|(seg, &a)| marginal(seg, a))
            .collect();
        if let (Some(min), Some(max)) = (
            free.iter().copied().reduce(f64::min),
            free.iter().copied().reduce(f64::max),
        ) {
            prop_assert!(max <= min * (1.0 + 1e-6), "free marginals diverge: {free:?}");
            for (seg, &a) in workload.segments().iter().zip(&alloc.areas) {
                if a >= seg.max_area().unwrap() * (1.0 - 1e-9) {
                    prop_assert!(
                        marginal(seg, a) >= min * (1.0 - 1e-6),
                        "capped segment wants less area than a free one"
                    );
                }
            }
        }

        // The oracle (same caps) never beats the analytic solution.
        let active = workload.segments().len();
        if let Ok(oracle) = chip.allocate_exhaustive(grid_for(active)) {
            prop_assert!(oracle.speedup.get() <= alloc.speedup.get() * (1.0 + 1e-9));
        }
    }

    /// The one-segment portfolio *is* the paper's heterogeneous model:
    /// same speedup bits, same infeasibility behaviour, across the whole
    /// `(f, n, r, µ)` space.
    #[test]
    fn one_segment_reduces_bit_exactly_to_heterogeneous(
        f in 0.0..=1.0f64,
        r in 1.0..8.0f64,
        extra_area in 0.0..50.0f64,
        mu in 0.1..60.0f64,
        phi in 0.05..6.0f64,
    ) {
        let f = ParallelFraction::new(f).unwrap();
        let n = r + extra_area;
        let ucore = UCore::new(mu, phi).unwrap();
        let law = PollackLaw::default();
        let reference = heterogeneous(f, n, r, &ucore, &law);
        let chip = PortfolioChip::new(n, r, SegmentedWorkload::from_fraction(f, ucore))
            .unwrap();
        match (chip.allocate(), reference) {
            (Ok(alloc), Ok(expected)) => {
                prop_assert_eq!(
                    alloc.speedup.get().to_bits(),
                    expected.get().to_bits(),
                    "portfolio {} != heterogeneous {}",
                    alloc.speedup,
                    expected
                );
                prop_assert_eq!(alloc.areas.len(), 1);
                if f.get() > 0.0 {
                    prop_assert_eq!(alloc.areas[0].to_bits(), (n - r).to_bits());
                }
            }
            (Err(ModelError::Infeasible { .. }), Err(ModelError::Infeasible { .. })) => {}
            (got, expected) => prop_assert!(
                false,
                "divergent results: portfolio {got:?} vs heterogeneous {expected:?}"
            ),
        }
    }
}

/// When the KKT point lies exactly on the grid (equal weights, equal µ,
/// power-of-two shares and budgets), the oracle returns the analytic
/// argmax bit for bit — areas and objective.
#[test]
fn oracle_is_bit_exact_when_grid_contains_the_kkt_point() {
    let cases: [(usize, f64, f64, f64); 2] = [
        // (k, weight per segment, mu, n): shares 1/2 and 1/4, budgets 12
        // and 16 — every intermediate value is exactly representable.
        (2, 0.3, 7.3, 13.0),
        (4, 0.2, 0.8, 17.0),
    ];
    for (k, w, mu, n) in cases {
        let segments: Vec<Segment> = (0..k)
            .map(|_| Segment::new(w, UCore::new(mu, 1.0).unwrap()).unwrap())
            .collect();
        let workload = SegmentedWorkload::new(1.0 - w * k as f64, segments).unwrap();
        let chip = PortfolioChip::new(n, 1.0, workload).unwrap();
        let analytic = chip.allocate().unwrap();
        let oracle = chip.allocate_exhaustive(64).unwrap();
        let bits = |a: &[f64]| a.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&analytic.areas), bits(&oracle.areas), "k = {k}");
        assert_eq!(
            analytic.speedup.get().to_bits(),
            oracle.speedup.get().to_bits(),
            "k = {k}"
        );
    }
}

/// Zero-weight segments are pinned: no area from either allocator, and
/// the remaining segments split the full budget.
#[test]
fn zero_weight_segments_get_nothing_from_either_side() {
    let asic = UCore::new(27.4, 0.79).unwrap();
    let fpga = UCore::new(2.02, 0.29).unwrap();
    let segments = vec![
        Segment::new(0.0, asic).unwrap(),
        Segment::new(0.45, fpga).unwrap(),
        Segment::new(0.45, asic).unwrap(),
    ];
    let workload = SegmentedWorkload::new(0.1, segments).unwrap();
    let chip = PortfolioChip::new(25.0, 1.0, workload).unwrap();
    let analytic = chip.allocate().unwrap();
    let oracle = chip.allocate_exhaustive(96).unwrap();
    assert_eq!(analytic.areas[0], 0.0);
    assert_eq!(oracle.areas[0], 0.0);
    assert!((analytic.areas[1] + analytic.areas[2] - 24.0).abs() < 1e-9);
    assert!((oracle.areas[1] + oracle.areas[2] - 24.0).abs() < 1e-9);
    assert!(oracle.speedup.get() <= analytic.speedup.get() * (1.0 + 1e-9));
}

/// A budget too small for any accelerator (`r = n` with accelerated
/// weight) is the same typed infeasibility from both allocators.
#[test]
fn budget_too_small_is_infeasible_from_both_sides() {
    let asic = UCore::new(27.4, 0.79).unwrap();
    let workload = SegmentedWorkload::new(
        0.1,
        vec![Segment::new(0.9, asic).unwrap()],
    )
    .unwrap();
    let chip = PortfolioChip::new(6.0, 6.0, workload).unwrap();
    assert!(matches!(chip.allocate(), Err(ModelError::Infeasible { .. })));
    assert!(matches!(
        chip.allocate_exhaustive(32),
        Err(ModelError::Infeasible { .. })
    ));
}

/// The `a_k ∝ √(w_k/µ_k)` Lagrange rule documented in `mix.rs` agrees
/// with the portfolio allocator and with the Multi-Amdahl closed form on
/// the shared 2-segment case — three independent expressions of the same
/// optimum (the satellite fix of ISSUE 10: neither side needed
/// correcting, and this regression test keeps them agreeing).
#[test]
fn mixed_chip_optimal_shares_match_portfolio_allocator() {
    let (n, r) = (13.0, 1.0);
    let cases = [
        ((0.5, 4.0), (0.5, 1.0)),
        ((0.7, 27.4), (0.3, 2.02)),
        ((0.25, 482.0), (0.75, 5.68)),
    ];
    for ((w1, mu1), (w2, mu2)) in cases {
        // mix.rs: shares of the parallel area, via with_optimal_shares.
        let partitions = vec![
            UCorePartition {
                ucore: UCore::new(mu1, 1.0).unwrap(),
                area_share: 0.5,
                work_share: w1,
            },
            UCorePartition {
                ucore: UCore::new(mu2, 1.0).unwrap(),
                area_share: 0.5,
                work_share: w2,
            },
        ];
        let mixed = MixedChip::new(n, r, partitions).unwrap().with_optimal_shares();

        // portfolio.rs: absolute areas out of the same budget. The
        // portfolio weights are the parallel weights scaled so the
        // workload sums to 1 with a serial part; the *ratio* w/µ per
        // segment is what the rule depends on, so shares are unchanged.
        let parallel = 0.8;
        let segments = vec![
            Segment::new(w1 * parallel, UCore::new(mu1, 1.0).unwrap()).unwrap(),
            Segment::new(w2 * parallel, UCore::new(mu2, 1.0).unwrap()).unwrap(),
        ];
        let workload = SegmentedWorkload::new(1.0 - parallel, segments).unwrap();
        let chip = PortfolioChip::new(n, r, workload).unwrap();
        let alloc = chip.allocate().unwrap();

        // Multi-Amdahl closed form, written out directly.
        let s1 = (w1 / mu1).sqrt();
        let s2 = (w2 / mu2).sqrt();
        let budget = n - r;
        let closed = [budget * s1 / (s1 + s2), budget * s2 / (s1 + s2)];

        for (k, &expected) in closed.iter().enumerate() {
            let from_mix = mixed.partitions()[k].area_share * budget;
            assert!(
                (from_mix - expected).abs() < 1e-9 * expected,
                "mix.rs share {k}: {from_mix} vs closed form {expected}"
            );
            assert!(
                (alloc.areas[k] - expected).abs() < 1e-9 * expected,
                "portfolio area {k}: {} vs closed form {expected}",
                alloc.areas[k]
            );
        }
    }
}
