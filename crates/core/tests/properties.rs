//! Property-based tests over the model's core invariants.

use proptest::prelude::*;
use ucore_core::{
    amdahl, asymmetric, asymmetric_offload, dynamic, heterogeneous, symmetric,
    BoundSet, Budgets, ChipSpec, EnergyModel, Optimizer, ParallelFraction,
    PollackLaw, UCore,
};

fn fraction() -> impl Strategy<Value = ParallelFraction> {
    (0.0..=1.0f64).prop_map(|f| ParallelFraction::new(f).unwrap())
}

fn positive(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    lo..hi
}

proptest! {
    #[test]
    fn amdahl_never_exceeds_serial_bound(f in fraction(), s in positive(1.0, 1e6)) {
        let speedup = amdahl(f, s).unwrap().get();
        // Bounded above by both the acceleration and the serial Amdahl limit.
        prop_assert!(speedup <= s + 1e-9);
        if f.get() < 1.0 {
            prop_assert!(speedup <= 1.0 / f.serial() + 1e-9);
        }
        prop_assert!(speedup >= 1.0 - 1e-12);
    }

    #[test]
    fn amdahl_monotone_in_s(f in fraction(), s in positive(1.0, 1e5)) {
        let lo = amdahl(f, s).unwrap().get();
        let hi = amdahl(f, s * 2.0).unwrap().get();
        prop_assert!(hi + 1e-12 >= lo);
    }

    #[test]
    fn all_models_monotone_in_n(
        f in fraction(),
        r in positive(1.0, 8.0),
        n in positive(16.0, 1e4),
        mu in positive(0.1, 100.0),
        phi in positive(0.1, 10.0),
    ) {
        let law = PollackLaw::default();
        let u = UCore::new(mu, phi).unwrap();
        let bigger = n * 1.5;
        prop_assert!(
            symmetric(f, bigger, r, &law).unwrap().get() + 1e-9
                >= symmetric(f, n, r, &law).unwrap().get()
        );
        prop_assert!(
            asymmetric(f, bigger, r, &law).unwrap().get() + 1e-9
                >= asymmetric(f, n, r, &law).unwrap().get()
        );
        prop_assert!(
            asymmetric_offload(f, bigger, r, &law).unwrap().get() + 1e-9
                >= asymmetric_offload(f, n, r, &law).unwrap().get()
        );
        prop_assert!(
            dynamic(f, bigger, r, &law).unwrap().get() + 1e-9
                >= dynamic(f, n, r, &law).unwrap().get()
        );
        prop_assert!(
            heterogeneous(f, bigger, r, &u, &law).unwrap().get() + 1e-9
                >= heterogeneous(f, n, r, &u, &law).unwrap().get()
        );
    }

    #[test]
    fn heterogeneous_monotone_in_mu(
        f in fraction(),
        n in positive(4.0, 1000.0),
        mu in positive(0.1, 100.0),
        phi in positive(0.1, 10.0),
    ) {
        let law = PollackLaw::default();
        let slow = UCore::new(mu, phi).unwrap();
        let fast = UCore::new(mu * 2.0, phi).unwrap();
        let s_slow = heterogeneous(f, n, 1.0, &slow, &law).unwrap().get();
        let s_fast = heterogeneous(f, n, 1.0, &fast, &law).unwrap().get();
        prop_assert!(s_fast + 1e-9 >= s_slow);
    }

    #[test]
    fn dynamic_dominates_every_other_model(
        f in fraction(),
        r in positive(1.0, 8.0),
        n in positive(16.0, 1e4),
    ) {
        let law = PollackLaw::default();
        let d = dynamic(f, n, r, &law).unwrap().get();
        prop_assert!(d + 1e-9 >= symmetric(f, n, r, &law).unwrap().get());
        prop_assert!(d + 1e-9 >= asymmetric(f, n, r, &law).unwrap().get());
        prop_assert!(d + 1e-9 >= asymmetric_offload(f, n, r, &law).unwrap().get());
    }

    #[test]
    fn bound_set_n_max_is_min_of_bounds(
        r in positive(1.0, 8.0),
        a in positive(10.0, 1000.0),
        p in positive(10.0, 1000.0),
        b in positive(10.0, 1000.0),
        mu in positive(0.5, 50.0),
        phi in positive(0.1, 5.0),
    ) {
        let budgets = Budgets::new(a, p, b).unwrap();
        let spec = ChipSpec::heterogeneous(UCore::new(mu, phi).unwrap());
        if let Ok(bounds) = BoundSet::compute(&spec, &budgets, r) {
            let n_max = bounds.n_max();
            prop_assert!(n_max <= bounds.n_area() + 1e-9);
            prop_assert!(n_max <= bounds.n_power() + 1e-9);
            prop_assert!(n_max <= bounds.n_bandwidth() + 1e-9);
            // The design the optimizer would build is within budget.
            let eval = spec.evaluate(
                ParallelFraction::new(0.9).unwrap(),
                n_max.max(r),
                r,
                &budgets,
            );
            if n_max > r {
                let eval = eval.unwrap();
                prop_assert!(eval.parallel_power <= p + 1e-6);
                prop_assert!(eval.parallel_bandwidth <= b + 1e-6);
                prop_assert!(eval.n <= a + 1e-6);
            }
        }
    }

    #[test]
    fn optimizer_result_is_feasible_and_best_of_sweep(
        a in positive(8.0, 400.0),
        p in positive(4.0, 100.0),
        b in positive(8.0, 1000.0),
        mu in positive(0.5, 50.0),
        phi in positive(0.1, 5.0),
        f in fraction(),
    ) {
        let budgets = Budgets::new(a, p, b).unwrap();
        let spec = ChipSpec::heterogeneous(UCore::new(mu, phi).unwrap());
        let opt = Optimizer::paper_default();
        if let Ok(best) = opt.optimize(&spec, &budgets, f) {
            for r in 1..=16 {
                let Ok(bounds) = BoundSet::compute(&spec, &budgets, r as f64) else {
                    continue;
                };
                let n = bounds.n_max().max(r as f64);
                let Ok(s) = spec.speedup(f, n, r as f64) else { continue };
                prop_assert!(best.evaluation.speedup.get() + 1e-9 >= s.get());
            }
        }
    }

    #[test]
    fn energy_scales_linearly_with_node(
        f in fraction(),
        scale in positive(0.1, 1.0),
        n in positive(4.0, 100.0),
    ) {
        let spec = ChipSpec::asymmetric_offload();
        let base = EnergyModel::at_reference_node()
            .breakdown(&spec, f, n, 1.0)
            .unwrap()
            .total();
        let scaled = EnergyModel::new(scale)
            .unwrap()
            .breakdown(&spec, f, n, 1.0)
            .unwrap()
            .total();
        prop_assert!((scaled - scale * base).abs() < 1e-9 * base.max(1.0));
    }

    #[test]
    fn speedup_times_time_is_unity(
        f in fraction(),
        n in positive(4.0, 100.0),
        mu in positive(0.5, 50.0),
    ) {
        let spec = ChipSpec::heterogeneous(UCore::new(mu, 1.0).unwrap());
        let s = spec.speedup(f, n, 1.0).unwrap();
        prop_assert!((s.get() * s.time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_chip_never_beats_best_single_fabric_at_full_area(
        mu1 in positive(1.0, 50.0),
        mu2 in positive(1.0, 50.0),
        w in 0.05..0.95f64,
    ) {
        // Splitting area between two fabrics cannot beat giving the whole
        // area to a hypothetical fabric as fast as the faster of the two.
        use ucore_core::{MixedChip, UCorePartition};
        let f = ParallelFraction::new(0.99).unwrap();
        let chip = MixedChip::new(
            20.0,
            1.0,
            vec![
                UCorePartition {
                    ucore: UCore::new(mu1, 1.0).unwrap(),
                    area_share: 0.5,
                    work_share: w,
                },
                UCorePartition {
                    ucore: UCore::new(mu2, 1.0).unwrap(),
                    area_share: 0.5,
                    work_share: 1.0 - w,
                },
            ],
        )
        .unwrap();
        let best_mu = mu1.max(mu2);
        let ideal = heterogeneous(
            f,
            20.0,
            1.0,
            &UCore::new(best_mu, 1.0).unwrap(),
            &PollackLaw::default(),
        )
        .unwrap();
        prop_assert!(chip.speedup(f).unwrap().get() <= ideal.get() + 1e-9);
    }
}
