//! Property tests of the `ModelError` contract: every public
//! constructor and evaluator in `ucore-core` *returns* `Err` for
//! poisoned inputs — NaN, ±∞, zero, negative, out-of-range — and never
//! panics. This is the ingress half of the workspace's fault-containment
//! story: by the time a value reaches the sweep engine it has either
//! passed one of these constructors or been rejected with a typed error.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use ucore_core::{
    amdahl, Budgets, ChipSpec, EnergyModel, ErrorCategory, ModelError,
    Optimizer, ParallelFraction, PollackLaw, PortfolioChip, Segment,
    SegmentedWorkload, SerialPowerLaw, Speedup, UCore,
};

/// One draw from the poisoned-input space: NaN, the infinities, zero,
/// or a negative magnitude.
fn poisoned() -> impl Strategy<Value = f64> {
    (prop::sample::select(vec![0u8, 1, 2, 3, 4]), 1e-6..1e9f64).prop_map(
        |(kind, magnitude)| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -magnitude,
            _ => 0.0,
        },
    )
}

/// Poison for `ParallelFraction`: everything above, plus values past 1.
fn poisoned_fraction() -> impl Strategy<Value = f64> {
    (prop::sample::select(vec![0u8, 1, 2, 3, 4]), 1e-6..1e9f64).prop_map(
        |(kind, magnitude)| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -magnitude,
            _ => 1.0 + magnitude,
        },
    )
}

/// Asserts that `$call` returns `Err` — and in particular does not
/// panic, which would abort the whole sweep the call was part of.
macro_rules! assert_rejects {
    ($call:expr) => {{
        match catch_unwind(AssertUnwindSafe(|| $call)) {
            Ok(Err(_)) => {}
            Ok(Ok(v)) => prop_assert!(
                false,
                "{} accepted a poisoned input: {:?}",
                stringify!($call),
                v
            ),
            Err(_) => {
                prop_assert!(false, "{} panicked on a poisoned input", stringify!($call))
            }
        }
    }};
}

fn specs() -> [ChipSpec; 5] {
    [
        ChipSpec::symmetric(),
        ChipSpec::asymmetric(),
        ChipSpec::asymmetric_offload(),
        ChipSpec::dynamic(),
        ChipSpec::heterogeneous(UCore::new(27.4, 0.79).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `ParallelFraction` admits exactly `[0, 1]`.
    #[test]
    fn parallel_fraction_rejects_everything_outside_unit_interval(
        bad in poisoned_fraction(),
    ) {
        assert_rejects!(ParallelFraction::new(bad));
    }

    /// Every strictly-positive scalar constructor rejects each poisoned
    /// argument position, leaving the other positions valid so the
    /// rejection is attributable to the poison alone.
    #[test]
    fn scalar_constructors_reject_poisoned_arguments(
        bad in poisoned(),
        good in 0.5..50.0f64,
    ) {
        // Single-argument constructors.
        assert_rejects!(EnergyModel::new(bad));
        assert_rejects!(PollackLaw::new(bad));
        assert_rejects!(SerialPowerLaw::new(bad));
        assert_rejects!(Speedup::new(bad));

        // Multi-argument constructors: poison one position at a time.
        assert_rejects!(UCore::new(bad, good));
        assert_rejects!(UCore::new(good, bad));
        assert_rejects!(Budgets::new(bad, good, good));
        assert_rejects!(Budgets::new(good, bad, good));
        assert_rejects!(Budgets::new(good, good, bad));
        assert_rejects!(Optimizer::new(bad, good, good));
        assert_rejects!(Optimizer::new(good, bad, good));
        assert_rejects!(Optimizer::new(good, good, bad));
    }

    /// Every chip organization's speedup evaluator rejects poisoned
    /// `n` and `r`, and the over-allocation `r > n`.
    #[test]
    fn speedup_evaluators_reject_poisoned_n_and_r(
        bad in poisoned(),
        f in 0.0..=0.999f64,
        n in 4.0..500.0f64,
    ) {
        let f = ParallelFraction::new(f).unwrap();
        assert_rejects!(amdahl(f, bad));
        for spec in specs() {
            assert_rejects!(spec.speedup(f, bad, 1.0));
            assert_rejects!(spec.speedup(f, n, bad));
            // r > n is structurally infeasible, not a panic.
            assert_rejects!(spec.speedup(f, n, n * 2.0));
        }
    }

    /// Budget-constrained evaluation rejects poison without panicking,
    /// even with the full bound computation in the loop.
    #[test]
    fn budgeted_evaluate_rejects_poisoned_geometry(
        bad in poisoned(),
        f in 0.0..=0.999f64,
    ) {
        let f = ParallelFraction::new(f).unwrap();
        let budgets = Budgets::new(40.0, 20.0, 400.0).unwrap();
        for spec in specs() {
            assert_rejects!(spec.evaluate(f, bad, 1.0, &budgets));
            assert_rejects!(spec.evaluate(f, 16.0, bad, &budgets));
        }
    }

    /// The n-segment ingress constructors reject poison the same way:
    /// NaN/±∞/negative weights, poisoned caps and geometry, and the
    /// structural degenerates (empty segment lists, weights that do not
    /// partition 1) all `Err` through the taxonomy without panicking.
    #[test]
    fn segment_and_portfolio_constructors_reject_poisoned_inputs(
        bad in poisoned(),
        good in 0.5..50.0f64,
    ) {
        let ucore = UCore::new(27.4, 0.79).unwrap();
        // Segment weight: NaN/±∞/negative are rejected (zero is legal,
        // so only assert the strictly-bad draws).
        if bad.is_nan() || bad.is_infinite() || bad < 0.0 {
            assert_rejects!(Segment::new(bad, ucore));
        }
        let seg = Segment::new(0.5, ucore).unwrap();
        assert_rejects!(seg.with_max_area(bad));

        // Workload: poisoned serial weight, empty segments, bad sums.
        if bad.is_nan() || bad.is_infinite() || bad < 0.0 {
            assert_rejects!(SegmentedWorkload::new(bad, vec![seg]));
        }
        assert_rejects!(SegmentedWorkload::new(0.5, vec![]));
        assert_rejects!(SegmentedWorkload::new(0.9, vec![seg]));

        // Chip geometry: poisoned n/r and the r > n over-allocation.
        let workload = SegmentedWorkload::new(0.5, vec![seg]).unwrap();
        assert_rejects!(PortfolioChip::new(bad, 1.0, workload.clone()));
        assert_rejects!(PortfolioChip::new(good + 1.0, bad, workload.clone()));
        assert_rejects!(PortfolioChip::new(good, good * 2.0, workload.clone()));

        // Evaluation-time degenerates return Err, never panic: a starved
        // positive-weight segment and a wrong-length area vector.
        let chip = PortfolioChip::new(good + 1.0, good, workload).unwrap();
        assert_rejects!(chip.speedup_for(&[0.0]));
        assert_rejects!(chip.speedup_for(&[1.0, 1.0]));
        assert_rejects!(chip.allocate_exhaustive(0));
    }

    /// Poisoned-input rejections are *validation* errors: callers can
    /// rely on `category()` to separate them from budget infeasibility.
    #[test]
    fn poisoned_input_rejections_are_categorized_as_invalid_input(
        bad in poisoned(),
    ) {
        let err = UCore::new(bad, 1.0).unwrap_err();
        prop_assert_eq!(err.category(), ErrorCategory::InvalidInput);
        let err = ParallelFraction::new(f64::NAN).unwrap_err();
        prop_assert_eq!(err.category(), ErrorCategory::InvalidInput);
        // Infeasibility stays a distinct category: it is an expected
        // outcome of tight budgets, not a caller bug.
        let infeasible = ModelError::Infeasible { reason: "tight budgets".into() };
        prop_assert_eq!(infeasible.category(), ErrorCategory::Infeasibility);
    }
}
