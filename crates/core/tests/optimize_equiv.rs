//! Differential tests: the tuned [`Optimizer::optimize`] must agree
//! *bit for bit* with the verbatim reference scan
//! [`Optimizer::optimize_exhaustive`].
//!
//! The tolerance policy for the optimizer is **exact**: the pruned sweep
//! is only allowed to skip work it can prove irrelevant (monotone serial
//! bounds, deferred winner-only energy breakdown) or work whose skip is
//! guarded by a fallback (descent-run early exit, which self-disables on
//! any unimodality violation it observes). Agreement is therefore
//! checked with `assert_eq!` on the serialized result — identical f64
//! bits or bust — never with an epsilon.

use proptest::prelude::*;
use ucore_core::optimize::{pruned_max_scan, PrunedScan, DESCENT_RUN};
use ucore_core::{
    Budgets, ChipSpec, ModelError, Objective, OptimalDesign, Optimizer,
    ParallelFraction, UCore,
};

/// Renders both sides of an optimize call for exact-bits comparison:
/// serde emits the shortest decimal that round-trips the f64, so equal
/// strings mean equal bit patterns field by field.
fn render(result: &Result<OptimalDesign, ModelError>) -> String {
    match result {
        Ok(design) => serde_json::to_string(design).unwrap(),
        Err(e) => format!("error: {e}"),
    }
}

fn assert_equivalent(
    opt: &Optimizer,
    spec: &ChipSpec,
    budgets: &Budgets,
    f: ParallelFraction,
) {
    let tuned = opt.optimize(spec, budgets, f);
    let reference = opt.optimize_exhaustive(spec, budgets, f);
    assert_eq!(
        render(&tuned),
        render(&reference),
        "optimize != optimize_exhaustive for {} under {budgets} at {f}",
        spec.kind()
    );
}

fn all_specs(mu: f64, phi: f64) -> Vec<ChipSpec> {
    vec![
        ChipSpec::symmetric(),
        ChipSpec::asymmetric(),
        ChipSpec::asymmetric_offload(),
        ChipSpec::dynamic(),
        ChipSpec::heterogeneous(UCore::new(mu, phi).unwrap()),
    ]
}

proptest! {
    /// The load-bearing property: over random budgets, U-cores, parallel
    /// fractions, objectives and sweep grids (integer and fractional
    /// steps), the tuned search returns the exact bits of the reference
    /// scan — including which error it returns when nothing is feasible.
    #[test]
    fn tuned_matches_exhaustive_exactly(
        a in 1.0..500.0f64,
        p in 0.5..120.0f64,
        b in 0.5..1200.0f64,
        mu in 0.1..60.0f64,
        phi in 0.05..6.0f64,
        f in 0.0..=1.0f64,
        objective in prop::sample::select(vec![
            Objective::MaxSpeedup,
            Objective::MinEnergy,
            Objective::MinEnergyDelay,
        ]),
        grid in prop::sample::select(vec![
            (1.0, 16.0, 1.0),
            (0.5, 24.0, 0.25),
            (1.0, 64.0, 1.5),
            (2.0, 2.0, 1.0),
        ]),
    ) {
        let budgets = Budgets::new(a, p, b).unwrap();
        let f = ParallelFraction::new(f).unwrap();
        let (r_min, r_max, r_step) = grid;
        let opt = Optimizer::new(r_min, r_max, r_step)
            .unwrap()
            .with_objective(objective);
        for spec in all_specs(mu, phi) {
            assert_equivalent(&opt, &spec, &budgets, f);
        }
    }

    /// The lazy candidate iterator reproduces the allocated list down to
    /// the accumulated-rounding bit patterns, including fractional steps
    /// where `r += step` rounds.
    #[test]
    fn candidate_values_match_candidates_bitwise(
        r_min in 0.1..4.0f64,
        span in 0.0..40.0f64,
        r_step in 0.01..3.0f64,
    ) {
        let opt = Optimizer::new(r_min, r_min + span, r_step).unwrap();
        let lazy: Vec<u64> =
            opt.candidate_values().map(f64::to_bits).collect();
        let eager: Vec<u64> =
            opt.candidates().iter().map(|r| r.to_bits()).collect();
        prop_assert_eq!(lazy, eager);
    }

    /// `pruned_max_scan` over any *unimodal* score sequence returns the
    /// exhaustive first-wins argmax.
    #[test]
    fn pruned_scan_exact_on_unimodal_sequences(
        rise in prop::collection::vec(0.0..10.0f64, 8),
        rise_len in 0..=8usize,
        fall in prop::collection::vec(0.0..10.0f64, 8),
        fall_len in 0..=8usize,
        peak in 50.0..60.0f64,
    ) {
        // Sort truncated halves into an ascent, a peak, and a descent.
        let mut rise = rise[..rise_len].to_vec();
        rise.sort_by(f64::total_cmp);
        let mut fall = fall[..fall_len].to_vec();
        fall.sort_by(|x, y| f64::total_cmp(y, x));
        let scores: Vec<f64> =
            rise.into_iter().chain([peak]).chain(fall).collect();

        let exhaustive = scores
            .iter()
            .enumerate()
            .fold(None::<(usize, f64)>, |best, (i, &s)| match best {
                Some((_, b)) if s <= b => best,
                _ => Some((i, s)),
            })
            .map(|(i, _)| i);
        let pruned = pruned_max_scan(
            (0..scores.len()).map(|i| i as f64),
            |r| {
                let i = r as usize;
                Some((i, scores[i]))
            },
        );
        prop_assert_eq!(pruned, exhaustive);
    }
}

/// A descent run shorter than [`DESCENT_RUN`] followed by a rise marks
/// the sweep as violated and *permanently* disables early exit — the
/// scan degrades to exhaustive and still finds a late peak.
#[test]
fn wiggle_disables_pruning_and_late_peak_is_found() {
    // Two descents (below the run of 3), then a rise: non-unimodal, but
    // detected before any early exit could fire.
    let scores = [5.0, 4.0, 3.0, 8.0, 2.0, 1.0, 0.5, 0.25, 9.0];
    let mut probed = Vec::new();
    let best = pruned_max_scan((0..scores.len()).map(|i| i as f64), |r| {
        let i = r as usize;
        probed.push(i);
        Some((i, scores[i]))
    });
    assert_eq!(best, Some(8), "late peak must win once pruning is off");
    assert_eq!(probed.len(), scores.len(), "violated scan must not stop early");
}

/// A hole (infeasible candidate) after a feasible one voids the
/// interval-shaped-feasible-set assumption and disables early exit.
#[test]
fn hole_after_feasible_disables_pruning() {
    let scores = [5.0, 4.0, 3.0, 2.0, 1.0, 9.0];
    let mut probed = Vec::new();
    let best = pruned_max_scan((0..=scores.len()).map(|i| i as f64), |r| {
        let i = r as usize;
        probed.push(i);
        if i == 1 {
            return None; // the hole, right after feasible index 0
        }
        let score_index = if i == 0 { 0 } else { i - 1 };
        Some((i, scores[score_index]))
    });
    // Indices 2.. carry scores [4,3,2,1,9]; the last one wins because
    // the hole disabled the descent-run exit.
    assert_eq!(best, Some(6));
    assert_eq!(probed.len(), scores.len() + 1);
}

/// Leading holes (the common "small r infeasible" prefix) do NOT disable
/// pruning: the feasible set can still be an interval.
#[test]
fn leading_holes_keep_pruning_enabled() {
    let scores = [9.0, 5.0, 4.0, 3.0, 2.0, 1.0];
    let mut probed = 0usize;
    let best = pruned_max_scan((0..scores.len() + 3).map(|i| i as f64), |r| {
        let i = r as usize;
        probed += 1;
        if i < 3 {
            return None;
        }
        Some((i, scores[i - 3]))
    });
    assert_eq!(best, Some(3));
    // 3 holes + peak + DESCENT_RUN descents, then stop.
    assert_eq!(probed, 3 + 1 + DESCENT_RUN as usize);
}

/// Pins the one *knowing* approximation in the heuristic: a peak that
/// appears only after an uninterrupted [`DESCENT_RUN`] of strict
/// descents is missed by the pruned scan. [`Optimizer::optimize`] relies
/// on the model's speedup curves being unimodal in `r` (they are:
/// `perf_seq` is concave increasing and every bound tightens
/// monotonically), and `tuned_matches_exhaustive_exactly` above
/// continuously re-validates that assumption against the real model. If
/// that proptest ever fails, this pin documents the mechanism.
#[test]
fn descent_run_exit_is_a_heuristic_not_a_proof() {
    let scores = [5.0, 4.0, 3.0, 2.0, 99.0];
    let best = pruned_max_scan((0..scores.len()).map(|i| i as f64), |r| {
        let i = r as usize;
        Some((i, scores[i]))
    });
    // The exhaustive argmax is 4; the pruned scan stops after three
    // strict descents and returns the earlier peak.
    assert_eq!(best, Some(0));
}

/// The state machine itself, probed directly.
#[test]
fn pruned_scan_state_machine() {
    let mut scan = PrunedScan::new(true);
    assert!(!scan.observe(5.0));
    assert!(!scan.observe(4.0)); // descent 1
    assert!(!scan.observe(3.0)); // descent 2
    assert!(scan.observe(2.0)); // descent 3 == DESCENT_RUN -> stop
    assert!(!scan.is_violated());

    // Plateaus break the run without flagging a violation.
    let mut scan = PrunedScan::new(true);
    assert!(!scan.observe(5.0));
    assert!(!scan.observe(4.0));
    assert!(!scan.observe(4.0)); // plateau resets the run
    assert!(!scan.observe(3.0));
    assert!(!scan.observe(2.0));
    assert!(scan.observe(1.0));
    assert!(!scan.is_violated());

    // A disabled scan records evidence but never stops.
    let mut scan = PrunedScan::new(false);
    for s in [5.0, 4.0, 3.0, 2.0, 1.0, 0.5] {
        assert!(!scan.observe(s));
    }
    assert!(!scan.is_violated());

    // A rise after a descent is a violation.
    let mut scan = PrunedScan::new(true);
    assert!(!scan.observe(5.0));
    assert!(!scan.observe(4.0));
    assert!(!scan.observe(6.0));
    assert!(scan.is_violated());
    for s in [5.0, 4.0, 3.0, 2.0, 1.0] {
        assert!(!scan.observe(s), "violated scan must never stop early");
    }
}

/// The paper's own sweep, spot-checked across every chip organization at
/// the exact `(f, budgets)` grid the figures use.
#[test]
fn paper_grid_is_equivalent() {
    let opt = Optimizer::paper_default();
    for f in [0.5, 0.9, 0.975, 0.99, 0.999] {
        let f = ParallelFraction::new(f).unwrap();
        for (a, p, b) in [
            (19.0, 7.4, 1000.0),
            (40.0, 12.0, 6.4),
            (100.0, 25.0, 50.0),
            (16.0, 3.0, 2.0),
        ] {
            let budgets = Budgets::new(a, p, b).unwrap();
            for spec in all_specs(27.4, 0.79) {
                assert_equivalent(&opt, &spec, &budgets, f);
            }
        }
    }
}

/// Energy objectives take the per-candidate-breakdown path; pin their
/// equivalence on a fixed grid too (the proptest also covers them).
#[test]
fn energy_objectives_equivalent_on_fixed_grid() {
    let budgets = Budgets::new(64.0, 16.0, 32.0).unwrap();
    let f = ParallelFraction::new(0.95).unwrap();
    for objective in [Objective::MinEnergy, Objective::MinEnergyDelay] {
        let opt = Optimizer::paper_default().with_objective(objective);
        for spec in all_specs(5.0, 0.5) {
            assert_equivalent(&opt, &spec, &budgets, f);
        }
    }
}
