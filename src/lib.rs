//! # ucore — single-chip heterogeneous computing, modeled
//!
//! A reproduction of Chung, Milder, Hoe and Mai, *"Single-Chip
//! Heterogeneous Computing: Does the Future Include Custom Logic, FPGAs,
//! and GPGPUs?"* (MICRO 2010), packaged as a reusable Rust workspace.
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`model`] — the extended Amdahl's-law model (speedup formulas,
//!   Table 1 bounds, the `r` optimizer, the energy model).
//! * [`devices`] — the measured-device catalog (Table 2) and
//!   technology-node arithmetic.
//! * [`workloads`] — executable MMM / FFT / Black-Scholes kernels with
//!   verified FLOP counts and arithmetic-intensity formulas.
//! * [`simdev`] — the simulated measurement lab (roofline execution,
//!   power breakdowns, bandwidth counters) standing in for the authors'
//!   hardware.
//! * [`itrs`] — the ITRS 2009 scaling roadmap (Table 6, Figure 5).
//! * [`calibrate`] — derivation of U-core `(µ, φ)` parameters (Table 5).
//! * [`project`] — the scaling projections (Figures 6–10 and the §6.2
//!   alternative scenarios), with a durable sweep orchestrator:
//!   checkpoint/resume run journal, per-point watchdog deadlines,
//!   deterministic retry-with-backoff, and crash-safe atomic exports.
//! * [`report`] — ASCII tables/charts and CSV export used by the
//!   reproduction binaries.
//! * [`obs`] — the deterministic observability layer: a typed metrics
//!   registry, structured span tracing into a bounded ring buffer, and
//!   a span-profile reducer. Guaranteed to never perturb figure output
//!   bytes (`repro --metrics/--trace/--profile`).
//! * [`error`] — the workspace-wide error taxonomy: [`UcoreError`]
//!   unifies every subsystem's typed error behind one `?`-composable
//!   type.
//!
//! ## Quickstart
//!
//! ```
//! use ucore::model::{Budgets, ChipSpec, Optimizer, ParallelFraction, UCore};
//!
//! # fn main() -> Result<(), ucore::model::ModelError> {
//! // Table 5: the ASIC running MMM is a (mu = 27.4, phi = 0.79) u-core.
//! let asic = UCore::new(27.4, 0.79)?;
//! let chip = ChipSpec::heterogeneous(asic);
//!
//! // 40 nm budgets: 19 BCE of area, 7.4 BCE of power, ample bandwidth.
//! let budgets = Budgets::new(19.0, 7.4, 10_000.0)?;
//! let f = ParallelFraction::new(0.99)?;
//!
//! let best = Optimizer::paper_default().optimize(&chip, &budgets, f)?;
//! println!("speedup {} with r = {}", best.evaluation.speedup, best.evaluation.r);
//! # Ok(())
//! # }
//! ```

pub mod error;

pub use error::UcoreError;

pub use ucore_calibrate as calibrate;
pub use ucore_core as model;
pub use ucore_devices as devices;
pub use ucore_itrs as itrs;
pub use ucore_obs as obs;
pub use ucore_project as project;
pub use ucore_report as report;
pub use ucore_simdev as simdev;
pub use ucore_workloads as workloads;
