//! The workspace-wide error taxonomy.
//!
//! Every subsystem reports failures through its own typed error —
//! [`ModelError`](ucore_core::ModelError) at the model layer,
//! [`DeviceError`](ucore_devices::DeviceError) /
//! [`RoadmapError`](ucore_itrs::RoadmapError) at the data-table ingress
//! boundaries, and so on. [`UcoreError`] is the union of all of them:
//! the type application code holds when it crosses subsystems, with
//! `From` conversions so `?` composes across layers.
//!
//! ```
//! use ucore::error::UcoreError;
//!
//! fn cross_layer() -> Result<f64, UcoreError> {
//!     let f = ucore::model::ParallelFraction::new(0.99)?; // ModelError
//!     let node = ucore::itrs::Roadmap::itrs_2009()
//!         .node(ucore::devices::TechNode::N22)?; // RoadmapError
//!     Ok(f.get() * node.max_area_bce)
//! }
//! assert!(cross_layer().is_ok());
//! ```

use std::error::Error;
use std::fmt;
use ucore_calibrate::CalibrationError;
use ucore_core::{ErrorCategory, ModelError};
use ucore_devices::DeviceError;
use ucore_itrs::RoadmapError;
use ucore_project::faultinject::FaultSpecError;
use ucore_project::ProjectionError;
use ucore_simdev::SimLabError;
use ucore_workloads::WorkloadError;

/// Any error the workspace can produce, by originating subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum UcoreError {
    /// The analytical model rejected an input or found no feasible
    /// design ([`ucore_core`]).
    Model(ModelError),
    /// The device catalog rejected or could not answer a query
    /// ([`ucore_devices`]).
    Device(DeviceError),
    /// The ITRS roadmap rejected or could not answer a query
    /// ([`ucore_itrs`]).
    Roadmap(RoadmapError),
    /// A workload kernel rejected its inputs ([`ucore_workloads`]).
    Workload(WorkloadError),
    /// The simulated measurement lab failed ([`ucore_simdev`]).
    SimLab(SimLabError),
    /// Table 5 calibration failed ([`ucore_calibrate`]).
    Calibration(CalibrationError),
    /// The projection pipeline failed ([`ucore_project`]).
    Projection(ProjectionError),
    /// A fault-injection specification was malformed
    /// ([`ucore_project::faultinject`]).
    FaultSpec(FaultSpecError),
}

impl fmt::Display for UcoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UcoreError::Model(e) => write!(f, "model: {e}"),
            UcoreError::Device(e) => write!(f, "device: {e}"),
            UcoreError::Roadmap(e) => write!(f, "roadmap: {e}"),
            UcoreError::Workload(e) => write!(f, "workload: {e}"),
            UcoreError::SimLab(e) => write!(f, "simlab: {e}"),
            UcoreError::Calibration(e) => write!(f, "calibration: {e}"),
            UcoreError::Projection(e) => write!(f, "projection: {e}"),
            UcoreError::FaultSpec(e) => write!(f, "fault spec: {e}"),
        }
    }
}

impl UcoreError {
    /// A coarse classification mirroring
    /// [`ModelError::category`](ucore_core::ModelError::category):
    /// whether retrying with the same input could ever succeed.
    pub fn category(&self) -> ErrorCategory {
        match self {
            UcoreError::Model(e) => e.category(),
            // Infeasibility is a model-layer concept; every other
            // subsystem error is an input or data problem.
            UcoreError::Projection(ProjectionError::Infeasible { .. }) => {
                ErrorCategory::Infeasibility
            }
            _ => ErrorCategory::InvalidInput,
        }
    }
}

impl Error for UcoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UcoreError::Model(e) => Some(e),
            UcoreError::Device(e) => Some(e),
            UcoreError::Roadmap(e) => Some(e),
            UcoreError::Workload(e) => Some(e),
            UcoreError::SimLab(e) => Some(e),
            UcoreError::Calibration(e) => Some(e),
            UcoreError::Projection(e) => Some(e),
            UcoreError::FaultSpec(e) => Some(e),
        }
    }
}

macro_rules! impl_from {
    ($($variant:ident($inner:ty)),* $(,)?) => {
        $(impl From<$inner> for UcoreError {
            fn from(e: $inner) -> Self {
                UcoreError::$variant(e)
            }
        })*
    };
}

impl_from!(
    Model(ModelError),
    Device(DeviceError),
    Roadmap(RoadmapError),
    Workload(WorkloadError),
    SimLab(SimLabError),
    Calibration(CalibrationError),
    Projection(ProjectionError),
    FaultSpec(FaultSpecError),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_mark_converts_every_subsystem_error() {
        fn model() -> Result<(), UcoreError> {
            ucore_core::ParallelFraction::new(2.0)?;
            Ok(())
        }
        fn roadmap() -> Result<(), UcoreError> {
            ucore_itrs::Roadmap::from_nodes(Vec::new())?;
            Ok(())
        }
        fn workload() -> Result<(), UcoreError> {
            ucore_workloads::mmm::Matrix::try_zeros(0, 1)?;
            Ok(())
        }
        assert!(matches!(model().unwrap_err(), UcoreError::Model(_)));
        assert!(matches!(roadmap().unwrap_err(), UcoreError::Roadmap(_)));
        assert!(matches!(workload().unwrap_err(), UcoreError::Workload(_)));
    }

    #[test]
    fn display_prefixes_the_subsystem() {
        let e = UcoreError::from(ModelError::InvalidFraction { value: 2.0 });
        assert!(e.to_string().starts_with("model: "), "{e}");
        let e = UcoreError::from(RoadmapError::Empty);
        assert!(e.to_string().starts_with("roadmap: "), "{e}");
    }

    #[test]
    fn categories_distinguish_infeasibility_from_bad_input() {
        use ucore_core::ErrorCategory;
        let bad = UcoreError::from(ModelError::InvalidFraction { value: 2.0 });
        assert_eq!(bad.category(), ErrorCategory::InvalidInput);
        let infeasible =
            UcoreError::from(ModelError::Infeasible { reason: "serial power".into() });
        assert_eq!(infeasible.category(), ErrorCategory::Infeasibility);
    }

    #[test]
    fn source_chains_to_the_inner_error() {
        let e = UcoreError::from(ModelError::NotFinite { what: "mu" });
        let source = e.source().expect("has a source");
        assert!(source.to_string().contains("mu must be finite"));
    }
}
