//! The paper's headline claims (Sections 1, 6 and 7), asserted against
//! the reproduced projections.
//!
//! Each test quotes the claim it checks. Thresholds are deliberately
//! loose — the reproduction targets the *shape* of the results (who
//! wins, by roughly what factor, where crossovers fall), not the exact
//! values.

use ucore::calibrate::WorkloadColumn;
use ucore::model::{Limiter, ParallelFraction};
use ucore::project::{DesignId, ProjectionEngine, Scenario};
use ucore_devices::{DeviceId, TechNode};

fn engine(scenario: Scenario) -> ProjectionEngine {
    ProjectionEngine::new(scenario).expect("calibration data is shipped")
}

fn f(v: f64) -> ParallelFraction {
    ParallelFraction::new(v).expect("valid fraction")
}

fn speedup(
    e: &ProjectionEngine,
    design: DesignId,
    column: WorkloadColumn,
    node: TechNode,
    fv: f64,
) -> f64 {
    e.speedup_at(design, column, node, f(fv))
        .unwrap_or_else(|| panic!("{design} {column} {node} f={fv} infeasible"))
}

const ASIC: DesignId = DesignId::Het(DeviceId::Asic);
const FPGA: DesignId = DesignId::Het(DeviceId::V6Lx760);
const GTX285: DesignId = DesignId::Het(DeviceId::Gtx285);
const GTX480: DesignId = DesignId::Het(DeviceId::Gtx480);

/// "effectively exploiting the performance gain of U-cores requires
/// sufficient parallelism in excess of 90%."
#[test]
fn ucores_need_parallelism_beyond_90_percent() {
    let e = engine(Scenario::baseline());
    for column in [WorkloadColumn::Fft1024, WorkloadColumn::Bs] {
        // At f = 0.5 the best HET gains little over the CMP...
        let cmp = speedup(&e, DesignId::AsymCmp, column, TechNode::N11, 0.5);
        let het = speedup(&e, ASIC, column, TechNode::N11, 0.5);
        assert!(het / cmp < 1.7, "{column}: f=0.5 gain {}", het / cmp);
        // ... and at f = 0.99 the gain is pronounced.
        let cmp99 = speedup(&e, DesignId::AsymCmp, column, TechNode::N11, 0.99);
        let het99 = speedup(&e, ASIC, column, TechNode::N11, 0.99);
        assert!(het99 / cmp99 > 1.5, "{column}: f=0.99 gain {}", het99 / cmp99);
    }
}

/// "At all values of f, the ASIC achieves the highest level of
/// performance but cannot scale further due to bandwidth limitations."
#[test]
fn asic_fft_hits_the_bandwidth_wall_everywhere() {
    let e = engine(Scenario::baseline());
    for fv in [0.5, 0.9, 0.99, 0.999] {
        let points = e
            .project(ASIC, WorkloadColumn::Fft1024, f(fv))
            .expect("published cell");
        for p in points {
            assert_eq!(p.limiter, Limiter::Bandwidth, "f = {fv}, {:?}", p.node);
        }
    }
}

/// "the FPGA design reaches ASIC-like bandwidth-limited performance as
/// early as 32nm — and similarly for the GPU designs, around 22nm and
/// 16nm."
#[test]
fn flexible_ucores_catch_the_asic_at_the_stated_nodes() {
    let e = engine(Scenario::baseline());
    let fv = 0.999;
    let col = WorkloadColumn::Fft1024;
    let asic_32 = speedup(&e, ASIC, col, TechNode::N32, fv);
    let fpga_32 = speedup(&e, FPGA, col, TechNode::N32, fv);
    assert!(fpga_32 / asic_32 > 0.7, "FPGA at 32nm: {}", fpga_32 / asic_32);

    let asic_22 = speedup(&e, ASIC, col, TechNode::N22, fv);
    let gtx285_22 = speedup(&e, GTX285, col, TechNode::N22, fv);
    assert!(gtx285_22 / asic_22 > 0.7, "GTX285 at 22nm: {}", gtx285_22 / asic_22);

    let asic_16 = speedup(&e, ASIC, col, TechNode::N16, fv);
    let gtx480_16 = speedup(&e, GTX480, col, TechNode::N16, fv);
    assert!(gtx480_16 / asic_16 > 0.7, "GTX480 at 16nm: {}", gtx480_16 / asic_16);
}

/// "Even in the case of MMM ... the ASIC did not show significant
/// benefits over the less efficient solutions unless f > 0.99." (The
/// flexible approaches stay "within a factor of two to five".)
#[test]
fn mmm_asic_needs_extreme_parallelism_to_pull_away() {
    let e = engine(Scenario::baseline());
    let col = WorkloadColumn::Mmm;
    let best_flexible = |fv: f64| {
        [GTX285, GTX480, FPGA, DesignId::Het(DeviceId::R5870)]
            .iter()
            .map(|&d| speedup(&e, d, col, TechNode::N11, fv))
            .fold(f64::MIN, f64::max)
    };
    let at_99 = speedup(&e, ASIC, col, TechNode::N11, 0.99) / best_flexible(0.99);
    assert!(at_99 < 5.0, "f = 0.99: ASIC/flexible = {at_99}");
    let at_999 = speedup(&e, ASIC, col, TechNode::N11, 0.999) / best_flexible(0.999);
    assert!(at_999 > 2.0, "f = 0.999: ASIC/flexible = {at_999}");
    assert!(at_999 > at_99, "the gap must widen with f");
}

/// Scenario 2 (1 TB/s): "most designs transition to becoming
/// power-limited, with the ASIC still being bandwidth-limited from the
/// start" and "the ASIC can only provide a significant speedup (about
/// 2X) over the other HET approaches when f >= 0.999."
#[test]
fn terabyte_bandwidth_shifts_designs_to_power_limits() {
    let e = engine(Scenario::s2_high_bandwidth());
    let col = WorkloadColumn::Fft1024;
    // GPUs/FPGA go power-limited at the late nodes.
    for design in [GTX285, GTX480, FPGA] {
        let points = e.project(design, col, f(0.99)).expect("published");
        let at11 = points.iter().find(|p| p.node == TechNode::N11).expect("feasible");
        assert_eq!(at11.limiter, Limiter::Power, "{design}");
    }
    // ASIC still bandwidth-limited from the start.
    let asic_points = e.project(ASIC, col, f(0.99)).expect("published");
    assert_eq!(asic_points[0].limiter, Limiter::Bandwidth);
    // The ASIC's edge over other HETs is modest below f = 0.999.
    let edge_99 = speedup(&e, ASIC, col, TechNode::N11, 0.99)
        / speedup(&e, GTX480, col, TechNode::N11, 0.99);
    let edge_999 = speedup(&e, ASIC, col, TechNode::N11, 0.999)
        / speedup(&e, GTX480, col, TechNode::N11, 0.999);
    assert!(edge_999 > edge_99, "edge should grow with f");
    assert!(edge_999 > 1.5, "f = 0.999 edge was {edge_999}");
}

/// Scenario 3 (216 mm²): "in the later nodes (<= 22nm), most designs
/// achieve similar performance to what was attained under the original
/// area budget ... limited by power to begin with."
#[test]
fn halving_area_barely_matters_once_power_limited() {
    let base = engine(Scenario::baseline());
    let half = engine(Scenario::s3_half_area());
    let col = WorkloadColumn::Fft1024;
    for design in [DesignId::AsymCmp, GTX480] {
        let b = speedup(&base, design, col, TechNode::N11, 0.99);
        let h = speedup(&half, design, col, TechNode::N11, 0.99);
        assert!(h / b > 0.85, "{design} at 11nm kept only {}", h / b);
    }
    // But the low-phi FPGA HET *is* area-limited at 40 nm and loses
    // noticeably (the CMPs are already power-limited even at 40 nm).
    let b40 = speedup(&base, FPGA, col, TechNode::N40, 0.99);
    let h40 = speedup(&half, FPGA, col, TechNode::N40, 0.99);
    assert!(h40 < b40 * 0.85, "40nm FPGA HET kept {}", h40 / b40);
}

/// Scenario 4 (200 W): "the relative benefit of having energy-efficient
/// HETs diminishes since the less efficient CMPs are able to close the
/// gap."
#[test]
fn doubling_power_lets_cmps_close_the_gap() {
    let base = engine(Scenario::baseline());
    let high = engine(Scenario::s4_high_power());
    let col = WorkloadColumn::Fft1024;
    let gap = |e: &ProjectionEngine| {
        speedup(e, GTX480, col, TechNode::N11, 0.99)
            / speedup(e, DesignId::AsymCmp, col, TechNode::N11, 0.99)
    };
    assert!(gap(&high) < gap(&base), "{} !< {}", gap(&high), gap(&base));
}

/// Scenario 5 (10 W): "only the ASIC-based HETs can ever approach
/// bandwidth-limited performance."
#[test]
fn at_ten_watts_only_the_asic_reaches_the_bandwidth_wall() {
    let e = engine(Scenario::s5_low_power());
    let col = WorkloadColumn::Fft1024;
    let hits_wall = |design: DesignId| {
        e.project(design, col, f(0.99))
            .map(|pts| pts.iter().any(|p| p.limiter == Limiter::Bandwidth))
            .unwrap_or(false)
    };
    assert!(hits_wall(ASIC), "the ASIC should still be bandwidth-limited");
    for design in [GTX285, GTX480, FPGA, DesignId::SymCmp, DesignId::AsymCmp] {
        assert!(!hits_wall(design), "{design} should be power-limited at 10 W");
    }
}

/// Scenario 6 (α = 2.25): "At low to moderate parallelism (f <= 0.9),
/// the speedups decrease significantly" because the serial power bound
/// caps the sequential core.
#[test]
fn hungrier_serial_core_collapses_low_f_speedups() {
    let base = engine(Scenario::baseline());
    let harsh = engine(Scenario::s6_serial_power());
    let col = WorkloadColumn::Fft1024;
    let b = speedup(&base, ASIC, col, TechNode::N40, 0.5);
    let h = speedup(&harsh, ASIC, col, TechNode::N40, 0.5);
    assert!(h < b * 0.9, "f = 0.5: {h} vs {b}");
    // At f = 0.999 the serial core barely matters.
    let b999 = speedup(&base, ASIC, col, TechNode::N40, 0.999);
    let h999 = speedup(&harsh, ASIC, col, TechNode::N40, 0.999);
    assert!(h999 > b999 * 0.9, "f = 0.999: {h999} vs {b999}");
}

/// "U-cores, especially those based on custom logic, are more broadly
/// useful if reducing energy or power is the primary goal" — at
/// moderate parallelism the ASIC cuts energy well below every other
/// approach even though its *speedup* edge is small there.
#[test]
fn custom_logic_shines_on_energy_even_at_moderate_parallelism() {
    let e = engine(Scenario::baseline());
    let col = WorkloadColumn::Mmm;
    let energy = |design: DesignId| {
        e.project(design, col, f(0.9))
            .expect("published")
            .iter()
            .find(|p| p.node == TechNode::N40)
            .expect("feasible")
            .energy
    };
    let asic = energy(ASIC);
    // At f = 0.9 the sequential core dominates both designs' energy
    // (Figure 10's middle panel), so the edge over another HET is real
    // but bounded...
    assert!(asic < 0.75 * energy(GTX285), "vs GTX285");
    assert!(asic < 0.5 * energy(DesignId::AsymCmp), "vs AsymCMP");
    assert!(asic < 0.5 * energy(DesignId::SymCmp), "vs SymCMP");

    // Meanwhile the f = 0.9 speedup edge over the GPU HET is modest.
    let s_asic = speedup(&e, ASIC, col, TechNode::N40, 0.9);
    let s_gpu = speedup(&e, DesignId::Het(DeviceId::R5870), col, TechNode::N40, 0.9);
    assert!(s_asic / s_gpu < 3.0);
}

/// Figure 6 and Table 6 shape: speedups grow monotonically (within
/// noise) across nodes for every plotted design.
#[test]
fn projections_scale_monotonically_across_nodes() {
    let e = engine(Scenario::baseline());
    for column in [WorkloadColumn::Fft1024, WorkloadColumn::Mmm, WorkloadColumn::Bs] {
        for design in DesignId::for_column(e.table5(), column) {
            let points = e.project(design, column, f(0.99)).expect("published");
            assert_eq!(points.len(), 5, "{design} {column}");
            for pair in points.windows(2) {
                assert!(
                    pair[1].speedup >= pair[0].speedup * 0.99,
                    "{design} {column}: {:?} -> {:?}",
                    pair[0].node,
                    pair[1].node
                );
            }
        }
    }
}
