//! Failure-injection tests: corrupt inputs at every layer and verify
//! errors surface as typed errors (never panics, never silent NaNs in
//! results).

use ucore::model::{
    Budgets, ChipSpec, ModelError, Optimizer, ParallelFraction, Speedup, UCore,
};
use ucore::simdev::{SimLab, SimLabError};
use ucore::workloads::{Workload, WorkloadError};
use ucore_devices::DeviceId;

#[test]
fn model_layer_rejects_poisoned_scalars() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0] {
        assert!(UCore::new(bad, 1.0).is_err(), "mu = {bad}");
        assert!(UCore::new(1.0, bad).is_err(), "phi = {bad}");
        assert!(Budgets::new(bad, 1.0, 1.0).is_err(), "area = {bad}");
        assert!(Speedup::new(bad).is_err(), "speedup = {bad}");
    }
    for bad in [f64::NAN, -0.1, 1.1] {
        assert!(ParallelFraction::new(bad).is_err(), "f = {bad}");
    }
}

#[test]
fn optimizer_failure_is_typed_not_panicking() {
    // A power budget below one BCE can never host even the smallest
    // sequential core.
    let spec = ChipSpec::symmetric();
    let budgets = Budgets::new(10.0, 0.25, 10.0).unwrap();
    let err = Optimizer::paper_default()
        .optimize(&spec, &budgets, ParallelFraction::new(0.9).unwrap())
        .unwrap_err();
    assert!(matches!(err, ModelError::Infeasible { .. }));
    let msg = err.to_string();
    assert!(msg.contains("no feasible design"), "{msg}");
}

#[test]
fn workload_layer_rejects_malformed_sizes() {
    assert!(matches!(
        Workload::fft(1000),
        Err(WorkloadError::NotPowerOfTwo { size: 1000 })
    ));
    assert!(matches!(
        Workload::mmm(0),
        Err(WorkloadError::ZeroSize { .. })
    ));
}

#[test]
fn kernel_buffer_mismatches_are_errors() {
    use ucore::workloads::fft::{Complex, Direction, Fft};
    let fft = Fft::new(16).unwrap();
    let mut wrong = vec![Complex::ZERO; 8];
    assert!(matches!(
        fft.transform(&mut wrong, Direction::Forward),
        Err(WorkloadError::LengthMismatch { expected: 16, actual: 8 })
    ));

    use ucore::workloads::mmm::{naive, Matrix};
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(4, 2);
    assert!(naive::multiply(&a, &b).is_err());
}

#[test]
fn lab_gaps_do_not_cascade_into_the_pipeline() {
    // A missing measurement is an error at the lab...
    let lab = SimLab::paper();
    let err = lab
        .measure(DeviceId::R5870, Workload::black_scholes())
        .unwrap_err();
    assert!(matches!(err, SimLabError::NoData { .. }));

    // ... but calibration skips the gap instead of failing, exactly as
    // the published table has dashes.
    let table = ucore::calibrate::Table5::derive().unwrap();
    assert!(table
        .ucore(DeviceId::R5870, ucore::calibrate::WorkloadColumn::Bs)
        .is_none());

    // ... and the projection layer reports the unusable design.
    let engine =
        ucore::project::ProjectionEngine::new(ucore::project::Scenario::baseline())
            .unwrap();
    let err = engine
        .project(
            ucore::project::DesignId::Het(DeviceId::R5870),
            ucore::calibrate::WorkloadColumn::Bs,
            ParallelFraction::new(0.9).unwrap(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("calibration"));
}

#[test]
fn infeasible_nodes_are_omitted_not_fabricated() {
    // Under a 1 W budget nothing can run; the projection must come back
    // empty rather than invent points.
    use ucore::project::{DesignId, ProjectionEngine, Scenario};
    use ucore_itrs::Roadmap;
    let scenario =
        Scenario::baseline().with_roadmap(Roadmap::itrs_2009().with_power_budget_w(1.0));
    let engine = ProjectionEngine::new(scenario).unwrap();
    let points = engine
        .project(
            DesignId::SymCmp,
            ucore::calibrate::WorkloadColumn::Fft1024,
            ParallelFraction::new(0.9).unwrap(),
        )
        .unwrap();
    assert!(
        points.len() < 5,
        "a 1 W symmetric CMP should be infeasible at early nodes"
    );
    for p in points {
        assert!(p.speedup.is_finite());
    }
}

#[test]
fn monte_carlo_with_impossible_inputs_fails_loudly() {
    use ucore::project::{speedup_interval, InputUncertainty};
    let ucore = UCore::new(2.0, 1.0).unwrap();
    let budgets = Budgets::new(19.0, 8.7, 45.0).unwrap();
    let bad = InputUncertainty { mu_rel: f64::NAN, phi_rel: 0.0, bandwidth_rel: 0.0, power_rel: 0.0 };
    assert!(speedup_interval(
        ucore,
        &budgets,
        ParallelFraction::new(0.9).unwrap(),
        &bad,
        10,
        1
    )
    .is_err());
}

#[test]
fn sweep_contains_injected_panics_behind_the_facade() {
    // The whole fault-containment stack is reachable through the `ucore`
    // facade: inject a panic at one design point, and the sweep still
    // returns a full result set with exactly that point degraded.
    use std::sync::Arc;
    use ucore::model::EvalCache;
    use ucore::project::faultinject::{activate, Fault, FaultPlan};
    use ucore::project::sweep::{figure_points, sweep, SweepConfig};
    use ucore::project::{DesignId, ProjectionEngine, Scenario};

    let engine =
        ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
            .unwrap();
    let column = ucore::calibrate::WorkloadColumn::Fft1024;
    let designs = DesignId::for_column(engine.table5(), column);
    let points = figure_points(&engine, &designs, column, &[0.9]).unwrap();
    let n = points.len();

    let guard = activate(FaultPlan::new().with(2, Fault::Panic));
    let (results, stats) =
        sweep(&engine, points, &SweepConfig { threads: Some(3), use_cache: false });
    drop(guard);

    assert_eq!(results.len(), n, "a contained fault never truncates the sweep");
    assert_eq!(stats.points_failed, 1);
    assert_eq!(stats.points_ok + stats.points_infeasible, n - 1);
    for r in &results {
        if r.index == 2 {
            let msg = r.outcome.failure_message().unwrap();
            assert!(msg.contains("injected panic at point 2"), "{msg}");
        } else {
            assert!(r.outcome.failure_message().is_none(), "index {}", r.index);
        }
    }
}

#[test]
fn ucore_error_composes_every_subsystem_behind_one_question_mark() {
    use ucore::project::faultinject::FaultPlan;
    use ucore::UcoreError;
    use ucore_devices::Catalog;
    use ucore_itrs::Roadmap;

    // Each subsystem's typed error converts into the workspace taxonomy
    // via `?`, keeping its subsystem prefix in the display.
    let cases: Vec<(UcoreError, &str)> = vec![
        (UCore::new(f64::NAN, 1.0).unwrap_err().into(), "model:"),
        (
            Catalog::from_specs(Vec::new())
                .unwrap()
                .try_device(DeviceId::R5870)
                .map(|_| ())
                .unwrap_err()
                .into(),
            "device:",
        ),
        (Roadmap::from_nodes(vec![]).unwrap_err().into(), "roadmap:"),
        (Workload::fft(7).unwrap_err().into(), "workload:"),
        (
            SimLab::paper()
                .measure(DeviceId::R5870, Workload::black_scholes())
                .unwrap_err()
                .into(),
            "simlab:",
        ),
        (FaultPlan::parse("bogus@@").unwrap_err().into(), "fault spec:"),
    ];
    for (err, prefix) in cases {
        let msg = err.to_string();
        assert!(msg.starts_with(prefix), "{msg:?} should start with {prefix:?}");
        assert!(std::error::Error::source(&err).is_some(), "{msg} chains its source");
    }
}

#[test]
fn display_of_every_error_is_informative() {
    let errors: Vec<Box<dyn std::error::Error>> = vec![
        Box::new(UCore::new(-1.0, 1.0).unwrap_err()),
        Box::new(Workload::fft(7).unwrap_err()),
        Box::new(
            SimLab::paper()
                .measure(DeviceId::R5870, Workload::black_scholes())
                .unwrap_err(),
        ),
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(!msg.contains("Error {"), "debug leak: {msg}");
    }
}
