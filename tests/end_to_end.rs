//! End-to-end pipeline tests across every crate, through the `ucore`
//! facade: real kernels → simulated lab → calibration → projection →
//! export.

use std::time::Duration;
use ucore::calibrate::{BceCalibration, Table5, WorkloadColumn};
use ucore::model::ParallelFraction;
use ucore::project::{figures, DesignId, ProjectionEngine, Scenario};
use ucore::simdev::SimLab;
use ucore::workloads::{measure_throughput, Workload};
use ucore_devices::{DeviceId, TechNode};

#[test]
fn real_kernels_run_and_report_throughput() {
    // The executable substrate actually executes: every kernel family
    // produces positive throughput on this machine.
    for workload in [
        Workload::mmm(48).expect("valid"),
        Workload::fft(512).expect("valid"),
        Workload::black_scholes(),
    ] {
        let sample = measure_throughput(workload, Duration::from_millis(25))
            .expect("kernels run");
        assert!(sample.value > 0.0, "{workload}");
        assert!(sample.iterations > 0, "{workload}");
    }
}

#[test]
fn lab_to_calibration_to_projection_pipeline() {
    // Lab measurements...
    let lab = SimLab::paper();
    let i7 = lab
        .measure(DeviceId::CoreI7_960, Workload::fft(1024).expect("valid"))
        .expect("published cell");
    assert!(i7.perf > 0.0);

    // ... feed calibration ...
    let table5 = Table5::derive().expect("calibration succeeds");
    assert_eq!(table5.rows().len(), 20);

    // ... which feeds the BCE anchoring ...
    let bce = BceCalibration::derive(Workload::fft(1024).expect("valid"))
        .expect("i7 baseline exists");
    assert!(bce.watts() > 5.0 && bce.watts() < 20.0);

    // ... which drives a full projection.
    let engine = ProjectionEngine::new(Scenario::baseline()).expect("engine builds");
    let f = ParallelFraction::new(0.99).expect("valid");
    let points = engine
        .project(DesignId::Het(DeviceId::Asic), WorkloadColumn::Fft1024, f)
        .expect("published cell");
    assert_eq!(points.len(), 5);
    assert!(points.iter().all(|p| p.speedup > 1.0));
}

#[test]
fn figures_serialize_to_json_and_back() {
    let fig = figures::figure8().expect("projection succeeds");
    let json = serde_json::to_string(&fig).expect("serializable");
    let back: ucore::project::FigureData = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, fig);
    assert!(json.contains("ASIC"));
}

#[test]
fn every_figure_generates() {
    assert_eq!(figures::figure6().expect("fig6").panels.len(), 4);
    assert_eq!(figures::figure7().expect("fig7").panels.len(), 4);
    assert_eq!(figures::figure8().expect("fig8").panels.len(), 2);
    assert_eq!(figures::figure9().expect("fig9").panels.len(), 4);
    assert_eq!(figures::figure10().expect("fig10").panels.len(), 3);
}

#[test]
fn facade_reexports_line_up() {
    // The same types are reachable through the facade and the leaf
    // crates.
    let via_facade = ucore::model::UCore::new(2.0, 0.5).expect("valid");
    let direct = ucore_core::UCore::new(2.0, 0.5).expect("valid");
    assert_eq!(via_facade, direct);
    assert_eq!(
        ucore::devices::TechNode::N40.feature_nm(),
        ucore_devices::TechNode::N40.feature_nm()
    );
}

#[test]
fn dark_silicon_story_holds_end_to_end() {
    // The whole point of the paper in one test: by 11 nm the area budget
    // has grown ~16x but the usable power only ~4x, so a conventional
    // CMP strands silicon while an efficient U-core keeps using it.
    let engine = ProjectionEngine::new(Scenario::baseline()).expect("engine builds");
    let f = ParallelFraction::new(0.99).expect("valid");
    let cmp = engine
        .project(DesignId::AsymCmp, WorkloadColumn::Mmm, f)
        .expect("feasible");
    let at11 = cmp.iter().find(|p| p.node == TechNode::N11).expect("feasible");
    // The CMP cannot use even a quarter of the 298-BCE area budget.
    assert!(at11.n < 75.0, "CMP used {} BCE", at11.n);

    let fpga = engine
        .project(DesignId::Het(DeviceId::V6Lx760), WorkloadColumn::Mmm, f)
        .expect("feasible");
    let fpga11 = fpga.iter().find(|p| p.node == TechNode::N11).expect("feasible");
    // The low-power FPGA fabric uses far more of the die.
    assert!(fpga11.n > at11.n * 2.0, "FPGA used {} BCE", fpga11.n);
}
