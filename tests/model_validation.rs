//! Validation of the model's foundations and extensions through the
//! facade: Hill-Marty regression anchors, parallelism profiles,
//! iso-performance power savings, calibration sensitivity, and the
//! fine-grained yearly projections.

use ucore::calibrate::{mu_ranking, table5_with_conventions, Table5, WorkloadColumn};
use ucore::model::hillmarty::{optimize as hm_optimize, HillMartyMachine};
use ucore::model::{
    min_power_for_target, Budgets, ChipSpec, Optimizer, ParallelFraction,
    ParallelismProfile, Speedup, UCore,
};
use ucore::project::{DesignId, ProjectionEngine, Scenario};
use ucore_devices::DeviceId;

fn f(v: f64) -> ParallelFraction {
    ParallelFraction::new(v).expect("valid fraction")
}

#[test]
fn hill_marty_foundations_hold() {
    // The base model this paper extends, reproduced: n = 256, f = 0.975.
    let sym = hm_optimize(HillMartyMachine::Symmetric, f(0.975), 256.0).unwrap();
    let asym = hm_optimize(HillMartyMachine::Asymmetric, f(0.975), 256.0).unwrap();
    let dynamic = hm_optimize(HillMartyMachine::Dynamic, f(0.975), 256.0).unwrap();
    assert!((sym.speedup - 51.2).abs() < 0.5);
    assert!((asym.speedup - 125.0).abs() < 1.5);
    assert!((dynamic.speedup - 186.5).abs() < 2.0);
}

#[test]
fn fixed_design_profiles_collapse_to_their_mean() {
    // A structural fact the profile extension makes visible: because the
    // model's execution *time* is linear in f, a fixed design's speedup
    // under any parallelism profile equals its speedup at the profile's
    // mean f. Profiles only change conclusions when phases run on
    // different fabrics (MixedChip) or designs are re-optimized.
    let table5 = Table5::derive().unwrap();
    let profile = ParallelismProfile::new(vec![(f(0.999), 0.7), (f(0.3), 0.3)]).unwrap();
    let mean = ParallelFraction::new(profile.mean_f()).unwrap();
    for row in table5.rows() {
        let spec = ChipSpec::heterogeneous(row.ucore);
        let mixture = profile.speedup(&spec, 19.0, 2.0).unwrap().get();
        let averaged = spec.speedup(mean, 19.0, 2.0).unwrap().get();
        assert!(
            (averaged - mixture).abs() < 1e-9 * averaged,
            "{:?} {:?}: {averaged} vs {mixture}",
            row.device,
            row.column
        );
    }
}

#[test]
fn profiles_matter_for_mixed_fabric_chips() {
    // Where a profile genuinely matters: routing each phase to its own
    // fabric. A chip with an MMM ASIC and an FFT GPU fabric beats a
    // single-fabric compromise on a two-kernel profile.
    use ucore::model::{MixedChip, UCorePartition};
    let table5 = Table5::derive().unwrap();
    let mmm_asic = table5.ucore(DeviceId::Asic, WorkloadColumn::Mmm).unwrap();
    let fft_gpu = table5
        .ucore(DeviceId::Gtx480, WorkloadColumn::Fft1024)
        .unwrap();
    let mixed = MixedChip::new(
        75.0,
        2.0,
        vec![
            UCorePartition { ucore: mmm_asic, area_share: 0.5, work_share: 0.5 },
            UCorePartition { ucore: fft_gpu, area_share: 0.5, work_share: 0.5 },
        ],
    )
    .unwrap()
    .with_optimal_shares();
    // The single-fabric alternative runs both kernels on the GPU fabric.
    let gpu_only = ChipSpec::heterogeneous(fft_gpu);
    let fv = f(0.99);
    let mixed_speedup = mixed.speedup(fv).unwrap().get();
    let gpu_speedup = gpu_only.speedup(fv, 75.0, 2.0).unwrap().get();
    assert!(
        mixed_speedup > gpu_speedup,
        "mixed {mixed_speedup} should beat single-fabric {gpu_speedup}"
    );
}

#[test]
fn profile_optimizer_is_feasible_and_consistent() {
    let spec = ChipSpec::heterogeneous(UCore::new(8.47, 1.27).unwrap());
    let budgets = Budgets::new(75.0, 35.0, 1500.0).unwrap();
    let profile = ParallelismProfile::new(vec![(f(0.9), 0.5), (f(0.99), 0.5)]).unwrap();
    let best = profile
        .optimize(&spec, &budgets, &Optimizer::paper_default())
        .unwrap();
    // The profile optimum is sandwiched by the two phases' fixed-f
    // optima.
    let opt = Optimizer::paper_default();
    let lo = opt.optimize(&spec, &budgets, f(0.9)).unwrap();
    let hi = opt.optimize(&spec, &budgets, f(0.99)).unwrap();
    assert!(best.speedup.get() >= lo.evaluation.speedup.get() * 0.99);
    assert!(best.speedup.get() <= hi.evaluation.speedup.get() * 1.01);
}

#[test]
fn iso_performance_power_savings_scale_with_efficiency() {
    // The more efficient the u-core, the cheaper it is to match a fixed
    // target.
    let budgets = Budgets::new(1e4, 1e4, 1e6).unwrap();
    let target = Speedup::new(10.0).unwrap();
    let modest = min_power_for_target(
        &ChipSpec::heterogeneous(UCore::new(3.41, 0.74).unwrap()),
        &budgets,
        f(0.99),
        target,
    )
    .unwrap();
    let extreme = min_power_for_target(
        &ChipSpec::heterogeneous(UCore::new(489.0, 4.96).unwrap()),
        &budgets,
        f(0.99),
        target,
    )
    .unwrap();
    // The ASIC-class core needs dramatically less area, and despite its
    // higher phi, the tiny footprint wins on power.
    assert!(extreme.n < modest.n);
    assert!(extreme.peak_power <= modest.peak_power + 1e-6);
}

#[test]
fn calibration_conventions_do_not_flip_conclusions() {
    let strict = table5_with_conventions(0.79, 2.06, 1.75).unwrap();
    for column in WorkloadColumn::ALL {
        let ranking = mu_ranking(&strict, column);
        assert_eq!(ranking[0], DeviceId::Asic, "{column}");
    }
}

#[test]
fn yearly_projection_fills_the_node_gaps() {
    let engine = ProjectionEngine::new(Scenario::baseline()).unwrap();
    let years = engine
        .project_yearly(
            DesignId::Het(DeviceId::Gtx480),
            WorkloadColumn::Fft1024,
            f(0.99),
        )
        .unwrap();
    assert_eq!(years.len(), 12);
    assert_eq!(years.first().unwrap().year, 2011);
    assert_eq!(years.last().unwrap().year, 2022);
    // Intermediate years move smoothly: no jump exceeds the biggest
    // node-to-node step.
    let max_step = years
        .windows(2)
        .map(|p| (p[1].speedup - p[0].speedup).abs())
        .fold(0.0, f64::max);
    let total = years.last().unwrap().speedup - years.first().unwrap().speedup;
    assert!(max_step < total * 0.6, "step {max_step} of total {total}");
}

#[test]
fn gustafson_and_amdahl_disagree_as_expected() {
    use ucore::model::{amdahl, scaled_speedup};
    for fv in [0.5, 0.9, 0.99] {
        let fixed = amdahl(f(fv), 256.0).unwrap().get();
        let scaled = scaled_speedup(f(fv), 256.0).unwrap().get();
        assert!(scaled > fixed);
        // Amdahl saturates at 1/(1-f).
        assert!(fixed <= 1.0 / (1.0 - fv) + 1e-9);
    }
}
